// Binary columnar snapshot store for demand tensors and closed ingest
// windows — the durable artifact of the measurement plant (the paper's
// two-month study boils down to hourly (antenna x service) tensors, and this
// is the file those tensors live in between runs).
//
// Wire format (all integers little-endian; full spec in DESIGN.md §7):
//
//   file    := header section*
//   header  := magic[8]="ICNSNAP1"  u32 version=1  u32 reserved=0
//   section := u32 type  u32 reserved  u64 payload_size
//              u32 payload_crc32c  u32 header_crc32c
//              payload (padded with zeros to a multiple of 8 bytes)
//
// The 16-byte file header and the 24-byte section headers keep every payload
// 8-byte aligned in the file, so a mmap'd snapshot hands out
// std::span<const double> views straight into the page cache — the zero-copy
// read path. `header_crc32c` covers the 20 bytes before it, so a torn or
// corrupted section header is distinguished from a valid one without trusting
// `payload_size`; `payload_crc32c` covers the unpadded payload bytes.
//
// Sections are an append log: SnapshotWriter::sync() is the checkpoint
// barrier (fsync), and recover_snapshot() scans for the longest valid prefix
// and truncates a torn tail, which is how a killed ingest resumes from its
// last durable window.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ml/matrix.h"
#include "store/vfs.h"

namespace icn::store {

/// Thrown on any structural or integrity problem with a snapshot file.
/// Operating-system failures (missing/empty/unreadable file, failed
/// write/fsync/truncate) throw icn::util::IoError instead, so callers can
/// tell "file is not there" from "file is corrupt".
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Section payload types.
enum class SectionType : std::uint32_t {
  /// u64 rows, u64 cols, f64 values[rows * cols] (row-major).
  kMatrix = 1,
  /// u64 num_antennas, u64 num_services, u64 num_hours,
  /// u32 antenna_ids[num_antennas].
  kStreamMeta = 2,
  /// i64 hour, f64 cells[num_antennas * num_services] (row-major MB).
  kWindow = 3,
  /// u64 rows, u64 num_hours, u8 covered[rows * num_hours] (row-major, 0/1).
  /// rows == 1 means probe-level coverage (all of the feed's antennas share
  /// the hour bitmap); rows == num_antennas gives per-antenna coverage in a
  /// merged study snapshot. Written only when coverage is incomplete, so a
  /// fully-covered feed checkpoint stays bit-identical to a plain ingest
  /// checkpoint.
  kCoverage = 4,
  /// u64 num_hours, u32 rejected[num_hours], u32 repaired[num_hours] — the
  /// record-level data-quality accounting of one feed (or the hour-wise sum
  /// across feeds in a merged study snapshot). Written only when at least one
  /// record was rejected or repaired, so a clean run's checkpoint stays
  /// bit-identical to a pre-quality-layer one.
  kQuarantine = 5,
};

/// One raw validated section of a mapped snapshot.
struct SectionView {
  SectionType type{};
  std::span<const std::uint8_t> payload;  ///< Unpadded payload bytes.
};

/// Zero-copy view of a kMatrix section.
struct MatrixView {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::span<const double> values;  ///< rows * cols, row-major, 8-aligned.

  /// Materializes an owning matrix (copies out of the mapping).
  [[nodiscard]] ml::Matrix to_matrix() const;
};

/// Zero-copy view of a kStreamMeta section.
struct StreamMetaView {
  std::span<const std::uint32_t> antenna_ids;
  std::size_t num_services = 0;
  std::int64_t num_hours = 0;
};

/// Zero-copy view of a kWindow section.
struct WindowView {
  std::int64_t hour = 0;
  std::span<const double> cells;  ///< num_antennas * num_services, row-major.
};

/// Zero-copy view of a kCoverage section.
struct CoverageSectionView {
  std::size_t rows = 0;
  std::int64_t num_hours = 0;
  std::span<const std::uint8_t> covered;  ///< rows * num_hours, row-major 0/1.
};

/// Zero-copy view of a kQuarantine section.
struct QuarantineSectionView {
  std::int64_t num_hours = 0;
  std::span<const std::uint32_t> rejected;  ///< Per event hour.
  std::span<const std::uint32_t> repaired;  ///< Per event hour.
};

/// What one durability barrier made durable (see SnapshotWriter::sync).
struct SealEvent {
  std::string path;              ///< The snapshot file that was sealed.
  std::uint64_t seals = 0;       ///< 1-based count of sync() calls so far.
  std::size_t sections_sealed = 0;  ///< Sections appended since the last sync.
};

/// Appends sections to a snapshot file. Structural misuse throws
/// SnapshotError; operating-system failures throw icn::util::IoError naming
/// the file and the operation. All I/O flows through the given Vfs (nullptr
/// = posix_vfs()), the fault seam of the chaos suite; the default path is
/// bit-identical to direct syscalls.
class SnapshotWriter {
 public:
  /// Creates (or truncates) `path` and writes the file header.
  explicit SnapshotWriter(const std::string& path, Vfs* vfs = nullptr);

  /// Opens an existing snapshot for append (after recover_snapshot), keeping
  /// its contents. The header must be valid.
  static SnapshotWriter append_to(const std::string& path,
                                  Vfs* vfs = nullptr);

  ~SnapshotWriter();
  SnapshotWriter(SnapshotWriter&& other) noexcept;
  SnapshotWriter& operator=(SnapshotWriter&& other) noexcept;
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Appends one section (header + payload + zero padding to 8 bytes).
  /// On an I/O failure mid-append the file is rolled back (truncated) to the
  /// pre-append boundary before the typed IoError propagates, so the
  /// snapshot stays recoverable to its last sealed prefix and the append can
  /// be retried after the condition clears (ENOSPC degradation).
  void append_section(SectionType type, std::span<const std::uint8_t> payload);

  /// Appends a kMatrix section.
  void append_matrix(const ml::Matrix& m);

  /// Appends a kStreamMeta section.
  void append_stream_meta(std::span<const std::uint32_t> antenna_ids,
                          std::size_t num_services, std::int64_t num_hours);

  /// Appends a kWindow section.
  void append_window(std::int64_t hour, std::span<const double> cells);

  /// Appends a kCoverage section. Requires covered.size() == rows * num_hours
  /// and every byte 0 or 1.
  void append_coverage(std::size_t rows, std::int64_t num_hours,
                       std::span<const std::uint8_t> covered);

  /// Appends a kQuarantine section. Requires num_hours > 0 and both spans of
  /// size num_hours.
  void append_quarantine(std::int64_t num_hours,
                         std::span<const std::uint32_t> rejected,
                         std::span<const std::uint32_t> repaired);

  /// Durability barrier: flushes the file to stable storage (fsync). A
  /// snapshot is recoverable up to its last sync even if the process dies
  /// mid-append afterwards. The first successful sync of a writer also
  /// fsyncs the parent directory, so the file's directory entry (not just
  /// its bytes) survives power loss. When a seal hook is installed it fires
  /// after the fsync returns, i.e. only for data that is actually durable.
  /// Throws icn::util::IoError when the fsync fails; the writer stays usable
  /// (the barrier can be retried) but nothing appended since the last
  /// successful sync may be assumed durable.
  void sync();

  /// Installs a callback invoked after every successful sync() with what the
  /// barrier sealed. This is the generation hand-off point of the serving
  /// layer: a hook that republishes the file into a serve::SnapshotRegistry
  /// turns every checkpoint seal into a hot snapshot swap. The hook runs on
  /// the writer's thread; pass nullptr to remove it.
  void set_seal_hook(std::function<void(const SealEvent&)> hook) {
    seal_hook_ = std::move(hook);
  }

  /// Closes the file (idempotent; also called by the destructor). A close
  /// can surface deferred writeback errors (EIO), so failure throws a typed
  /// icn::util::IoError — the handle is released either way. The destructor
  /// swallows the error (destructors must not throw); call close() or
  /// sync() explicitly when the outcome matters.
  void close();

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Bytes appended so far (header + completed sections) — the rollback
  /// boundary of a failed append.
  [[nodiscard]] std::uint64_t end_offset() const { return end_offset_; }

 private:
  SnapshotWriter(std::string path, VfsFile file, Vfs& vfs,
                 std::uint64_t end_offset)
      : path_(std::move(path)),
        vfs_(&vfs),
        file_(std::move(file)),
        end_offset_(end_offset) {}
  void write_all(std::span<const std::uint8_t> bytes);

  std::string path_;
  Vfs* vfs_ = nullptr;
  VfsFile file_;
  std::uint64_t end_offset_ = 0;
  bool dir_synced_ = false;
  std::uint64_t seals_ = 0;
  std::size_t sections_since_sync_ = 0;
  std::function<void(const SealEvent&)> seal_hook_;
};

/// Read-only mmap of a snapshot. The constructor validates the header and
/// every section CRC eagerly and throws SnapshotError on corruption or
/// truncation; afterwards all accessors are zero-copy views into the mapping
/// (valid for the lifetime of this object).
class MappedSnapshot {
 public:
  explicit MappedSnapshot(const std::string& path, Vfs* vfs = nullptr);
  ~MappedSnapshot();
  MappedSnapshot(MappedSnapshot&& other) noexcept;
  MappedSnapshot& operator=(MappedSnapshot&& other) noexcept;
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  [[nodiscard]] const std::vector<SectionView>& sections() const {
    return sections_;
  }

  /// First section of `type`, or nullptr when the snapshot has none. O(1):
  /// the per-type index is built once at map time, so per-query accessors
  /// (and the typed views below) do not re-scan the section list on every
  /// access. The pointer is valid for the lifetime of this object.
  [[nodiscard]] const SectionView* find_section(SectionType type) const;

  /// First kMatrix section, if any. Throws SnapshotError on a malformed
  /// payload (size not matching rows * cols).
  [[nodiscard]] std::optional<MatrixView> matrix() const;

  /// First kStreamMeta section, if any.
  [[nodiscard]] std::optional<StreamMetaView> stream_meta() const;

  /// All kWindow sections in file (= closing) order.
  [[nodiscard]] std::vector<WindowView> windows() const;

  /// First kCoverage section, if any.
  [[nodiscard]] std::optional<CoverageSectionView> coverage() const;

  /// First kQuarantine section, if any.
  [[nodiscard]] std::optional<QuarantineSectionView> quarantine() const;

  [[nodiscard]] std::size_t file_size() const { return size_; }

 private:
  void build_section_index();

  Vfs* vfs_ = nullptr;  ///< Owner of the mapping below.
  void* map_ = nullptr;
  std::size_t size_ = 0;
  std::vector<SectionView> sections_;
  /// (type, first index into sections_) pairs, one per distinct type, in
  /// first-appearance order. Snapshots carry a handful of distinct types, so
  /// a flat scan of this list beats any hashing.
  std::vector<std::pair<SectionType, std::size_t>> first_of_type_;
};

/// Result of a crash-recovery scan.
struct RecoveryResult {
  std::uint64_t valid_bytes = 0;  ///< Length of the longest valid prefix.
  std::size_t valid_sections = 0;
  bool truncated = false;  ///< True when a torn/corrupt tail was dropped.
  /// Hour of the last valid kWindow section — the checkpoint a killed ingest
  /// resumes after. Empty when no window survived.
  std::optional<std::int64_t> last_window_hour;
};

/// Scans `path` for the longest valid prefix (header + whole valid sections)
/// and truncates the file to it, dropping a torn tail left by a crash
/// mid-append. Throws SnapshotError when even the file header is unusable and
/// icn::util::IoError when the file is missing or empty.
RecoveryResult recover_snapshot(const std::string& path, Vfs* vfs = nullptr);

/// File-offset index entry for one valid section (see scan_section_index).
struct SectionInfo {
  SectionType type{};
  std::uint64_t header_offset = 0;   ///< Byte offset of the section header.
  std::uint64_t payload_offset = 0;  ///< Byte offset of the payload.
  std::uint64_t payload_size = 0;    ///< Unpadded payload bytes.
};

/// Lists the valid-prefix sections of `path` with their byte offsets, without
/// modifying the file. Intended for tooling that must address raw file bytes
/// (e.g. fault injection flipping a bit inside a chosen section); regular
/// readers should use MappedSnapshot.
[[nodiscard]] std::vector<SectionInfo> scan_section_index(
    const std::string& path, Vfs* vfs = nullptr);

/// Non-destructive integrity report over a snapshot file (tools/icn_fsck).
/// Unlike recover_snapshot it never modifies the file; unlike MappedSnapshot
/// it does not throw on a torn tail — the report carries the damage.
struct ScanReport {
  /// Valid-prefix sections in file order (all CRCs verified).
  std::vector<SectionInfo> sections;
  std::uint64_t file_size = 0;
  /// Length of the longest valid prefix — where recover_snapshot would
  /// truncate.
  std::uint64_t valid_bytes = 0;
  bool clean = false;    ///< Whole file is header + valid sections.
  std::string error;     ///< First structural problem when !clean.
};

/// Scans `path` without modifying it. Throws SnapshotError when the file
/// header itself is unusable, icn::util::IoError when the file is missing or
/// empty.
[[nodiscard]] ScanReport scan_snapshot(const std::string& path,
                                       Vfs* vfs = nullptr);

/// Crash-atomic snapshot publication: runs `fill` on a writer bound to
/// `<path>.tmp`, then fsync + close + rename onto `path` + parent-directory
/// fsync. A reader (e.g. serve::SnapshotRegistry::try_publish_file) can
/// observe only the old file or the complete new one, never a torn
/// intermediate — a crash at any point leaves `path` untouched (the torn
/// temporary is overwritten by the next publish). `fill` must not close the
/// writer; a final sync() is issued here after it returns.
void write_snapshot_atomic(const std::string& path,
                           const std::function<void(SnapshotWriter&)>& fill,
                           Vfs* vfs = nullptr);

}  // namespace icn::store
