// CRC32C (Castagnoli, polynomial 0x1EDC6F41 reflected) — the checksum the
// snapshot store stamps on every section so bit rot, torn writes and
// truncated tails are detected before any payload byte reaches the analysis
// code. Software slicing-by-8 implementation; no hardware or library
// dependency, identical output on every platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace icn::store {

/// Incremental CRC32C: feed `crc` from a previous call (or 0 to start) and
/// the next chunk of bytes. The final value is the standard CRC32C of the
/// concatenated input (as produced by e.g. SSE4.2 crc32 or leveldb).
[[nodiscard]] std::uint32_t crc32c_extend(std::uint32_t crc,
                                          std::span<const std::uint8_t> bytes);

/// One-shot CRC32C of a buffer.
[[nodiscard]] inline std::uint32_t crc32c(std::span<const std::uint8_t> bytes) {
  return crc32c_extend(0, bytes);
}

}  // namespace icn::store
