// CRC32C (Castagnoli, polynomial 0x1EDC6F41 reflected) — the checksum the
// snapshot store stamps on every section so bit rot, torn writes and
// truncated tails are detected before any payload byte reaches the analysis
// code.
//
// Two backends compute the identical function: a portable slicing-by-8 table
// implementation, and the SSE4.2 crc32 instruction (_mm_crc32_u64) when the
// CPU has it. The backend is picked once at first use; ICN_SIMD=scalar forces
// the table path (util/simd.h) so the two can be A/B-tested and benchmarked.
// Both produce the standard CRC32C, byte-identical on every platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace icn::store {

/// Incremental CRC32C: feed `crc` from a previous call (or 0 to start) and
/// the next chunk of bytes. The final value is the standard CRC32C of the
/// concatenated input (as produced by e.g. SSE4.2 crc32 or leveldb).
[[nodiscard]] std::uint32_t crc32c_extend(std::uint32_t crc,
                                          std::span<const std::uint8_t> bytes);

/// One-shot CRC32C of a buffer.
[[nodiscard]] inline std::uint32_t crc32c(std::span<const std::uint8_t> bytes) {
  return crc32c_extend(0, bytes);
}

/// Name of the backend crc32c_extend dispatches to: "sse4.2" or "table".
[[nodiscard]] const char* crc32c_backend();

namespace detail {

// The two backends, exposed for the hw-vs-table parity tests and benches.
// crc32c_hw_extend must only be called when util::cpu_supports_crc32c(); on
// non-x86 builds it aliases the table path.
[[nodiscard]] std::uint32_t crc32c_table_extend(
    std::uint32_t crc, std::span<const std::uint8_t> bytes);
[[nodiscard]] std::uint32_t crc32c_hw_extend(
    std::uint32_t crc, std::span<const std::uint8_t> bytes);

}  // namespace detail

}  // namespace icn::store
