#include "store/snapshot.h"

#include <bit>
#include <cstring>

#include "store/crc32c.h"
#include "store/vfs.h"
#include "util/error.h"

// The format is defined little-endian and the read path is zero-copy
// (reinterpreting mapped bytes as doubles), so a big-endian host would need a
// byte-swapping load path that nothing here provides.
static_assert(std::endian::native == std::endian::little,
              "snapshot store requires a little-endian host");

namespace icn::store {
namespace {

constexpr std::size_t kFileHeaderSize = 16;
constexpr std::size_t kSectionHeaderSize = 24;
constexpr char kMagic[8] = {'I', 'C', 'N', 'S', 'N', 'A', 'P', '1'};

std::size_t padded(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw SnapshotError("snapshot " + path + ": " + what);
}

void check_header(const std::string& path, const std::uint8_t* data,
                  std::size_t size) {
  if (size < kFileHeaderSize) fail(path, "truncated file header");
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    fail(path, "bad magic (not a snapshot file)");
  }
  const std::uint32_t version = get_u32(data + 8);
  if (version != kSnapshotVersion) {
    fail(path, "unsupported version " + std::to_string(version));
  }
}

/// Scan outcome shared by the strict reader and the recovery path.
struct Scan {
  std::vector<SectionView> sections;
  std::vector<SectionInfo> index;  ///< File offsets, parallel to sections.
  std::uint64_t valid_bytes = kFileHeaderSize;
  bool clean = true;      ///< Whole file is valid sections.
  std::string error;      ///< First problem when !clean.
};

Scan scan_sections(const std::uint8_t* data, std::size_t size) {
  Scan scan;
  std::size_t at = kFileHeaderSize;
  while (at < size) {
    if (at + kSectionHeaderSize > size) {
      scan.clean = false;
      scan.error = "truncated section header at offset " + std::to_string(at);
      return scan;
    }
    const std::uint8_t* hdr = data + at;
    const std::uint32_t header_crc = get_u32(hdr + 20);
    if (crc32c({hdr, 20}) != header_crc) {
      scan.clean = false;
      scan.error = "corrupt section header at offset " + std::to_string(at);
      return scan;
    }
    const std::uint64_t payload_size = get_u64(hdr + 8);
    const std::uint64_t stored = padded(payload_size);
    if (stored < payload_size ||
        at + kSectionHeaderSize + stored > size) {
      scan.clean = false;
      scan.error = "truncated section payload at offset " + std::to_string(at);
      return scan;
    }
    const std::uint8_t* payload = hdr + kSectionHeaderSize;
    // Pull the next section's header toward the core while this payload's
    // CRC streams through — it lives right past a payload the hardware
    // prefetcher is already walking, so the hint is nearly free.
    if (at + kSectionHeaderSize + stored + kSectionHeaderSize <= size) {
      __builtin_prefetch(payload + stored);
    }
    if (crc32c({payload, payload_size}) != get_u32(hdr + 16)) {
      scan.clean = false;
      scan.error = "section payload CRC mismatch at offset " +
                   std::to_string(at);
      return scan;
    }
    scan.sections.push_back(
        {static_cast<SectionType>(get_u32(hdr)), {payload, payload_size}});
    scan.index.push_back({static_cast<SectionType>(get_u32(hdr)), at,
                          at + kSectionHeaderSize, payload_size});
    at += kSectionHeaderSize + stored;
    scan.valid_bytes = at;
  }
  return scan;
}

/// Minimal RAII read-only mapping used by both readers, owned by a Vfs.
struct Mapping {
  Vfs* vfs = nullptr;
  Vfs::MappedRegion region;

  explicit Mapping(const std::string& path, Vfs& v) : vfs(&v) {
    region = vfs->map_readonly(path);
    if (region.size == 0) {
      throw icn::util::IoError("snapshot " + path + ": file is empty");
    }
  }
  ~Mapping() {
    if (region.data != nullptr) vfs->unmap(region);
  }
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;

  [[nodiscard]] const std::uint8_t* data() const {
    return static_cast<const std::uint8_t*>(region.data);
  }
  [[nodiscard]] std::size_t size() const { return region.size; }
  /// Releases ownership (caller unmaps via the same vfs).
  void release() { region = {}; }
};

template <typename T>
std::span<const T> payload_span(std::span<const std::uint8_t> payload,
                                std::size_t byte_offset, std::size_t count) {
  // Alignment holds by construction: the file header and every stored
  // section are multiples of 8 bytes, so payloads start 8-aligned.
  ICN_DBG_REQUIRE(
      reinterpret_cast<std::uintptr_t>(payload.data() + byte_offset) %
              alignof(T) ==
          0,
      "snapshot payload alignment");
  return {reinterpret_cast<const T*>(payload.data() + byte_offset), count};
}

WindowView parse_window(const std::string& ctx, const SectionView& s) {
  if (s.payload.size() < 8 || (s.payload.size() - 8) % 8 != 0) {
    throw SnapshotError(ctx + ": malformed kWindow payload size " +
                        std::to_string(s.payload.size()));
  }
  WindowView w;
  std::int64_t hour;
  std::memcpy(&hour, s.payload.data(), 8);
  w.hour = hour;
  w.cells = payload_span<double>(s.payload, 8, (s.payload.size() - 8) / 8);
  return w;
}

}  // namespace

ml::Matrix MatrixView::to_matrix() const {
  return ml::Matrix(rows, cols, std::vector<double>(values.begin(),
                                                    values.end()));
}

// ---------------------------------------------------------------------------
// SnapshotWriter

SnapshotWriter::SnapshotWriter(const std::string& path, Vfs* vfs)
    : path_(path), vfs_(&vfs_or_default(vfs)) {
  file_ = vfs_->open(path, Vfs::OpenMode::kCreateTruncate);
  std::vector<std::uint8_t> header(kMagic, kMagic + sizeof(kMagic));
  put_u32(header, kSnapshotVersion);
  put_u32(header, 0);  // reserved
  write_all(header);
  end_offset_ = kFileHeaderSize;
}

SnapshotWriter SnapshotWriter::append_to(const std::string& path, Vfs* vfs) {
  Vfs& v = vfs_or_default(vfs);
  VfsFile file = v.open(path, Vfs::OpenMode::kAppend);
  try {
    std::uint8_t header[kFileHeaderSize];
    std::size_t got = 0;
    while (got < kFileHeaderSize) {
      const std::size_t n = v.pread(
          file, {header + got, kFileHeaderSize - got}, got);
      if (n == 0) break;  // End of file.
      got += n;
    }
    if (got == 0) {
      throw icn::util::IoError("snapshot " + path + ": file is empty");
    }
    if (got != kFileHeaderSize) fail(path, "truncated file header");
    check_header(path, header, kFileHeaderSize);
    const std::uint64_t end = v.size(file);
    return SnapshotWriter(path, std::move(file), v, end);
  } catch (...) {
    try {
      v.close(file);
    } catch (...) {
      // The original error is the one worth reporting.
    }
    throw;
  }
}

SnapshotWriter::~SnapshotWriter() {
  if (file_.is_open()) {
    try {
      vfs_->close(file_);
    } catch (...) {
      // Destructors must not throw; a deferred-writeback error here is
      // reported only when the caller closes/syncs explicitly.
    }
  }
}

SnapshotWriter::SnapshotWriter(SnapshotWriter&& other) noexcept
    : path_(std::move(other.path_)),
      vfs_(other.vfs_),
      file_(std::move(other.file_)),
      end_offset_(other.end_offset_),
      dir_synced_(other.dir_synced_),
      seals_(other.seals_),
      sections_since_sync_(other.sections_since_sync_),
      seal_hook_(std::move(other.seal_hook_)) {
  other.file_.fd = -1;
}

SnapshotWriter& SnapshotWriter::operator=(SnapshotWriter&& other) noexcept {
  if (this != &other) {
    if (file_.is_open()) {
      try {
        vfs_->close(file_);
      } catch (...) {
      }
    }
    path_ = std::move(other.path_);
    vfs_ = other.vfs_;
    file_ = std::move(other.file_);
    end_offset_ = other.end_offset_;
    dir_synced_ = other.dir_synced_;
    seals_ = other.seals_;
    sections_since_sync_ = other.sections_since_sync_;
    seal_hook_ = std::move(other.seal_hook_);
    other.file_.fd = -1;
  }
  return *this;
}

void SnapshotWriter::write_all(std::span<const std::uint8_t> bytes) {
  ICN_REQUIRE(file_.is_open(), "snapshot writer is closed");
  std::size_t at = 0;
  while (at < bytes.size()) {
    // The Vfs may legitimately return short counts (and the fault shim
    // exploits exactly that seam); loop until the span is on its way down.
    at += vfs_->write(file_, bytes.subspan(at));
  }
}

void SnapshotWriter::append_section(SectionType type,
                                    std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> header;
  header.reserve(kSectionHeaderSize);
  put_u32(header, static_cast<std::uint32_t>(type));
  put_u32(header, 0);  // reserved
  put_u64(header, payload.size());
  put_u32(header, crc32c(payload));
  put_u32(header, crc32c(header));
  const std::uint64_t rollback = end_offset_;
  try {
    write_all(header);
    write_all(payload);
    const std::size_t pad = padded(payload.size()) - payload.size();
    if (pad > 0) {
      const std::uint8_t zeros[8] = {};
      write_all({zeros, pad});
    }
  } catch (const icn::util::IoError&) {
    // Drop the partial section so the file stays a valid prefix and the
    // append can be retried verbatim once the disk recovers (the retry
    // degradation path of FeedSupervisor). A failed rollback leaves the
    // torn tail for recover_snapshot to drop; the original error is the
    // actionable one either way.
    try {
      vfs_->ftruncate(file_, rollback);
    } catch (...) {
    }
    throw;
  }
  end_offset_ = rollback + kSectionHeaderSize + padded(payload.size());
  ++sections_since_sync_;
}

void SnapshotWriter::append_matrix(const ml::Matrix& m) {
  std::vector<std::uint8_t> payload;
  payload.reserve(16 + m.data().size() * 8);
  put_u64(payload, m.rows());
  put_u64(payload, m.cols());
  const auto at = payload.size();
  payload.resize(at + m.data().size() * 8);
  std::memcpy(payload.data() + at, m.data().data(), m.data().size() * 8);
  append_section(SectionType::kMatrix, payload);
}

void SnapshotWriter::append_stream_meta(
    std::span<const std::uint32_t> antenna_ids, std::size_t num_services,
    std::int64_t num_hours) {
  std::vector<std::uint8_t> payload;
  payload.reserve(24 + antenna_ids.size() * 4);
  put_u64(payload, antenna_ids.size());
  put_u64(payload, num_services);
  put_u64(payload, static_cast<std::uint64_t>(num_hours));
  const auto at = payload.size();
  payload.resize(at + antenna_ids.size() * 4);
  std::memcpy(payload.data() + at, antenna_ids.data(), antenna_ids.size() * 4);
  append_section(SectionType::kStreamMeta, payload);
}

void SnapshotWriter::append_window(std::int64_t hour,
                                   std::span<const double> cells) {
  std::vector<std::uint8_t> payload;
  payload.reserve(8 + cells.size() * 8);
  put_u64(payload, static_cast<std::uint64_t>(hour));
  const auto at = payload.size();
  payload.resize(at + cells.size() * 8);
  std::memcpy(payload.data() + at, cells.data(), cells.size() * 8);
  append_section(SectionType::kWindow, payload);
}

void SnapshotWriter::append_coverage(std::size_t rows, std::int64_t num_hours,
                                     std::span<const std::uint8_t> covered) {
  ICN_REQUIRE(rows > 0 && num_hours > 0, "coverage shape");
  ICN_REQUIRE(covered.size() == rows * static_cast<std::size_t>(num_hours),
              "coverage bitmap size");
  for (const std::uint8_t b : covered) {
    ICN_REQUIRE(b <= 1, "coverage bitmap must be 0/1");
  }
  std::vector<std::uint8_t> payload;
  payload.reserve(16 + covered.size());
  put_u64(payload, rows);
  put_u64(payload, static_cast<std::uint64_t>(num_hours));
  payload.insert(payload.end(), covered.begin(), covered.end());
  append_section(SectionType::kCoverage, payload);
}

void SnapshotWriter::append_quarantine(std::int64_t num_hours,
                                       std::span<const std::uint32_t> rejected,
                                       std::span<const std::uint32_t> repaired) {
  ICN_REQUIRE(num_hours > 0, "quarantine shape");
  const auto hours = static_cast<std::size_t>(num_hours);
  ICN_REQUIRE(rejected.size() == hours && repaired.size() == hours,
              "quarantine count arrays must span num_hours");
  std::vector<std::uint8_t> payload;
  payload.reserve(8 + hours * 8);
  put_u64(payload, static_cast<std::uint64_t>(num_hours));
  auto at = payload.size();
  payload.resize(at + hours * 8);
  std::memcpy(payload.data() + at, rejected.data(), hours * 4);
  std::memcpy(payload.data() + at + hours * 4, repaired.data(), hours * 4);
  append_section(SectionType::kQuarantine, payload);
}

void SnapshotWriter::sync() {
  ICN_REQUIRE(file_.is_open(), "snapshot writer is closed");
  vfs_->fsync(file_);
  if (!dir_synced_) {
    // The data is durable but the directory entry may not be: a freshly
    // created file can vanish on power loss until its parent directory is
    // fsync'd. One barrier per writer suffices — the dirent never changes
    // again after creation.
    vfs_->fsync_parent_dir(path_);
    dir_synced_ = true;
  }
  ++seals_;
  const std::size_t sealed = sections_since_sync_;
  sections_since_sync_ = 0;
  if (seal_hook_) seal_hook_(SealEvent{path_, seals_, sealed});
}

void SnapshotWriter::close() {
  if (file_.is_open()) vfs_->close(file_);
}

// ---------------------------------------------------------------------------
// MappedSnapshot

MappedSnapshot::MappedSnapshot(const std::string& path, Vfs* vfs) {
  Vfs& v = vfs_or_default(vfs);
  Mapping mapping(path, v);
  check_header(path, mapping.data(), mapping.size());
  Scan scan = scan_sections(mapping.data(), mapping.size());
  if (!scan.clean) fail(path, scan.error);
  sections_ = std::move(scan.sections);
  vfs_ = &v;
  map_ = mapping.region.data;
  size_ = mapping.region.size;
  mapping.release();
  build_section_index();
}

void MappedSnapshot::build_section_index() {
  first_of_type_.clear();
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const SectionType type = sections_[i].type;
    bool seen = false;
    for (const auto& [t, _] : first_of_type_) {
      if (t == type) {
        seen = true;
        break;
      }
    }
    if (!seen) first_of_type_.emplace_back(type, i);
  }
}

const SectionView* MappedSnapshot::find_section(SectionType type) const {
  for (const auto& [t, i] : first_of_type_) {
    if (t == type) return &sections_[i];
  }
  return nullptr;
}

MappedSnapshot::~MappedSnapshot() {
  if (vfs_ != nullptr && map_ != nullptr && size_ > 0) {
    vfs_->unmap({map_, size_});
  }
}

MappedSnapshot::MappedSnapshot(MappedSnapshot&& other) noexcept
    : vfs_(other.vfs_),
      map_(other.map_),
      size_(other.size_),
      sections_(std::move(other.sections_)),
      first_of_type_(std::move(other.first_of_type_)) {
  other.map_ = nullptr;
  other.size_ = 0;
  other.sections_.clear();
  other.first_of_type_.clear();
}

MappedSnapshot& MappedSnapshot::operator=(MappedSnapshot&& other) noexcept {
  if (this != &other) {
    if (vfs_ != nullptr && map_ != nullptr && size_ > 0) {
      vfs_->unmap({map_, size_});
    }
    vfs_ = other.vfs_;
    map_ = other.map_;
    size_ = other.size_;
    sections_ = std::move(other.sections_);
    first_of_type_ = std::move(other.first_of_type_);
    other.map_ = nullptr;
    other.size_ = 0;
    other.sections_.clear();
    other.first_of_type_.clear();
  }
  return *this;
}

std::optional<MatrixView> MappedSnapshot::matrix() const {
  const SectionView* s = find_section(SectionType::kMatrix);
  if (s == nullptr) return std::nullopt;
  if (s->payload.size() < 16) {
    throw SnapshotError("malformed kMatrix payload (short header)");
  }
  MatrixView view;
  view.rows = static_cast<std::size_t>(get_u64(s->payload.data()));
  view.cols = static_cast<std::size_t>(get_u64(s->payload.data() + 8));
  const std::size_t want = view.rows * view.cols * 8;
  if (view.cols != 0 && view.rows != want / 8 / view.cols) {
    throw SnapshotError("malformed kMatrix payload (shape overflow)");
  }
  if (s->payload.size() != 16 + want) {
    throw SnapshotError("malformed kMatrix payload (size/shape mismatch)");
  }
  view.values = payload_span<double>(s->payload, 16, view.rows * view.cols);
  return view;
}

std::optional<StreamMetaView> MappedSnapshot::stream_meta() const {
  const SectionView* s = find_section(SectionType::kStreamMeta);
  if (s == nullptr) return std::nullopt;
  if (s->payload.size() < 24) {
    throw SnapshotError("malformed kStreamMeta payload (short header)");
  }
  const std::size_t num_antennas =
      static_cast<std::size_t>(get_u64(s->payload.data()));
  if (s->payload.size() != 24 + num_antennas * 4) {
    throw SnapshotError("malformed kStreamMeta payload (size mismatch)");
  }
  StreamMetaView view;
  view.num_services = static_cast<std::size_t>(get_u64(s->payload.data() + 8));
  view.num_hours = static_cast<std::int64_t>(get_u64(s->payload.data() + 16));
  view.antenna_ids = payload_span<std::uint32_t>(s->payload, 24, num_antennas);
  return view;
}

std::vector<WindowView> MappedSnapshot::windows() const {
  std::vector<WindowView> out;
  for (const auto& s : sections_) {
    if (s.type == SectionType::kWindow) {
      out.push_back(parse_window("mapped snapshot", s));
    }
  }
  return out;
}

std::optional<CoverageSectionView> MappedSnapshot::coverage() const {
  const SectionView* s = find_section(SectionType::kCoverage);
  if (s == nullptr) return std::nullopt;
  if (s->payload.size() < 16) {
    throw SnapshotError("malformed kCoverage payload (short header)");
  }
  CoverageSectionView view;
  view.rows = static_cast<std::size_t>(get_u64(s->payload.data()));
  view.num_hours = static_cast<std::int64_t>(get_u64(s->payload.data() + 8));
  if (view.num_hours < 0 ||
      s->payload.size() !=
          16 + view.rows * static_cast<std::size_t>(view.num_hours)) {
    throw SnapshotError("malformed kCoverage payload (size mismatch)");
  }
  view.covered = s->payload.subspan(16);
  return view;
}

std::optional<QuarantineSectionView> MappedSnapshot::quarantine() const {
  const SectionView* s = find_section(SectionType::kQuarantine);
  if (s == nullptr) return std::nullopt;
  if (s->payload.size() < 8) {
    throw SnapshotError("malformed kQuarantine payload (short header)");
  }
  QuarantineSectionView view;
  view.num_hours = static_cast<std::int64_t>(get_u64(s->payload.data()));
  const auto hours = static_cast<std::size_t>(view.num_hours);
  if (view.num_hours <= 0 || s->payload.size() != 8 + hours * 8) {
    throw SnapshotError("malformed kQuarantine payload (size mismatch)");
  }
  view.rejected = payload_span<std::uint32_t>(s->payload, 8, hours);
  view.repaired = payload_span<std::uint32_t>(s->payload, 8 + hours * 4, hours);
  return view;
}

// ---------------------------------------------------------------------------
// Recovery

RecoveryResult recover_snapshot(const std::string& path, Vfs* vfs) {
  Vfs& v = vfs_or_default(vfs);
  RecoveryResult result;
  {
    Mapping mapping(path, v);
    check_header(path, mapping.data(), mapping.size());
    const Scan scan = scan_sections(mapping.data(), mapping.size());
    result.valid_bytes = scan.valid_bytes;
    result.valid_sections = scan.sections.size();
    result.truncated = !scan.clean;
    for (const auto& s : scan.sections) {
      if (s.type == SectionType::kWindow) {
        result.last_window_hour = parse_window(path, s).hour;
      }
    }
  }
  if (result.truncated) {
    v.truncate(path, result.valid_bytes);
  }
  return result;
}

std::vector<SectionInfo> scan_section_index(const std::string& path,
                                            Vfs* vfs) {
  Mapping mapping(path, vfs_or_default(vfs));
  check_header(path, mapping.data(), mapping.size());
  Scan scan = scan_sections(mapping.data(), mapping.size());
  return std::move(scan.index);
}

ScanReport scan_snapshot(const std::string& path, Vfs* vfs) {
  Mapping mapping(path, vfs_or_default(vfs));
  check_header(path, mapping.data(), mapping.size());
  Scan scan = scan_sections(mapping.data(), mapping.size());
  ScanReport report;
  report.sections = std::move(scan.index);
  report.file_size = mapping.size();
  report.valid_bytes = scan.valid_bytes;
  report.clean = scan.clean;
  report.error = std::move(scan.error);
  return report;
}

void write_snapshot_atomic(const std::string& path,
                           const std::function<void(SnapshotWriter&)>& fill,
                           Vfs* vfs) {
  Vfs& v = vfs_or_default(vfs);
  const std::string tmp = path + ".tmp";
  {
    SnapshotWriter writer(tmp, &v);
    fill(writer);
    writer.sync();
    writer.close();
  }
  // rename is the atomic commit point; the parent-directory fsync makes the
  // new dirent durable. A crash before the rename leaves `path` untouched
  // (the stale .tmp is truncated away by the next publish), a crash after it
  // exposes the complete new file — never a torn intermediate.
  v.rename(tmp, path);
  v.fsync_parent_dir(path);
}

}  // namespace icn::store
