// Virtual filesystem seam under the durability layer.
//
// Every byte the store writes or reads ultimately crosses a handful of POSIX
// calls; Vfs names that boundary so the chaos suite can stand a fault
// injector between the snapshot machinery and the disk. SnapshotWriter,
// MappedSnapshot, recover_snapshot, the stream checkpoint paths, and
// fault::corrupt_snapshot all route their I/O through a Vfs; the default
// PosixVfs is a thin EINTR-hardened passthrough, so the no-injection path
// produces bit-identical files to direct syscalls.
//
// Error model: operations throw icn::util::IoError naming the file and the
// operation ("<path>: write failed: ..."). write()/pwrite() may return a
// short count (fewer bytes than requested) without error — callers loop —
// which is exactly the seam a short-write fault injector needs. close()
// reports errors (a close can surface deferred writeback EIO on NFS-like
// filesystems); destructor-context callers catch and drop it.
//
// Durability contract (DESIGN.md §10): fsync(file) makes the file's *data
// and size* durable; it does NOT make the file's directory entry durable.
// A file created (or renamed) and fsync'd can still vanish on power loss
// until its parent directory is fsync'd too — fsync_parent_dir() is that
// barrier, and the writer/publish paths call it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace icn::store {

/// File handle issued by a Vfs. Carries the path so every error and every
/// fault-injection decision can name the file it concerns.
struct VfsFile {
  int fd = -1;
  std::string path;

  [[nodiscard]] bool is_open() const { return fd >= 0; }
};

class Vfs {
 public:
  enum class OpenMode : std::uint8_t {
    /// Create or truncate for writing (0644). Append-log semantics: every
    /// write() lands at end-of-file, including after an ftruncate() rollback
    /// (O_APPEND — without it a retried append would land past a zero-filled
    /// hole at the stale fd offset). Use kReadWrite for in-place pwrite();
    /// under O_APPEND Linux pwrite ignores the offset.
    kCreateTruncate,
    kAppend,     ///< Read/write, writes append at end-of-file.
    kReadWrite,  ///< Read/write in place (pread/pwrite).
    kReadOnly,
  };

  /// Zero-copy read-only mapping (see map_readonly). size == 0 means the
  /// file is empty and data is null — mapping an empty file is not an error
  /// at this layer so readers can report it with their own context.
  struct MappedRegion {
    void* data = nullptr;
    std::size_t size = 0;
  };

  virtual ~Vfs() = default;

  /// Opens `path`; throws icn::util::IoError on failure.
  [[nodiscard]] virtual VfsFile open(const std::string& path,
                                     OpenMode mode) = 0;

  /// Writes at the file position (end-of-file under kAppend). May write
  /// fewer bytes than requested (short write); returns the count actually
  /// written (>= 1 for a non-empty span). Throws IoError on hard failure.
  virtual std::size_t write(VfsFile& file,
                            std::span<const std::uint8_t> bytes) = 0;

  /// Positional read; returns the count read (0 at end-of-file), which may
  /// be short. Throws IoError on failure.
  virtual std::size_t pread(VfsFile& file, std::span<std::uint8_t> out,
                            std::uint64_t offset) = 0;

  /// Positional write; may be short like write(). Throws IoError on failure.
  virtual std::size_t pwrite(VfsFile& file,
                             std::span<const std::uint8_t> bytes,
                             std::uint64_t offset) = 0;

  /// Durability barrier for the file's data and size (not its dirent).
  virtual void fsync(VfsFile& file) = 0;

  /// Truncates (or extends with zeros) the open file to `size` bytes.
  virtual void ftruncate(VfsFile& file, std::uint64_t size) = 0;

  /// Path-level truncate (crash-recovery drops a torn tail through this).
  virtual void truncate(const std::string& path, std::uint64_t size) = 0;

  /// Atomically replaces `to` with `from` (rename(2) semantics). The
  /// replacement is durable only after fsync_parent_dir(to).
  virtual void rename(const std::string& from, const std::string& to) = 0;

  /// Removes `path` (best effort cleanup of temporaries).
  virtual void remove(const std::string& path) = 0;

  /// Current size of the open file.
  [[nodiscard]] virtual std::uint64_t size(VfsFile& file) = 0;

  /// Closes the file. Throws IoError when the close itself fails (deferred
  /// writeback errors surface here); the handle is invalidated either way.
  virtual void close(VfsFile& file) = 0;

  /// Makes the directory entry of `path` durable: opens the parent
  /// directory, fsyncs it, closes it. Required after creating or renaming a
  /// file for the file to survive power loss.
  virtual void fsync_parent_dir(const std::string& path) = 0;

  /// Maps `path` read-only for the zero-copy readers. An empty file returns
  /// {nullptr, 0}. Throws IoError on open/stat/map failure.
  [[nodiscard]] virtual MappedRegion map_readonly(const std::string& path) = 0;

  /// Releases a mapping from map_readonly. Never throws.
  virtual void unmap(MappedRegion region) noexcept = 0;
};

/// The production Vfs: direct POSIX calls with EINTR retry on every
/// interruptible operation. Stateless and thread-safe.
class PosixVfs : public Vfs {
 public:
  [[nodiscard]] VfsFile open(const std::string& path, OpenMode mode) override;
  std::size_t write(VfsFile& file,
                    std::span<const std::uint8_t> bytes) override;
  std::size_t pread(VfsFile& file, std::span<std::uint8_t> out,
                    std::uint64_t offset) override;
  std::size_t pwrite(VfsFile& file, std::span<const std::uint8_t> bytes,
                     std::uint64_t offset) override;
  void fsync(VfsFile& file) override;
  void ftruncate(VfsFile& file, std::uint64_t size) override;
  void truncate(const std::string& path, std::uint64_t size) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  [[nodiscard]] std::uint64_t size(VfsFile& file) override;
  void close(VfsFile& file) override;
  void fsync_parent_dir(const std::string& path) override;
  [[nodiscard]] MappedRegion map_readonly(const std::string& path) override;
  void unmap(MappedRegion region) noexcept override;
};

/// Process-wide default Vfs (a shared PosixVfs). Store entry points taking a
/// `Vfs*` treat nullptr as this instance.
[[nodiscard]] Vfs& posix_vfs();

/// Resolves the caller-facing "nullptr means default" convention.
[[nodiscard]] inline Vfs& vfs_or_default(Vfs* vfs) {
  return vfs != nullptr ? *vfs : posix_vfs();
}

/// Parent directory of `path` ("." when the path has no slash).
[[nodiscard]] std::string parent_dir(const std::string& path);

}  // namespace icn::store
