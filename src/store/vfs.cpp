#include "store/vfs.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/error.h"

namespace icn::store {
namespace {

[[noreturn]] void fail_errno(const std::string& path, const char* op,
                             int err) {
  throw icn::util::IoError(path + ": " + op +
                           " failed: " + std::strerror(err));
}

}  // namespace

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

VfsFile PosixVfs::open(const std::string& path, OpenMode mode) {
  int flags = O_CLOEXEC;
  switch (mode) {
    case OpenMode::kCreateTruncate:
      // O_APPEND keeps the mode honest after an append_section rollback:
      // ftruncate() shrinks the file but does not move the fd's write
      // position, so without it a retried append would land past a
      // zero-filled hole at the stale offset and corrupt the log.
      flags |= O_WRONLY | O_CREAT | O_TRUNC | O_APPEND;
      break;
    case OpenMode::kAppend:
      flags |= O_RDWR | O_APPEND;
      break;
    case OpenMode::kReadWrite:
      flags |= O_RDWR;
      break;
    case OpenMode::kReadOnly:
      flags |= O_RDONLY;
      break;
  }
  int fd = -1;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) fail_errno(path, "open", errno);
  return VfsFile{fd, path};
}

std::size_t PosixVfs::write(VfsFile& file,
                            std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return 0;
  ssize_t n = 0;
  do {
    n = ::write(file.fd, bytes.data(), bytes.size());
  } while (n < 0 && errno == EINTR);
  if (n < 0) fail_errno(file.path, "write", errno);
  return static_cast<std::size_t>(n);
}

std::size_t PosixVfs::pread(VfsFile& file, std::span<std::uint8_t> out,
                            std::uint64_t offset) {
  if (out.empty()) return 0;
  ssize_t n = 0;
  do {
    n = ::pread(file.fd, out.data(), out.size(),
                static_cast<off_t>(offset));
  } while (n < 0 && errno == EINTR);
  if (n < 0) fail_errno(file.path, "pread", errno);
  return static_cast<std::size_t>(n);
}

std::size_t PosixVfs::pwrite(VfsFile& file,
                             std::span<const std::uint8_t> bytes,
                             std::uint64_t offset) {
  if (bytes.empty()) return 0;
  ssize_t n = 0;
  do {
    n = ::pwrite(file.fd, bytes.data(), bytes.size(),
                 static_cast<off_t>(offset));
  } while (n < 0 && errno == EINTR);
  if (n < 0) fail_errno(file.path, "pwrite", errno);
  return static_cast<std::size_t>(n);
}

void PosixVfs::fsync(VfsFile& file) {
  int rc = 0;
  do {
    rc = ::fsync(file.fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) fail_errno(file.path, "fsync", errno);
}

void PosixVfs::ftruncate(VfsFile& file, std::uint64_t size) {
  int rc = 0;
  do {
    rc = ::ftruncate(file.fd, static_cast<off_t>(size));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) fail_errno(file.path, "ftruncate", errno);
}

void PosixVfs::truncate(const std::string& path, std::uint64_t size) {
  int rc = 0;
  do {
    rc = ::truncate(path.c_str(), static_cast<off_t>(size));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) fail_errno(path, "truncate", errno);
}

void PosixVfs::rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    fail_errno(from + " -> " + to, "rename", errno);
  }
}

void PosixVfs::remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    fail_errno(path, "unlink", errno);
  }
}

std::uint64_t PosixVfs::size(VfsFile& file) {
  struct stat st {};
  if (::fstat(file.fd, &st) != 0) fail_errno(file.path, "fstat", errno);
  return static_cast<std::uint64_t>(st.st_size);
}

void PosixVfs::close(VfsFile& file) {
  if (file.fd < 0) return;
  const int fd = file.fd;
  // The handle dies either way: retrying ::close on the same fd after any
  // failure (even EINTR, per POSIX) risks closing a recycled descriptor.
  file.fd = -1;
  if (::close(fd) != 0 && errno != EINTR) {
    fail_errno(file.path, "close", errno);
  }
}

void PosixVfs::fsync_parent_dir(const std::string& path) {
  const std::string dir = parent_dir(path);
  int fd = -1;
  do {
    fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) fail_errno(dir, "open directory", errno);
  int rc = 0;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int err = errno;
    ::close(fd);
    fail_errno(dir, "fsync directory", err);
  }
  ::close(fd);
}

Vfs::MappedRegion PosixVfs::map_readonly(const std::string& path) {
  VfsFile file = open(path, OpenMode::kReadOnly);
  std::uint64_t file_size = 0;
  try {
    file_size = size(file);
  } catch (...) {
    ::close(file.fd);
    throw;
  }
  if (file_size == 0) {
    ::close(file.fd);
    return {};
  }
  void* map = ::mmap(nullptr, static_cast<std::size_t>(file_size), PROT_READ,
                     MAP_PRIVATE, file.fd, 0);
  if (map == MAP_FAILED) {
    const int err = errno;
    ::close(file.fd);
    fail_errno(path, "mmap", err);
  }
  // Readers CRC-walk every section front to back immediately after mapping,
  // so ask the kernel to fault the whole file in ahead of the scan. Purely
  // advisory — failure costs nothing but the readahead.
  (void)::posix_madvise(map, static_cast<std::size_t>(file_size),
                        POSIX_MADV_WILLNEED);
  ::close(file.fd);
  return {map, static_cast<std::size_t>(file_size)};
}

void PosixVfs::unmap(MappedRegion region) noexcept {
  if (region.data != nullptr && region.size > 0) {
    ::munmap(region.data, region.size);
  }
}

Vfs& posix_vfs() {
  static PosixVfs instance;
  return instance;
}

}  // namespace icn::store
