#include "store/crc32c.h"

#include <array>

namespace icn::store {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected.

/// 8 slicing tables: table[0] is the classic byte-at-a-time table, table[k]
/// advances a byte through k+1 zero bytes.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t crc,
                            std::span<const std::uint8_t> bytes) {
  const auto& t = kTables.t;
  crc = ~crc;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  // Slicing-by-8 over the aligned middle; byte-at-a-time for the tail.
  while (n >= 8) {
    const std::uint32_t lo =
        crc ^ (static_cast<std::uint32_t>(p[0]) |
               (static_cast<std::uint32_t>(p[1]) << 8) |
               (static_cast<std::uint32_t>(p[2]) << 16) |
               (static_cast<std::uint32_t>(p[3]) << 24));
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace icn::store
