#include "store/crc32c.h"

#include <array>
#include <cstring>

#include "util/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#define ICN_CRC_X86 1
#include <nmmintrin.h>
#endif

namespace icn::store {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected.

/// 8 slicing tables: table[0] is the classic byte-at-a-time table, table[k]
/// advances a byte through k+1 zero bytes.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

constexpr Tables kTables{};

}  // namespace

namespace detail {

std::uint32_t crc32c_table_extend(std::uint32_t crc,
                                  std::span<const std::uint8_t> bytes) {
  const auto& t = kTables.t;
  crc = ~crc;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  // Slicing-by-8 over the aligned middle; byte-at-a-time for the tail.
  while (n >= 8) {
    const std::uint32_t lo =
        crc ^ (static_cast<std::uint32_t>(p[0]) |
               (static_cast<std::uint32_t>(p[1]) << 8) |
               (static_cast<std::uint32_t>(p[2]) << 16) |
               (static_cast<std::uint32_t>(p[3]) << 24));
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

#if defined(ICN_CRC_X86)

__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw_extend(
    std::uint32_t crc, std::span<const std::uint8_t> bytes) {
  crc = ~crc;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  // Byte steps up to 8-byte alignment, then crc32 on aligned quadwords.
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
#if defined(__x86_64__)
  std::uint64_t crc64 = crc;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
#else
  while (n >= 4) {
    std::uint32_t word;
    std::memcpy(&word, p, 4);
    crc = _mm_crc32_u32(crc, word);
    p += 4;
    n -= 4;
  }
#endif
  while (n-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return ~crc;
}

#else  // !ICN_CRC_X86

std::uint32_t crc32c_hw_extend(std::uint32_t crc,
                               std::span<const std::uint8_t> bytes) {
  return crc32c_table_extend(crc, bytes);
}

#endif  // ICN_CRC_X86

}  // namespace detail

namespace {

using Crc32cFn = std::uint32_t (*)(std::uint32_t, std::span<const std::uint8_t>);

bool use_hw_crc32c() {
  // ICN_SIMD=scalar pins the portable path; any other setting (or unset)
  // takes the hardware instruction whenever the CPU has SSE4.2.
  return icn::util::simd_level() != icn::util::SimdLevel::kScalar &&
         icn::util::cpu_supports_crc32c();
}

Crc32cFn pick_crc32c() {
  return use_hw_crc32c() ? detail::crc32c_hw_extend
                         : detail::crc32c_table_extend;
}

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t crc,
                            std::span<const std::uint8_t> bytes) {
  static const Crc32cFn kernel = pick_crc32c();
  return kernel(crc, bytes);
}

const char* crc32c_backend() {
  static const char* const backend = use_hw_crc32c() ? "sse4.2" : "table";
  return backend;
}

}  // namespace icn::store
