// CART decision-tree classifier, the building block of the random-forest
// surrogate used in Sec. 5.1.2 to make the clustering explainable.
//
// Nodes are stored in a flat array with explicit cover (weighted sample
// count) and per-node class distributions, which is exactly the structure
// TreeSHAP (Lundberg et al. 2020) walks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/matrix.h"
#include "util/rng.h"

namespace icn::ml {

/// One node of a fitted decision tree.
struct TreeNode {
  int feature = -1;      ///< Split feature; -1 marks a leaf.
  double threshold = 0;  ///< Split rule: go left when x[feature] <= threshold.
  int left = -1;         ///< Left child index (-1 for leaves).
  int right = -1;        ///< Right child index (-1 for leaves).
  double cover = 0;      ///< Number of training samples that reach this node.
  std::vector<double> value;  ///< Class probability distribution at the node.

  [[nodiscard]] bool is_leaf() const { return feature < 0; }
};

/// CART classifier with Gini impurity splits.
class DecisionTree {
 public:
  /// Where build() takes its per-node partition buffers from.
  /// kArena bump-allocates from this thread's scratch_arena() (a Frame per
  /// node, zero mallocs in steady state); kHeap keeps the original vector
  /// path, retained so tests can assert bit-parity between the two.
  enum class Scratch : std::uint8_t { kArena, kHeap };

  /// Training hyper-parameters.
  struct Params {
    std::size_t max_depth = 32;         ///< Maximum tree depth (root = 0).
    std::size_t min_samples_leaf = 1;   ///< Minimum samples per leaf.
    std::size_t min_samples_split = 2;  ///< Minimum samples to try a split.
    /// Number of features sampled (without replacement) per split;
    /// 0 means "all features". Random forests use ~sqrt(M).
    std::size_t max_features = 0;
    Scratch scratch = Scratch::kArena;  ///< Per-node buffer source.
  };

  /// Fits the tree on rows `sample_idx` of x (all rows when empty).
  /// Labels must lie in [0, num_classes). Duplicated indices (bootstrap
  /// samples) are allowed. Requires x.rows() == y.size() and non-empty data.
  void fit(const Matrix& x, std::span<const int> y, int num_classes,
           const Params& params, icn::util::Rng& rng,
           std::span<const std::size_t> sample_idx = {});

  /// True once fit() has produced at least a root node.
  [[nodiscard]] bool is_fitted() const { return !nodes_.empty(); }

  /// Flat node storage; node 0 is the root.
  [[nodiscard]] const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Number of classes the tree was fitted with.
  [[nodiscard]] int num_classes() const { return num_classes_; }

  /// Class distribution at the leaf x falls into. Requires is_fitted() and
  /// x.size() == number of training features.
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> x) const;

  /// Arg-max class of predict_proba.
  [[nodiscard]] int predict(std::span<const double> x) const;

  /// Total Gini-impurity decrease contributed by each feature (unnormalized);
  /// size = number of training features.
  [[nodiscard]] const std::vector<double>& impurity_importance() const {
    return importance_;
  }

 private:
  std::vector<TreeNode> nodes_;
  int num_classes_ = 0;
  std::size_t num_features_ = 0;
  std::vector<double> importance_;

  int build(const Matrix& x, std::span<const int> y, const Params& params,
            icn::util::Rng& rng, std::vector<std::size_t>& idx,
            std::size_t begin, std::size_t end, std::size_t depth);
};

}  // namespace icn::ml
