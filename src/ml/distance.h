// Distance and accumulation kernels and the condensed pairwise-distance
// matrix used by the clustering and cluster-validity code.
//
// The hot kernels (squared_euclidean, vector_sum) are runtime-dispatched over
// scalar / SSE2 / AVX2 / AVX-512 lanes (util/simd.h: cpuid probe at first
// use, ICN_SIMD override). Every lane accumulates in the SAME canonical
// 4-lane order — lane k sums elements i == k (mod 4), lanes combine as
// (s0 + s2) + (s1 + s3), the 0-3 tail elements add sequentially — so widening
// the vectors changes speed, never bits: ICN_SIMD=scalar output is
// byte-identical to the widest available lane. (The AVX-512 lanes run the
// element-wise subtract/multiply 8-wide but fold into a 4-lane accumulator in
// element order, which is what preserves the canonical order.)
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "ml/matrix.h"
#include "util/error.h"

namespace icn::ml {

/// Squared Euclidean distance between two equal-length vectors, in the
/// canonical accumulation order (see file comment).
[[nodiscard]] double squared_euclidean(std::span<const double> a,
                                       std::span<const double> b);

/// Euclidean distance between two equal-length vectors.
[[nodiscard]] double euclidean(std::span<const double> a,
                               std::span<const double> b);

/// Sum of a vector in the canonical accumulation order — the dispatched
/// building block of the forecast/linkage accumulation loops.
[[nodiscard]] double vector_sum(std::span<const double> xs);

namespace detail {

// Per-level kernels, exposed for the bit-exactness parity tests and the
// SIMD benches. The wide variants must only be called when the CPU supports
// the level (util::max_supported_simd_level()); on non-x86 builds they all
// alias the scalar kernel.
[[nodiscard]] double squared_euclidean_scalar(const double* a, const double* b,
                                              std::size_t n);
[[nodiscard]] double squared_euclidean_sse2(const double* a, const double* b,
                                            std::size_t n);
[[nodiscard]] double squared_euclidean_avx2(const double* a, const double* b,
                                            std::size_t n);
[[nodiscard]] double squared_euclidean_avx512(const double* a, const double* b,
                                              std::size_t n);
[[nodiscard]] double vector_sum_scalar(const double* xs, std::size_t n);
[[nodiscard]] double vector_sum_sse2(const double* xs, std::size_t n);
[[nodiscard]] double vector_sum_avx2(const double* xs, std::size_t n);
[[nodiscard]] double vector_sum_avx512(const double* xs, std::size_t n);

}  // namespace detail

/// Upper-triangle (i < j) pairwise Euclidean distances of the rows of X,
/// stored condensed in double (N = 4,762 -> ~90 MB) so lookups agree exactly
/// with the double-precision working distances of the linkage code. Rows are
/// computed in parallel; the result is identical for every thread count.
class CondensedDistances {
 public:
  /// Computes all pairwise distances of X's rows. Requires X.rows() >= 1.
  explicit CondensedDistances(const Matrix& x);

  /// Number of points.
  [[nodiscard]] std::size_t size() const { return n_; }

  /// Distance between points i and j (0 when i == j). Bounds are checked in
  /// debug builds only: this accessor runs O(N^2) times per silhouette score.
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    ICN_DBG_REQUIRE(i < n_ && j < n_, "distance index");
    if (i == j) return 0.0;
    if (i > j) std::swap(i, j);
    return d_[index(i, j)];
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> d_;

  // i < j assumed by callers after the swap in operator().
  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j) const {
    return i * n_ - i * (i + 1) / 2 + (j - i - 1);
  }
};

}  // namespace icn::ml
