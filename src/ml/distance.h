// Distance kernels and the condensed pairwise-distance matrix used by the
// clustering and cluster-validity code.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "ml/matrix.h"
#include "util/error.h"

namespace icn::ml {

/// Squared Euclidean distance between two equal-length vectors. The inner
/// loop is SIMD (4-wide) where available; the accumulation order is fixed —
/// lane k sums elements i == k (mod 4), lanes combine as (s0+s2)+(s1+s3),
/// tail elements add sequentially — so the vector and scalar builds return
/// the same bits.
[[nodiscard]] double squared_euclidean(std::span<const double> a,
                                       std::span<const double> b);

/// Euclidean distance between two equal-length vectors.
[[nodiscard]] double euclidean(std::span<const double> a,
                               std::span<const double> b);

/// Upper-triangle (i < j) pairwise Euclidean distances of the rows of X,
/// stored condensed in double (N = 4,762 -> ~90 MB) so lookups agree exactly
/// with the double-precision working distances of the linkage code. Rows are
/// computed in parallel; the result is identical for every thread count.
class CondensedDistances {
 public:
  /// Computes all pairwise distances of X's rows. Requires X.rows() >= 1.
  explicit CondensedDistances(const Matrix& x);

  /// Number of points.
  [[nodiscard]] std::size_t size() const { return n_; }

  /// Distance between points i and j (0 when i == j). Bounds are checked in
  /// debug builds only: this accessor runs O(N^2) times per silhouette score.
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    ICN_DBG_REQUIRE(i < n_ && j < n_, "distance index");
    if (i == j) return 0.0;
    if (i > j) std::swap(i, j);
    return d_[index(i, j)];
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> d_;

  // i < j assumed by callers after the swap in operator().
  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j) const {
    return i * n_ - i * (i + 1) / 2 + (j - i - 1);
  }
};

}  // namespace icn::ml
