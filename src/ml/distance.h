// Distance kernels and the condensed pairwise-distance matrix used by the
// clustering and cluster-validity code.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/matrix.h"

namespace icn::ml {

/// Squared Euclidean distance between two equal-length vectors.
[[nodiscard]] double squared_euclidean(std::span<const double> a,
                                       std::span<const double> b);

/// Euclidean distance between two equal-length vectors.
[[nodiscard]] double euclidean(std::span<const double> a,
                               std::span<const double> b);

/// Upper-triangle (i < j) pairwise Euclidean distances of the rows of X,
/// stored condensed in float to halve memory at nationwide scale
/// (N = 4,762 -> ~45 MB).
class CondensedDistances {
 public:
  /// Computes all pairwise distances of X's rows. Requires X.rows() >= 1.
  explicit CondensedDistances(const Matrix& x);

  /// Number of points.
  [[nodiscard]] std::size_t size() const { return n_; }

  /// Distance between points i and j (0 when i == j).
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const;

 private:
  std::size_t n_ = 0;
  std::vector<float> d_;

  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j) const;
};

}  // namespace icn::ml
