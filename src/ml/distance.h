// Distance and accumulation kernels and the condensed pairwise-distance
// matrix used by the clustering and cluster-validity code.
//
// The hot kernels (squared_euclidean, vector_sum) are runtime-dispatched over
// scalar / SSE2 / AVX2 / AVX-512 lanes (util/simd.h: cpuid probe at first
// use, ICN_SIMD override). Every lane accumulates in the SAME canonical
// 4-lane order — lane k sums elements i == k (mod 4), lanes combine as
// (s0 + s2) + (s1 + s3), the 0-3 tail elements add sequentially — so widening
// the vectors changes speed, never bits: ICN_SIMD=scalar output is
// byte-identical to the widest available lane. (The AVX-512 lanes run the
// element-wise subtract/multiply 8-wide but fold into a 4-lane accumulator in
// element order, which is what preserves the canonical order.)
//
// Two extensions on top of that contract:
//
//   - x4 row-batched kernels compute one query row against four consecutive
//     matrix rows with four independent accumulator chains. Per output they
//     run exactly the canonical order, so each of the four results is
//     byte-identical to the single-pair kernel — the batching exists to break
//     the add-latency dependency chain that bounds the single-accumulator
//     kernels, not to change the math.
//
//   - The opt-in FMA lane (ICN_SIMD=avx2fma; see util/simd.h) fuses each
//     d*d + acc into one rounding. That is a DIFFERENT canonical order —
//     same lane structure, fused multiply-adds — so it is never auto-
//     selected, and its parity reference is squared_euclidean_fma_reference
//     (std::fma in the canonical 4-lane order), not the plain scalar kernel.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "ml/matrix.h"
#include "util/error.h"

namespace icn::ml {

/// Squared Euclidean distance between two equal-length vectors, in the
/// canonical accumulation order (see file comment).
[[nodiscard]] double squared_euclidean(std::span<const double> a,
                                       std::span<const double> b);

/// Euclidean distance between two equal-length vectors.
[[nodiscard]] double euclidean(std::span<const double> a,
                               std::span<const double> b);

/// Sum of a vector in the canonical accumulation order — the dispatched
/// building block of the forecast/linkage accumulation loops.
[[nodiscard]] double vector_sum(std::span<const double> xs);

namespace detail {

// Per-level kernels, exposed for the bit-exactness parity tests and the
// SIMD benches. The wide variants must only be called when the CPU supports
// the level (util::max_supported_simd_level()); on non-x86 builds they all
// alias the scalar kernel.
[[nodiscard]] double squared_euclidean_scalar(const double* a, const double* b,
                                              std::size_t n);
[[nodiscard]] double squared_euclidean_sse2(const double* a, const double* b,
                                            std::size_t n);
[[nodiscard]] double squared_euclidean_avx2(const double* a, const double* b,
                                            std::size_t n);
[[nodiscard]] double squared_euclidean_avx512(const double* a, const double* b,
                                              std::size_t n);
[[nodiscard]] double vector_sum_scalar(const double* xs, std::size_t n);
[[nodiscard]] double vector_sum_sse2(const double* xs, std::size_t n);
[[nodiscard]] double vector_sum_avx2(const double* xs, std::size_t n);
[[nodiscard]] double vector_sum_avx512(const double* xs, std::size_t n);

// Row-batched variants: distances from `a` to the four rows starting at `b`
// with `stride` doubles between row starts. out[r] is byte-identical to the
// same-level single-pair kernel on (a, b + r*stride).
void squared_euclidean_x4_scalar(const double* a, const double* b,
                                 std::size_t stride, std::size_t n,
                                 double out[4]);
void squared_euclidean_x4_sse2(const double* a, const double* b,
                               std::size_t stride, std::size_t n,
                               double out[4]);
void squared_euclidean_x4_avx2(const double* a, const double* b,
                               std::size_t stride, std::size_t n,
                               double out[4]);
void squared_euclidean_x4_avx512(const double* a, const double* b,
                                 std::size_t stride, std::size_t n,
                                 double out[4]);

// Opt-in FMA lane (ICN_SIMD=avx2fma). The vector kernels must only run on
// AVX2+FMA hardware; the _reference kernel is portable scalar code using
// std::fma in the canonical 4-lane order and defines the bits the FMA lane
// must reproduce.
[[nodiscard]] double squared_euclidean_fma_reference(const double* a,
                                                     const double* b,
                                                     std::size_t n);
[[nodiscard]] double squared_euclidean_fma(const double* a, const double* b,
                                           std::size_t n);
void squared_euclidean_x4_fma(const double* a, const double* b,
                              std::size_t stride, std::size_t n,
                              double out[4]);

}  // namespace detail

/// Default row/column tile (in rows) for the cache-blocked condensed-distance
/// fill: 64 rows of a 168-service feature matrix is ~86 KB per panel, so one
/// row panel plus one column panel stay L2-resident.
inline constexpr std::size_t kDefaultDistanceTile = 64;

/// Fills `out` (length n*(n-1)/2, condensed upper-triangle layout) with
/// pairwise Euclidean (or squared-Euclidean) distances between the rows of X,
/// cache-blocked into `tile`-row panels and parallelized over row panels.
/// Every pair value is a pure function of rows (i, j) — panels only decide
/// iteration order, never accumulation order — so the result is byte-
/// identical for every tile size and thread count. Requires tile >= 1.
void fill_condensed(const Matrix& x, bool squared, std::span<double> out,
                    std::size_t tile = kDefaultDistanceTile);

/// Upper-triangle (i < j) pairwise Euclidean distances of the rows of X,
/// stored condensed in double (N = 4,762 -> ~90 MB) so lookups agree exactly
/// with the double-precision working distances of the linkage code. Built by
/// the tiled fill_condensed; identical for every tile size and thread count.
class CondensedDistances {
 public:
  /// Computes all pairwise distances of X's rows. Requires X.rows() >= 1 and
  /// tile >= 1.
  explicit CondensedDistances(const Matrix& x,
                              std::size_t tile = kDefaultDistanceTile);

  /// Number of points.
  [[nodiscard]] std::size_t size() const { return n_; }

  /// Distance between points i and j (0 when i == j). Bounds are checked in
  /// debug builds only: this accessor runs O(N^2) times per silhouette score.
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    ICN_DBG_REQUIRE(i < n_ && j < n_, "distance index");
    if (i == j) return 0.0;
    if (i > j) std::swap(i, j);
    return d_[index(i, j)];
  }

  /// Contiguous condensed slice d(i, i+1), d(i, i+2), ..., d(i, n-1) — the
  /// unit the vectorized silhouette/Dunn row kernels consume. Empty for the
  /// last row. Requires i < size().
  [[nodiscard]] std::span<const double> row_tail(std::size_t i) const {
    ICN_DBG_REQUIRE(i < n_, "distance row index");
    if (i + 1 >= n_) return {};
    return {d_.data() + index(i, i + 1), n_ - i - 1};
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> d_;

  // i < j assumed by callers after the swap in operator().
  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j) const {
    return i * n_ - i * (i + 1) / 2 + (j - i - 1);
  }
};

}  // namespace icn::ml
