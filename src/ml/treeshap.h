// TreeSHAP — the polynomial-time, tree-path-dependent Shapley value algorithm
// of Lundberg et al. ("From local explanations to global understanding with
// explainable AI for trees", Nat. Mach. Intell. 2020, Algorithm 2).
//
// The paper (Sec. 5.1) explains its random-forest surrogate with TreeSHAP;
// this is a from-scratch implementation on the flat TreeNode representation,
// handling multi-class leaf values in one pass.
//
// Semantics: the value function is the tree's *conditional expectation*
// f_S(x) = E[f(x) | x_S], where the expectation over missing features follows
// the training cover of each split. tree_conditional_expectation() exposes
// that value function directly so the tests can compare TreeSHAP against a
// brute-force exact Shapley computation.
#pragma once

#include <span>
#include <vector>

#include "ml/forest.h"
#include "ml/matrix.h"
#include "ml/tree.h"

namespace icn::ml {

/// SHAP values of a single tree at point x: an (M x K) matrix where
/// phi(f, c) is feature f's contribution to the class-c output.
/// Local accuracy holds: column sums equal predict_proba(x) - base values.
[[nodiscard]] Matrix tree_shap(const DecisionTree& tree,
                               std::span<const double> x);

/// Base values (expected output over the training cover distribution) of a
/// single tree; size K.
[[nodiscard]] std::vector<double> tree_base_values(const DecisionTree& tree);

/// Forest SHAP values: mean of the member trees' SHAP matrices (M x K).
[[nodiscard]] Matrix forest_shap(const RandomForest& forest,
                                 std::span<const double> x);

/// Forest base values: mean of the member trees' base values; size K.
[[nodiscard]] std::vector<double> forest_base_values(
    const RandomForest& forest);

/// forest_shap for every row of x, computed in parallel (one explanation per
/// row; each row still accumulates trees in index order, so the result is
/// bit-identical to calling forest_shap row by row).
[[nodiscard]] std::vector<Matrix> forest_shap_batch(const RandomForest& forest,
                                                    const Matrix& x);

/// The tree-path-dependent value function v(S) = E[f(x) | x_S]: features with
/// present[f] == true follow x, absent features average the children weighted
/// by training cover. Size-K output. Requires present.size() == #features.
[[nodiscard]] std::vector<double> tree_conditional_expectation(
    const DecisionTree& tree, std::span<const double> x,
    const std::vector<bool>& present);

/// Same value function for the whole forest (mean over trees).
[[nodiscard]] std::vector<double> forest_conditional_expectation(
    const RandomForest& forest, std::span<const double> x,
    const std::vector<bool>& present);

}  // namespace icn::ml
