#include "ml/matrix.h"

#include "util/error.h"

namespace icn::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  ICN_REQUIRE(data_.size() == rows_ * cols_, "matrix data size");
}

double& Matrix::at(std::size_t r, std::size_t c) {
  ICN_REQUIRE(r < rows_ && c < cols_, "matrix index");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  ICN_REQUIRE(r < rows_ && c < cols_, "matrix index");
  return data_[r * cols_ + c];
}

std::span<const double> Matrix::row(std::size_t r) const {
  ICN_REQUIRE(r < rows_, "matrix row index");
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::row(std::size_t r) {
  ICN_REQUIRE(r < rows_, "matrix row index");
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::column(std::size_t c) const {
  ICN_REQUIRE(c < cols_, "matrix column index");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    ICN_REQUIRE(idx[i] < rows_, "select_rows index");
    const auto src = row(idx[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

}  // namespace icn::ml
