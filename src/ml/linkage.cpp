#include "ml/linkage.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <numeric>

#include "ml/distance.h"
#include "util/error.h"
#include "util/parallel.h"

namespace icn::ml {
namespace {

/// Chunk size of the parallel nearest-neighbour scans. Fixed (independent of
/// the thread count) so the chunk decomposition — and with it every
/// floating-point fold — is reproducible on any machine.
constexpr std::size_t kScanGrain = 256;

/// Winner of a nearest-neighbour scan: smallest distance, earliest index on
/// ties (matching the serial strict-< scan).
struct BestNeighbour {
  double d = std::numeric_limits<double>::infinity();
  std::size_t b = static_cast<std::size_t>(-1);
};

/// Disjoint-set over leaves, tracking the smallest leaf index per component.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), min_leaf_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
    std::iota(min_leaf_.begin(), min_leaf_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Unites the two components; returns the new root.
  std::size_t unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    ICN_REQUIRE(a != b, "unite of same component");
    parent_[b] = a;
    min_leaf_[a] = std::min(min_leaf_[a], min_leaf_[b]);
    return a;
  }

  std::size_t min_leaf(std::size_t x) { return min_leaf_[find(x)]; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> min_leaf_;
};

/// Lance-Williams update for stored-distance linkages.
double lw_update(Linkage linkage, double dak, double dbk, double dab,
                 double sa, double sb, double sk) {
  switch (linkage) {
    case Linkage::kSingle:
      return std::min(dak, dbk);
    case Linkage::kComplete:
      return std::max(dak, dbk);
    case Linkage::kAverage:
      return (sa * dak + sb * dbk) / (sa + sb);
    case Linkage::kWard: {
      // Operates on squared distances.
      const double t = sa + sb + sk;
      return ((sa + sk) * dak + (sb + sk) * dbk - sk * dab) / t;
    }
  }
  ICN_REQUIRE(false, "unknown linkage");
  return 0.0;  // unreachable
}

/// Mutable condensed distance matrix over cluster slots 0..n-1.
class WorkingDistances {
 public:
  WorkingDistances(const Matrix& x, bool squared) : n_(x.rows()) {
    d_.resize(n_ * (n_ - 1) / 2);
    // Shared cache-blocked fill (ml/distance.h): byte-identical to the old
    // row-by-row loop at every tile size and thread count.
    fill_condensed(x, squared, d_);
  }

  double get(std::size_t i, std::size_t j) const {
    ICN_REQUIRE(i != j, "self distance");
    if (i > j) std::swap(i, j);
    return d_[index(i, j)];
  }

  void set(std::size_t i, std::size_t j, double v) {
    ICN_REQUIRE(i != j, "self distance");
    if (i > j) std::swap(i, j);
    d_[index(i, j)] = v;
  }

 private:
  std::size_t n_;
  std::vector<double> d_;

  std::size_t index(std::size_t i, std::size_t j) const {
    return i * n_ - i * (i + 1) / 2 + (j - i - 1);
  }
};

/// Ward merge height from cluster sizes and centroid distance (SciPy
/// convention: two singletons merge at their Euclidean distance).
double ward_height_sq(double sa, double sb, double centroid_dist_sq) {
  return 2.0 * sa * sb / (sa + sb) * centroid_dist_sq;
}

/// NN-chain with centroid-based Ward distances; O(N*M) memory.
std::vector<Dendrogram::RawMerge> ward_nn_chain(const Matrix& x) {
  const std::size_t n = x.rows();
  const std::size_t m = x.cols();
  std::vector<double> centroid(x.data().begin(), x.data().end());
  std::vector<double> size(n, 1.0);
  std::vector<std::size_t> rep(n);
  std::iota(rep.begin(), rep.end(), std::size_t{0});
  std::vector<bool> alive(n, true);
  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::vector<Dendrogram::RawMerge> raw;
  raw.reserve(n - 1);

  auto ward_d2 = [&](std::size_t a, std::size_t b) {
    // Dispatched kernel (scalar/SSE2/AVX2/AVX-512); every lane accumulates in
    // the canonical order, so the chain's merge decisions are the same at any
    // ICN_SIMD level.
    const double cd = squared_euclidean({centroid.data() + a * m, m},
                                        {centroid.data() + b * m, m});
    return ward_height_sq(size[a], size[b], cd);
  };

  std::size_t remaining = n;
  std::size_t scan_start = 0;  // first possibly-alive slot
  while (remaining > 1) {
    if (chain.empty()) {
      while (!alive[scan_start]) ++scan_start;
      chain.push_back(scan_start);
    }
    const std::size_t a = chain.back();
    const std::size_t prev =
        chain.size() >= 2 ? chain[chain.size() - 2] : static_cast<std::size_t>(-1);
    // Nearest alive neighbour of a, preferring prev on ties so the chain
    // terminates deterministically. The scan is the O(N * M) hot loop of the
    // chain: chunks scan disjoint slot ranges and the chunk winners fold in
    // slot order, reproducing the serial strict-< scan exactly.
    std::size_t best = static_cast<std::size_t>(-1);
    double best_d = std::numeric_limits<double>::infinity();
    if (prev != static_cast<std::size_t>(-1)) {
      best = prev;
      best_d = ward_d2(a, prev);
    }
    const BestNeighbour nn = icn::util::parallel_reduce(
        std::size_t{0}, n, kScanGrain, BestNeighbour{},
        [&](std::size_t lo, std::size_t hi) {
          BestNeighbour win;
          for (std::size_t b = lo; b < hi; ++b) {
            if (!alive[b] || b == a || b == prev) continue;
            const double d = ward_d2(a, b);
            if (d < win.d) {
              win.d = d;
              win.b = b;
            }
          }
          return win;
        },
        [](BestNeighbour acc, BestNeighbour win) {
          return win.d < acc.d ? win : acc;
        });
    if (nn.d < best_d) {
      best_d = nn.d;
      best = nn.b;
    }
    if (best == prev) {
      // Reciprocal nearest neighbours: merge a and prev.
      chain.pop_back();
      chain.pop_back();
      raw.push_back(Dendrogram::RawMerge{rep[a], rep[prev],
                                         std::sqrt(best_d)});
      const double sa = size[a];
      const double sb = size[prev];
      double* ca = centroid.data() + a * m;
      const double* cb = centroid.data() + prev * m;
      for (std::size_t f = 0; f < m; ++f) {
        ca[f] = (sa * ca[f] + sb * cb[f]) / (sa + sb);
      }
      size[a] = sa + sb;
      rep[a] = std::min(rep[a], rep[prev]);
      alive[prev] = false;
      --remaining;
    } else {
      chain.push_back(best);
    }
  }
  return raw;
}

/// NN-chain on a stored (condensed) distance matrix with Lance-Williams
/// updates; used for complete/average/single.
std::vector<Dendrogram::RawMerge> matrix_nn_chain(const Matrix& x,
                                                  Linkage linkage) {
  const std::size_t n = x.rows();
  WorkingDistances dist(x, /*squared=*/false);
  std::vector<double> size(n, 1.0);
  std::vector<std::size_t> rep(n);
  std::iota(rep.begin(), rep.end(), std::size_t{0});
  std::vector<bool> alive(n, true);
  std::vector<std::size_t> chain;
  std::vector<Dendrogram::RawMerge> raw;
  raw.reserve(n - 1);

  std::size_t remaining = n;
  std::size_t scan_start = 0;
  while (remaining > 1) {
    if (chain.empty()) {
      while (!alive[scan_start]) ++scan_start;
      chain.push_back(scan_start);
    }
    const std::size_t a = chain.back();
    const std::size_t prev =
        chain.size() >= 2 ? chain[chain.size() - 2] : static_cast<std::size_t>(-1);
    std::size_t best = static_cast<std::size_t>(-1);
    double best_d = std::numeric_limits<double>::infinity();
    if (prev != static_cast<std::size_t>(-1)) {
      best = prev;
      best_d = dist.get(a, prev);
    }
    // O(1) distance lookups per slot: a coarser grain than the Ward scan
    // keeps the chunk dispatch cheaper than the work it covers.
    const BestNeighbour nn = icn::util::parallel_reduce(
        std::size_t{0}, n, 4 * kScanGrain, BestNeighbour{},
        [&](std::size_t lo, std::size_t hi) {
          BestNeighbour win;
          for (std::size_t b = lo; b < hi; ++b) {
            if (!alive[b] || b == a || b == prev) continue;
            const double d = dist.get(a, b);
            if (d < win.d) {
              win.d = d;
              win.b = b;
            }
          }
          return win;
        },
        [](BestNeighbour acc, BestNeighbour win) {
          return win.d < acc.d ? win : acc;
        });
    if (nn.d < best_d) {
      best_d = nn.d;
      best = nn.b;
    }
    if (best == prev) {
      chain.pop_back();
      chain.pop_back();
      raw.push_back(Dendrogram::RawMerge{rep[a], rep[prev], best_d});
      const double dab = best_d;
      for (std::size_t k = 0; k < n; ++k) {
        if (!alive[k] || k == a || k == prev) continue;
        const double dak = dist.get(a, k);
        const double dbk = dist.get(prev, k);
        dist.set(a, k,
                 lw_update(linkage, dak, dbk, dab, size[a], size[prev],
                           size[k]));
      }
      size[a] += size[prev];
      rep[a] = std::min(rep[a], rep[prev]);
      alive[prev] = false;
      --remaining;
    } else {
      chain.push_back(best);
    }
  }
  return raw;
}

}  // namespace

const char* linkage_name(Linkage l) {
  switch (l) {
    case Linkage::kWard:
      return "ward";
    case Linkage::kComplete:
      return "complete";
    case Linkage::kAverage:
      return "average";
    case Linkage::kSingle:
      return "single";
  }
  return "?";
}

Dendrogram::Dendrogram(std::size_t num_leaves, std::vector<RawMerge> raw)
    : num_leaves_(num_leaves) {
  ICN_REQUIRE(num_leaves >= 1, "dendrogram needs leaves");
  ICN_REQUIRE(raw.size() == num_leaves - 1, "dendrogram needs N-1 merges");
  std::stable_sort(raw.begin(), raw.end(),
                   [](const RawMerge& a, const RawMerge& b) {
                     return a.height < b.height;
                   });
  // Assign SciPy-style node ids in height order.
  UnionFind uf(num_leaves);
  std::vector<std::size_t> node_id(num_leaves);
  std::vector<std::size_t> node_size(num_leaves, 1);
  std::iota(node_id.begin(), node_id.end(), std::size_t{0});
  merges_.reserve(raw.size());
  for (std::size_t t = 0; t < raw.size(); ++t) {
    const std::size_t ra = uf.find(raw[t].rep_a);
    const std::size_t rb = uf.find(raw[t].rep_b);
    ICN_REQUIRE(ra != rb, "raw merges must form a tree");
    Merge m;
    m.left = node_id[ra];
    m.right = node_id[rb];
    if (m.left > m.right) std::swap(m.left, m.right);
    m.height = raw[t].height;
    m.size = node_size[ra] + node_size[rb];
    const std::size_t root = uf.unite(ra, rb);
    node_id[root] = num_leaves_ + t;
    node_size[root] = m.size;
    merges_.push_back(m);
  }
}

std::vector<int> Dendrogram::cut(std::size_t k) const {
  ICN_REQUIRE(k >= 1 && k <= num_leaves_, "cut k in [1, N]");
  UnionFind uf(num_leaves_);
  // Re-derive leaf representatives for the height-ordered merges: every node
  // id >= N corresponds to merge id - N; walk down to any leaf.
  auto leaf_of = [&](std::size_t node) {
    while (node >= num_leaves_) node = merges_[node - num_leaves_].left;
    return node;
  };
  const std::size_t steps = num_leaves_ - k;
  for (std::size_t t = 0; t < steps; ++t) {
    uf.unite(leaf_of(merges_[t].left), leaf_of(merges_[t].right));
  }
  // Deterministic labels: order components by their smallest leaf index.
  std::vector<int> labels(num_leaves_, -1);
  int next = 0;
  std::vector<int> root_label(num_leaves_, -1);
  for (std::size_t i = 0; i < num_leaves_; ++i) {
    const std::size_t r = uf.find(i);
    if (root_label[r] < 0) root_label[r] = next++;
    labels[i] = root_label[r];
  }
  ICN_REQUIRE(static_cast<std::size_t>(next) == k, "cut produced wrong k");
  return labels;
}

double Dendrogram::cut_height(std::size_t k) const {
  ICN_REQUIRE(k >= 2 && k <= num_leaves_, "cut_height k in [2, N]");
  return merges_[num_leaves_ - k].height;
}

std::string Dendrogram::render(std::size_t max_depth) const {
  if (merges_.empty()) return "(single leaf)\n";
  std::string out;
  char buf[128];
  // Recursive print from the root (last merge).
  auto print_node = [&](auto&& self, std::size_t node, std::size_t depth,
                        const std::string& prefix) -> void {
    if (node < num_leaves_) {
      std::snprintf(buf, sizeof(buf), "%sleaf %zu\n", prefix.c_str(), node);
      out += buf;
      return;
    }
    const Merge& m = merges_[node - num_leaves_];
    std::snprintf(buf, sizeof(buf), "%s+- h=%.3f n=%zu\n", prefix.c_str(),
                  m.height, m.size);
    out += buf;
    if (depth + 1 >= max_depth) {
      return;
    }
    self(self, m.right, depth + 1, prefix + "|  ");
    self(self, m.left, depth + 1, prefix + "|  ");
  };
  print_node(print_node, num_leaves_ + merges_.size() - 1, 0, "");
  return out;
}

Dendrogram agglomerative_cluster(const Matrix& x, Linkage linkage) {
  ICN_REQUIRE(x.rows() >= 1 && x.cols() >= 1, "clustering input shape");
  if (x.rows() == 1) return Dendrogram(1, {});
  if (linkage == Linkage::kWard) {
    return Dendrogram(x.rows(), ward_nn_chain(x));
  }
  return Dendrogram(x.rows(), matrix_nn_chain(x, linkage));
}

std::vector<float> cophenetic_distances(const Dendrogram& tree) {
  const std::size_t n = tree.num_leaves();
  ICN_REQUIRE(n >= 2, "cophenetic distances need >= 2 leaves");
  std::vector<float> d(n * (n - 1) / 2, 0.0f);
  auto index = [n](std::size_t i, std::size_t j) {
    if (i > j) std::swap(i, j);
    return i * n - i * (i + 1) / 2 + (j - i - 1);
  };
  // Walk the height-ordered merges, holding explicit member lists; every
  // cross pair of a merge gets that merge's height. Each pair is written
  // exactly once, so the total work is O(n^2).
  std::vector<std::vector<std::uint32_t>> members(n);
  std::vector<std::size_t> node_of_leaf(n);
  for (std::size_t i = 0; i < n; ++i) {
    members[i] = {static_cast<std::uint32_t>(i)};
    node_of_leaf[i] = i;
  }
  // Component slot per dendrogram node id.
  std::vector<std::size_t> slot(n + tree.merges().size());
  for (std::size_t i = 0; i < n; ++i) slot[i] = i;
  for (std::size_t t = 0; t < tree.merges().size(); ++t) {
    const Merge& m = tree.merges()[t];
    std::size_t sa = slot[m.left];
    std::size_t sb = slot[m.right];
    if (members[sa].size() < members[sb].size()) std::swap(sa, sb);
    for (const std::uint32_t a : members[sa]) {
      for (const std::uint32_t b : members[sb]) {
        d[index(a, b)] = static_cast<float>(m.height);
      }
    }
    members[sa].insert(members[sa].end(), members[sb].begin(),
                       members[sb].end());
    members[sb].clear();
    members[sb].shrink_to_fit();
    slot[n + t] = sa;
  }
  return d;
}

double cophenetic_correlation(const Dendrogram& tree, const Matrix& x) {
  ICN_REQUIRE(x.rows() == tree.num_leaves() && x.rows() >= 2,
              "cophenetic correlation input");
  const auto coph = cophenetic_distances(tree);
  // Streaming Pearson against the original pairwise distances, reduced over
  // row chunks of the upper triangle. Row i owns the condensed slice
  // starting at i*n - i*(i+1)/2, so chunks touch disjoint pairs and the
  // partials fold left-to-right — the result depends only on the grain,
  // never on the thread count.
  struct PearsonSums {
    double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  };
  const std::size_t n = x.rows();
  const auto sums = icn::util::parallel_reduce(
      std::size_t{0}, n, 4, PearsonSums{},
      [&](std::size_t lo, std::size_t hi) {
        PearsonSums p;
        for (std::size_t i = lo; i < hi; ++i) {
          const auto ri = x.row(i);
          std::size_t idx = i * n - i * (i + 1) / 2;
          for (std::size_t j = i + 1; j < n; ++j, ++idx) {
            const double a = euclidean(ri, x.row(j));
            const double b = static_cast<double>(coph[idx]);
            p.sx += a;
            p.sy += b;
            p.sxx += a * a;
            p.syy += b * b;
            p.sxy += a * b;
          }
        }
        return p;
      },
      [](PearsonSums acc, PearsonSums p) {
        acc.sx += p.sx;
        acc.sy += p.sy;
        acc.sxx += p.sxx;
        acc.syy += p.syy;
        acc.sxy += p.sxy;
        return acc;
      });
  const double count = static_cast<double>(coph.size());
  const double cov = sums.sxy - sums.sx * sums.sy / count;
  const double va = sums.sxx - sums.sx * sums.sx / count;
  const double vb = sums.syy - sums.sy * sums.sy / count;
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

Dendrogram naive_agglomerative(const Matrix& x, Linkage linkage) {
  ICN_REQUIRE(x.rows() >= 1 && x.cols() >= 1, "clustering input shape");
  const std::size_t n = x.rows();
  if (n == 1) return Dendrogram(1, {});
  const bool squared = linkage == Linkage::kWard;
  WorkingDistances dist(x, squared);
  std::vector<double> size(n, 1.0);
  std::vector<std::size_t> rep(n);
  std::iota(rep.begin(), rep.end(), std::size_t{0});
  std::vector<bool> alive(n, true);
  std::vector<Dendrogram::RawMerge> raw;
  raw.reserve(n - 1);
  // Winner of the naive O(N^2) argmin scan: smallest distance, row-major
  // earliest pair on ties — exactly what the serial strict-< scan picks.
  struct BestPair {
    double d = std::numeric_limits<double>::infinity();
    std::size_t i = 0, j = 0;
  };
  for (std::size_t step = 0; step + 1 < n; ++step) {
    // Chunks scan disjoint row ranges; partials fold in chunk order with
    // strict <, so earlier rows win ties and the result matches the serial
    // scan for every thread count and grain.
    const BestPair win = icn::util::parallel_reduce(
        std::size_t{0}, n, kScanGrain, BestPair{},
        [&](std::size_t lo, std::size_t hi) {
          BestPair p;
          for (std::size_t i = lo; i < hi; ++i) {
            if (!alive[i]) continue;
            for (std::size_t j = i + 1; j < n; ++j) {
              if (!alive[j]) continue;
              const double d = dist.get(i, j);
              if (d < p.d) {
                p.d = d;
                p.i = i;
                p.j = j;
              }
            }
          }
          return p;
        },
        [](BestPair acc, BestPair p) { return p.d < acc.d ? p : acc; });
    const std::size_t ba = win.i, bb = win.j;
    const double best = win.d;
    raw.push_back(Dendrogram::RawMerge{rep[ba], rep[bb],
                                       squared ? std::sqrt(best) : best});
    for (std::size_t k = 0; k < n; ++k) {
      if (!alive[k] || k == ba || k == bb) continue;
      dist.set(ba, k,
               lw_update(linkage, dist.get(ba, k), dist.get(bb, k), best,
                         size[ba], size[bb], size[k]));
    }
    size[ba] += size[bb];
    rep[ba] = std::min(rep[ba], rep[bb]);
    alive[bb] = false;
  }
  return Dendrogram(n, std::move(raw));
}

}  // namespace icn::ml
