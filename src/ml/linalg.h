// Tiny dense linear algebra: just enough to solve the weighted least-squares
// system at the heart of KernelSHAP.
#pragma once

#include <vector>

#include "ml/matrix.h"

namespace icn::ml {

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Requires A square, b.size() == A.rows(). Throws PreconditionError on a
/// (numerically) singular system.
[[nodiscard]] std::vector<double> solve_linear_system(Matrix a,
                                                      std::vector<double> b);

/// Solves the weighted least-squares problem min ||W^(1/2) (X beta - y)||^2
/// via the normal equations X^T W X beta = X^T W y.
/// Requires x.rows() == y.size() == w.size(), all weights >= 0.
[[nodiscard]] std::vector<double> weighted_least_squares(
    const Matrix& x, const std::vector<double>& y,
    const std::vector<double>& w);

}  // namespace icn::ml
