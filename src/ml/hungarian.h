// Hungarian (Kuhn–Munkres) assignment, used to align arbitrary cluster ids
// with the paper's cluster numbering (and with generative archetype ids in
// the tests) by maximizing label overlap.
#pragma once

#include <span>
#include <vector>

#include "ml/matrix.h"

namespace icn::ml {

/// Solves the square assignment problem: returns `assign` with
/// assign[row] = column, minimizing the total cost. Requires a square,
/// finite cost matrix.
[[nodiscard]] std::vector<std::size_t> hungarian_min_cost(const Matrix& cost);

/// Best one-to-one mapping from `from` labels onto `to` labels (both in
/// [0, k)) maximizing the number of agreeing positions; returns map with
/// map[from_label] = to_label. Requires equal-sized non-empty label arrays.
[[nodiscard]] std::vector<int> align_labels(std::span<const int> from,
                                            std::span<const int> to, int k);

/// Applies a label map: out[i] = map[labels[i]].
[[nodiscard]] std::vector<int> apply_label_map(std::span<const int> labels,
                                               std::span<const int> map);

}  // namespace icn::ml
