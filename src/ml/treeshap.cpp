#include "ml/treeshap.h"

#include <cstddef>
#include <cstring>

#include "util/arena.h"
#include "util/error.h"
#include "util/parallel.h"

namespace icn::ml {
namespace {

/// One element of the TreeSHAP feature path (Lundberg Alg. 2).
struct PathElement {
  int d = -1;      ///< Feature index (-1 for the root placeholder).
  double z = 1.0;  ///< Fraction of "zero" (missing-feature) paths that flow through.
  double o = 1.0;  ///< Fraction of "one" (present-feature) paths that flow through.
  double w = 0.0;  ///< Permutation weight of subsets of this size.
};

/// Non-owning path slice over arena storage. Each recursion level copies its
/// parent's elements into a fresh arena allocation (one level of spare
/// capacity for the extend), replacing the per-node-visit heap vector copy
/// the recursion used to make. memcpy of the elements is bit-identical to
/// the old vector copy, so the algorithm's output is unchanged.
struct Path {
  PathElement* data = nullptr;
  std::size_t size = 0;

  PathElement& operator[](std::size_t i) { return data[i]; }
  const PathElement& operator[](std::size_t i) const { return data[i]; }
};

/// Arena-allocates a copy of `parent` with room for one more element.
Path clone_for_extend(const Path& parent, icn::util::Arena& arena) {
  Path out{arena.alloc<PathElement>(parent.size + 1), parent.size};
  if (parent.size != 0) {
    std::memcpy(out.data, parent.data, parent.size * sizeof(PathElement));
  }
  return out;
}

/// Grows the path by one split (EXTEND of Alg. 2). The caller guarantees one
/// element of spare capacity (see clone_for_extend).
void extend(Path& m, double pz, double po, int pi) {
  const std::size_t l = m.size;
  m.data[l] = PathElement{pi, pz, po, l == 0 ? 1.0 : 0.0};
  m.size = l + 1;
  for (std::size_t i = l; i-- > 0;) {
    m[i + 1].w += po * m[i].w * static_cast<double>(i + 1) /
                  static_cast<double>(l + 1);
    m[i].w = pz * m[i].w * static_cast<double>(l - i) /
             static_cast<double>(l + 1);
  }
}

/// Removes path element i, restoring the weights (UNWIND of Alg. 2).
void unwind(Path& m, std::size_t i) {
  const std::size_t depth = m.size;
  const double o_i = m[i].o;
  const double z_i = m[i].z;
  double n = m[depth - 1].w;
  for (std::size_t j = depth - 1; j-- > 0;) {
    if (o_i != 0.0) {
      const double t = m[j].w;
      m[j].w = n * static_cast<double>(depth) /
               (static_cast<double>(j + 1) * o_i);
      n = t - m[j].w * z_i * static_cast<double>(depth - 1 - j) /
                  static_cast<double>(depth);
    } else {
      m[j].w = m[j].w * static_cast<double>(depth) /
               (z_i * static_cast<double>(depth - 1 - j));
    }
  }
  for (std::size_t j = i; j + 1 < depth; ++j) {
    m[j].d = m[j + 1].d;
    m[j].z = m[j + 1].z;
    m[j].o = m[j + 1].o;
  }
  --m.size;
}

/// Sum of the weights unwind(m, i) would produce, without mutating the path.
double unwound_sum(const Path& m, std::size_t i) {
  const std::size_t depth = m.size;
  const double o_i = m[i].o;
  const double z_i = m[i].z;
  double n = m[depth - 1].w;
  double total = 0.0;
  for (std::size_t j = depth - 1; j-- > 0;) {
    if (o_i != 0.0) {
      const double t = n * static_cast<double>(depth) /
                       (static_cast<double>(j + 1) * o_i);
      total += t;
      n = m[j].w - t * z_i * static_cast<double>(depth - 1 - j) /
                       static_cast<double>(depth);
    } else {
      total += m[j].w * static_cast<double>(depth) /
               (z_i * static_cast<double>(depth - 1 - j));
    }
  }
  return total;
}

/// Recursive pass of Alg. 2 accumulating phi (M x K, row-major in `phi`).
/// The frame opened here releases this level's path copy (and everything the
/// two child calls allocated) when the level returns, so a whole-tree pass
/// peaks at O(depth²) arena bytes and does zero heap allocations after the
/// arena warms up.
void recurse(const std::vector<TreeNode>& nodes, std::span<const double> x,
             Matrix& phi, int node_id, const Path& parent, double pz,
             double po, int pi, icn::util::Arena& arena) {
  const icn::util::Arena::Frame frame(arena);
  Path m = clone_for_extend(parent, arena);
  extend(m, pz, po, pi);
  const TreeNode& node = nodes[static_cast<std::size_t>(node_id)];
  if (node.is_leaf()) {
    for (std::size_t i = 1; i < m.size; ++i) {
      const double w = unwound_sum(m, i);
      const double scale = w * (m[i].o - m[i].z);
      const auto f = static_cast<std::size_t>(m[i].d);
      for (std::size_t c = 0; c < node.value.size(); ++c) {
        phi(f, c) += scale * node.value[c];
      }
    }
    return;
  }
  const auto f = static_cast<std::size_t>(node.feature);
  const bool go_left = x[f] <= node.threshold;
  const int hot = go_left ? node.left : node.right;
  const int cold = go_left ? node.right : node.left;
  double incoming_z = 1.0;
  double incoming_o = 1.0;
  // If this feature already appeared on the path, undo its element first so
  // each feature is unique on the path.
  for (std::size_t i = 1; i < m.size; ++i) {
    if (m[i].d == node.feature) {
      incoming_z = m[i].z;
      incoming_o = m[i].o;
      unwind(m, i);
      break;
    }
  }
  const double cover = node.cover;
  const double hot_cover = nodes[static_cast<std::size_t>(hot)].cover;
  const double cold_cover = nodes[static_cast<std::size_t>(cold)].cover;
  recurse(nodes, x, phi, hot, m, incoming_z * hot_cover / cover, incoming_o,
          node.feature, arena);
  recurse(nodes, x, phi, cold, m, incoming_z * cold_cover / cover, 0.0,
          node.feature, arena);
}

std::vector<double> conditional_expectation_impl(
    const std::vector<TreeNode>& nodes, int node_id, std::span<const double> x,
    const std::vector<bool>& present) {
  const TreeNode& node = nodes[static_cast<std::size_t>(node_id)];
  if (node.is_leaf()) return node.value;
  const auto f = static_cast<std::size_t>(node.feature);
  if (present[f]) {
    const int next = x[f] <= node.threshold ? node.left : node.right;
    return conditional_expectation_impl(nodes, next, x, present);
  }
  const auto left =
      conditional_expectation_impl(nodes, node.left, x, present);
  const auto right =
      conditional_expectation_impl(nodes, node.right, x, present);
  const double wl = nodes[static_cast<std::size_t>(node.left)].cover;
  const double wr = nodes[static_cast<std::size_t>(node.right)].cover;
  std::vector<double> out(left.size());
  for (std::size_t c = 0; c < out.size(); ++c) {
    out[c] = (wl * left[c] + wr * right[c]) / (wl + wr);
  }
  return out;
}

}  // namespace

Matrix tree_shap(const DecisionTree& tree, std::span<const double> x) {
  ICN_REQUIRE(tree.is_fitted(), "tree_shap on unfitted tree");
  Matrix phi(x.size(), static_cast<std::size_t>(tree.num_classes()));
  auto& arena = icn::util::scratch_arena();
  const icn::util::Arena::Frame frame(arena);
  recurse(tree.nodes(), x, phi, 0, Path{}, 1.0, 1.0, -1, arena);
  return phi;
}

std::vector<double> tree_base_values(const DecisionTree& tree) {
  ICN_REQUIRE(tree.is_fitted(), "base values on unfitted tree");
  // Node values are cover-weighted class distributions, so the root value is
  // exactly the cover-weighted mean over leaves.
  return tree.nodes().front().value;
}

Matrix forest_shap(const RandomForest& forest, std::span<const double> x) {
  ICN_REQUIRE(forest.is_fitted(), "forest_shap on unfitted forest");
  Matrix acc(x.size(), static_cast<std::size_t>(forest.num_classes()));
  for (const auto& tree : forest.trees()) {
    const Matrix phi = tree_shap(tree, x);
    for (std::size_t i = 0; i < acc.data().size(); ++i) {
      acc.data()[i] += phi.data()[i];
    }
  }
  const double inv = 1.0 / static_cast<double>(forest.trees().size());
  for (auto& v : acc.data()) v *= inv;
  return acc;
}

std::vector<Matrix> forest_shap_batch(const RandomForest& forest,
                                      const Matrix& x) {
  ICN_REQUIRE(forest.is_fitted(), "forest_shap_batch on unfitted forest");
  std::vector<Matrix> out(x.rows());
  icn::util::parallel_for(0, x.rows(), 1,
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t r = lo; r < hi; ++r) {
                              out[r] = forest_shap(forest, x.row(r));
                            }
                          });
  return out;
}

std::vector<double> forest_base_values(const RandomForest& forest) {
  ICN_REQUIRE(forest.is_fitted(), "base values on unfitted forest");
  std::vector<double> base(static_cast<std::size_t>(forest.num_classes()),
                           0.0);
  for (const auto& tree : forest.trees()) {
    const auto b = tree_base_values(tree);
    for (std::size_t c = 0; c < base.size(); ++c) base[c] += b[c];
  }
  const double inv = 1.0 / static_cast<double>(forest.trees().size());
  for (auto& v : base) v *= inv;
  return base;
}

std::vector<double> tree_conditional_expectation(
    const DecisionTree& tree, std::span<const double> x,
    const std::vector<bool>& present) {
  ICN_REQUIRE(tree.is_fitted(), "conditional expectation on unfitted tree");
  ICN_REQUIRE(present.size() == x.size(), "present mask size");
  return conditional_expectation_impl(tree.nodes(), 0, x, present);
}

std::vector<double> forest_conditional_expectation(
    const RandomForest& forest, std::span<const double> x,
    const std::vector<bool>& present) {
  ICN_REQUIRE(forest.is_fitted(), "conditional expectation on unfitted forest");
  std::vector<double> out(static_cast<std::size_t>(forest.num_classes()),
                          0.0);
  for (const auto& tree : forest.trees()) {
    const auto v = tree_conditional_expectation(tree, x, present);
    for (std::size_t c = 0; c < out.size(); ++c) out[c] += v[c];
  }
  const double inv = 1.0 / static_cast<double>(forest.trees().size());
  for (auto& v : out) v *= inv;
  return out;
}

}  // namespace icn::ml
