#include "ml/metrics.h"

#include <algorithm>
#include <limits>

#include "ml/kernels.h"
#include "util/error.h"
#include "util/parallel.h"

namespace icn::ml {
namespace {

/// Validates labels and returns (k, per-cluster counts).
std::vector<std::size_t> cluster_counts(std::span<const int> labels) {
  ICN_REQUIRE(!labels.empty(), "empty labels");
  int k = 0;
  for (const int l : labels) {
    ICN_REQUIRE(l >= 0, "negative label");
    k = std::max(k, l + 1);
  }
  std::vector<std::size_t> counts(static_cast<std::size_t>(k), 0);
  for (const int l : labels) ++counts[static_cast<std::size_t>(l)];
  for (const std::size_t c : counts) {
    ICN_REQUIRE(c > 0, "empty cluster in labels");
  }
  ICN_REQUIRE(k >= 2, "validity indices require >= 2 clusters");
  return counts;
}

}  // namespace

double silhouette_score(const CondensedDistances& dist,
                        std::span<const int> labels) {
  ICN_REQUIRE(labels.size() == dist.size(), "labels vs distances size");
  const auto counts = cluster_counts(labels);
  const std::size_t n = labels.size();
  const std::size_t k = counts.size();
  // Linear-pass formulation: sums[i*k + c] = sum of d(i, j) over j != i with
  // labels[j] == c, assembled from condensed row tails so every distance is
  // read once from contiguous memory (the old per-point row scan read the
  // lower triangle through strided index arithmetic).
  //
  // For the chunk [lo, hi):
  //   forward  — row i's tail (j > i) feeds the dispatched labeled_sums
  //              kernel straight into sums row i;
  //   backward — the contributions with j < i live in the tails of earlier
  //              rows: tail(j) holds d(j, i) contiguously for i in
  //              [max(j+1, lo), hi), one strided += per element.
  // Cell (i, c) therefore receives its canonical forward value first, then
  // the j < i contributions in ascending-j order — a fixed order regardless
  // of chunk boundaries — and is written only by the chunk owning i, so the
  // score is identical at any grain, thread count, or steal schedule.
  std::vector<double> s(n, 0.0);
  std::vector<double> sums(n * k, 0.0);
  icn::util::parallel_for(0, n, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      labeled_sums(dist.row_tail(i), labels.subspan(i + 1), k,
                   &sums[i * k]);
    }
    for (std::size_t j = 0; j + 1 < hi; ++j) {
      const std::size_t first = std::max(j + 1, lo);
      const auto tail = dist.row_tail(j);
      const auto c = static_cast<std::size_t>(labels[j]);
      for (std::size_t i = first; i < hi; ++i) {
        sums[i * k + c] += tail[i - j - 1];
      }
    }
    for (std::size_t i = lo; i < hi; ++i) {
      const auto own = static_cast<std::size_t>(labels[i]);
      if (counts[own] == 1) {
        continue;  // s(i) = 0 for singletons
      }
      const double* row = &sums[i * k];
      const double a = row[own] / static_cast<double>(counts[own] - 1);
      double b = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        if (c == own) continue;
        b = std::min(b, row[c] / static_cast<double>(counts[c]));
      }
      const double denom = std::max(a, b);
      if (denom > 0.0) s[i] = (b - a) / denom;
    }
  });
  double total = 0.0;
  for (const double v : s) total += v;
  return total / static_cast<double>(n);
}

double dunn_index(const CondensedDistances& dist,
                  std::span<const int> labels) {
  ICN_REQUIRE(labels.size() == dist.size(), "labels vs distances size");
  (void)cluster_counts(labels);
  const std::size_t n = labels.size();
  // Min/max reductions are order-independent, so per-chunk extrema combined
  // in any order give the exact serial result.
  struct Extrema {
    double min_inter = std::numeric_limits<double>::infinity();
    double max_diam = 0.0;
  };
  const Extrema ex = icn::util::parallel_reduce(
      std::size_t{0}, n, 8, Extrema{},
      [&](std::size_t lo, std::size_t hi) {
        Extrema e;
        for (std::size_t i = lo; i < hi; ++i) {
          labeled_extrema(dist.row_tail(i), labels.subspan(i + 1), labels[i],
                          &e.min_inter, &e.max_diam);
        }
        return e;
      },
      [](Extrema acc, Extrema e) {
        acc.min_inter = std::min(acc.min_inter, e.min_inter);
        acc.max_diam = std::max(acc.max_diam, e.max_diam);
        return acc;
      });
  if (ex.max_diam == 0.0) return std::numeric_limits<double>::infinity();
  return ex.min_inter / ex.max_diam;
}

double silhouette_score(const Matrix& x, std::span<const int> labels) {
  return silhouette_score(CondensedDistances(x), labels);
}

double dunn_index(const Matrix& x, std::span<const int> labels) {
  return dunn_index(CondensedDistances(x), labels);
}

namespace {

/// Per-cluster centroids and the validated cluster count.
struct Centroids {
  std::vector<std::vector<double>> mean;  ///< k x m
  std::vector<std::size_t> counts;
};

Centroids compute_centroids(const Matrix& x, std::span<const int> labels) {
  ICN_REQUIRE(x.rows() == labels.size(), "labels vs matrix size");
  Centroids c;
  c.counts = cluster_counts(labels);
  const std::size_t k = c.counts.size();
  c.mean.assign(k, std::vector<double>(x.cols(), 0.0));
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    auto& mean = c.mean[static_cast<std::size_t>(labels[i])];
    for (std::size_t f = 0; f < x.cols(); ++f) mean[f] += row[f];
  }
  for (std::size_t cl = 0; cl < k; ++cl) {
    for (auto& v : c.mean[cl]) v /= static_cast<double>(c.counts[cl]);
  }
  return c;
}

}  // namespace

double davies_bouldin_index(const Matrix& x, std::span<const int> labels) {
  const Centroids c = compute_centroids(x, labels);
  const std::size_t k = c.counts.size();
  // Mean distance of each cluster's points to its centroid (scatter).
  std::vector<double> scatter(k, 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto cl = static_cast<std::size_t>(labels[i]);
    scatter[cl] += euclidean(x.row(i), c.mean[cl]);
  }
  for (std::size_t cl = 0; cl < k; ++cl) {
    scatter[cl] /= static_cast<double>(c.counts[cl]);
  }
  double total = 0.0;
  for (std::size_t a = 0; a < k; ++a) {
    double worst = 0.0;
    for (std::size_t b = 0; b < k; ++b) {
      if (a == b) continue;
      const double d = euclidean(c.mean[a], c.mean[b]);
      ICN_REQUIRE(d > 0.0, "coincident cluster centroids");
      worst = std::max(worst, (scatter[a] + scatter[b]) / d);
    }
    total += worst;
  }
  return total / static_cast<double>(k);
}

double calinski_harabasz_index(const Matrix& x, std::span<const int> labels) {
  const Centroids c = compute_centroids(x, labels);
  const std::size_t k = c.counts.size();
  const std::size_t n = x.rows();
  ICN_REQUIRE(k < n, "Calinski-Harabasz requires k < n");
  // Global centroid.
  std::vector<double> global(x.cols(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = x.row(i);
    for (std::size_t f = 0; f < x.cols(); ++f) global[f] += row[f];
  }
  for (auto& v : global) v /= static_cast<double>(n);
  double between = 0.0;
  for (std::size_t cl = 0; cl < k; ++cl) {
    between += static_cast<double>(c.counts[cl]) *
               squared_euclidean(c.mean[cl], global);
  }
  double within = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    within += squared_euclidean(
        x.row(i), c.mean[static_cast<std::size_t>(labels[i])]);
  }
  ICN_REQUIRE(within > 0.0, "degenerate within-cluster scatter");
  return (between / static_cast<double>(k - 1)) /
         (within / static_cast<double>(n - k));
}

double accuracy(std::span<const int> pred, std::span<const int> truth) {
  ICN_REQUIRE(pred.size() == truth.size() && !pred.empty(), "accuracy sizes");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == truth[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

std::vector<std::vector<std::size_t>> confusion_matrix(
    std::span<const int> truth, std::span<const int> pred, int k) {
  ICN_REQUIRE(truth.size() == pred.size(), "confusion sizes");
  ICN_REQUIRE(k >= 1, "confusion k");
  std::vector<std::vector<std::size_t>> m(
      static_cast<std::size_t>(k),
      std::vector<std::size_t>(static_cast<std::size_t>(k), 0));
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ICN_REQUIRE(truth[i] >= 0 && truth[i] < k, "confusion truth label");
    ICN_REQUIRE(pred[i] >= 0 && pred[i] < k, "confusion pred label");
    ++m[static_cast<std::size_t>(truth[i])][static_cast<std::size_t>(pred[i])];
  }
  return m;
}

}  // namespace icn::ml
