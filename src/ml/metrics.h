// Cluster-validity indices used as the k-selection criteria in Sec. 4.2:
// the Silhouette score (Rousseeuw 1987) and the Dunn index (Dunn 1973).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/distance.h"
#include "ml/matrix.h"

namespace icn::ml {

/// Mean Silhouette coefficient over all points, in [-1, 1].
///
/// a(i) = mean distance to the other members of i's cluster (0 for
/// singletons, whose s(i) is defined as 0); b(i) = smallest mean distance to
/// the members of any other cluster; s(i) = (b-a)/max(a,b).
/// Requires labels in [0, k), at least 2 non-empty clusters, and
/// labels.size() == dist.size().
[[nodiscard]] double silhouette_score(const CondensedDistances& dist,
                                      std::span<const int> labels);

/// Dunn index: (minimum single-linkage inter-cluster distance) /
/// (maximum cluster diameter). Larger is better; > 0 for well-separated
/// clusterings. Requires >= 2 non-empty clusters; returns +inf when every
/// cluster is a singleton (zero diameter).
[[nodiscard]] double dunn_index(const CondensedDistances& dist,
                                std::span<const int> labels);

/// Convenience overloads computing pairwise distances from the data matrix.
[[nodiscard]] double silhouette_score(const Matrix& x,
                                      std::span<const int> labels);
[[nodiscard]] double dunn_index(const Matrix& x, std::span<const int> labels);

/// Davies-Bouldin index: mean over clusters of the worst
/// (scatter_i + scatter_j) / centroid-distance ratio. Lower is better;
/// 0 for well-separated point clusters. Requires >= 2 non-empty clusters.
[[nodiscard]] double davies_bouldin_index(const Matrix& x,
                                          std::span<const int> labels);

/// Calinski-Harabasz index (variance-ratio criterion):
/// [B/(k-1)] / [W/(n-k)] with B/W the between/within-cluster sum of
/// squares. Higher is better. Requires 2 <= k < n.
[[nodiscard]] double calinski_harabasz_index(const Matrix& x,
                                             std::span<const int> labels);

/// Classification accuracy: fraction of positions where pred == truth.
/// Requires equal non-zero sizes.
[[nodiscard]] double accuracy(std::span<const int> pred,
                              std::span<const int> truth);

/// k x k confusion counts; entry (t, p) counts truth t predicted as p.
/// Requires labels in [0, k).
[[nodiscard]] std::vector<std::vector<std::size_t>> confusion_matrix(
    std::span<const int> truth, std::span<const int> pred, int k);

}  // namespace icn::ml
