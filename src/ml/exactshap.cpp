#include "ml/exactshap.h"

#include "util/error.h"

namespace icn::ml {

Matrix exact_shapley(const ValueFunction& v, std::size_t num_features,
                     std::size_t num_outputs) {
  ICN_REQUIRE(num_features >= 1 && num_features <= 20,
              "exact_shapley feature count");
  ICN_REQUIRE(num_outputs >= 1, "exact_shapley output count");
  const std::size_t m = num_features;
  const std::size_t num_subsets = std::size_t{1} << m;

  // Precompute factorials up to M.
  std::vector<double> fact(m + 1, 1.0);
  for (std::size_t i = 1; i <= m; ++i) {
    fact[i] = fact[i - 1] * static_cast<double>(i);
  }

  // Evaluate v on every subset once.
  std::vector<std::vector<double>> values(num_subsets);
  std::vector<bool> mask(m);
  for (std::size_t s = 0; s < num_subsets; ++s) {
    for (std::size_t f = 0; f < m; ++f) mask[f] = (s >> f) & 1U;
    values[s] = v(mask);
    ICN_REQUIRE(values[s].size() == num_outputs, "value function output size");
  }

  Matrix phi(m, num_outputs);
  for (std::size_t s = 0; s < num_subsets; ++s) {
    const auto size_s = static_cast<std::size_t>(__builtin_popcountll(s));
    for (std::size_t f = 0; f < m; ++f) {
      if ((s >> f) & 1U) continue;  // f must be absent from S
      const double weight =
          fact[size_s] * fact[m - size_s - 1] / fact[m];
      const std::size_t s_with = s | (std::size_t{1} << f);
      for (std::size_t c = 0; c < num_outputs; ++c) {
        phi(f, c) += weight * (values[s_with][c] - values[s][c]);
      }
    }
  }
  return phi;
}

}  // namespace icn::ml
