// Random-forest classifier: the surrogate supervised learner trained on the
// clustering labels (Sec. 5.1.2, "a random forest classifier with 100
// trees"), later explained with TreeSHAP and reused to classify outdoor
// antennas (Sec. 5.3.2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/matrix.h"
#include "ml/tree.h"
#include "util/rng.h"

namespace icn::ml {

/// Bagged ensemble of CART trees with feature subsampling.
class RandomForest {
 public:
  /// Training hyper-parameters.
  struct Params {
    std::size_t num_trees = 100;        ///< Paper uses 100 trees.
    std::size_t max_depth = 32;         ///< Per-tree depth cap.
    std::size_t min_samples_leaf = 1;   ///< Per-leaf sample floor.
    /// Features tried per split; 0 = floor(sqrt(M)) (classification default).
    std::size_t max_features = 0;
    bool bootstrap = true;              ///< Sample rows with replacement.
    std::uint64_t seed = 42;            ///< Seed for all trees' randomness.
    /// Per-node scratch source for every member tree (see DecisionTree).
    DecisionTree::Scratch scratch = DecisionTree::Scratch::kArena;
  };

  /// Fits the ensemble. Labels must lie in [0, num_classes).
  /// Requires x.rows() == y.size(), non-empty data, num_classes >= 1.
  void fit(const Matrix& x, std::span<const int> y, int num_classes,
           const Params& params);

  [[nodiscard]] bool is_fitted() const { return !trees_.empty(); }
  [[nodiscard]] int num_classes() const { return num_classes_; }
  [[nodiscard]] const std::vector<DecisionTree>& trees() const {
    return trees_;
  }

  /// Mean of the member trees' leaf class distributions.
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> x) const;

  /// Arg-max class of predict_proba.
  [[nodiscard]] int predict(std::span<const double> x) const;

  /// Predicts every row of x.
  [[nodiscard]] std::vector<int> predict_all(const Matrix& x) const;

  /// Out-of-bag accuracy estimate computed during fit (bootstrap only;
  /// NaN when bootstrap was disabled or no row was ever out of bag).
  [[nodiscard]] double oob_accuracy() const { return oob_accuracy_; }

  /// Mean-decrease-in-impurity feature importance, normalized to sum to 1
  /// (all-zero when no split was ever made).
  [[nodiscard]] std::vector<double> feature_importance() const;

 private:
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
  std::size_t num_features_ = 0;
  double oob_accuracy_ = 0.0;
};

}  // namespace icn::ml
