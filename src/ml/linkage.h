// Agglomerative hierarchical clustering (Sec. 4.2 of the paper).
//
// The paper clusters the 4,762 ICN antennas on their 73 RSCA features with
// Ward's criterion. We implement the exact nearest-neighbour-chain algorithm,
// which is O(N^2) time for reducible linkages (Ward, complete, average,
// single all are) and avoids the O(N^3) of the textbook greedy loop:
//
//  * Ward uses the centroid form, d(A,B) = sqrt(2|A||B|/(|A|+|B|)) * ||cA-cB||
//    (the SciPy height convention: two singletons merge at their Euclidean
//    distance), needing only O(N*M) memory;
//  * complete/average/single run on a condensed pairwise-distance matrix with
//    Lance-Williams updates (used by the linkage ablation bench).
//
// naive_agglomerative() is the O(N^3) textbook reference used by the tests to
// validate the chain algorithm.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ml/matrix.h"

namespace icn::ml {

/// Cluster-merge criterion.
enum class Linkage { kWard, kComplete, kAverage, kSingle };

/// Human-readable linkage name ("ward", ...).
[[nodiscard]] const char* linkage_name(Linkage l);

/// One merge step of the hierarchy. Node ids follow the SciPy convention:
/// leaves are 0..N-1, the cluster created by (height-sorted) merge step t has
/// id N + t.
struct Merge {
  std::size_t left = 0;    ///< Node id of one child.
  std::size_t right = 0;   ///< Node id of the other child.
  double height = 0.0;     ///< Linkage distance at which the children merged.
  std::size_t size = 0;    ///< Number of leaves under the new node.
};

/// The full merge hierarchy over N leaves, with cutting and rendering.
class Dendrogram {
 public:
  /// Raw merge record as produced by the algorithms: each side identified by
  /// the smallest leaf index it contains (stable under any merge order).
  struct RawMerge {
    std::size_t rep_a = 0;
    std::size_t rep_b = 0;
    double height = 0.0;
  };

  /// Builds the hierarchy from N leaves and exactly N-1 raw merges; merges
  /// are sorted by height and node ids assigned in that order.
  Dendrogram(std::size_t num_leaves, std::vector<RawMerge> raw);

  [[nodiscard]] std::size_t num_leaves() const { return num_leaves_; }

  /// Height-ordered merge steps (size num_leaves()-1).
  [[nodiscard]] const std::vector<Merge>& merges() const { return merges_; }

  /// Cluster labels (0..k-1) for every leaf when the hierarchy is cut into k
  /// clusters. Labels are assigned by ascending smallest-leaf-index, so they
  /// are deterministic. Requires 1 <= k <= num_leaves().
  [[nodiscard]] std::vector<int> cut(std::size_t k) const;

  /// The merge height at which the hierarchy goes from k to k-1 clusters,
  /// i.e. a threshold drawn just below it separates exactly k clusters.
  /// Requires 2 <= k <= num_leaves().
  [[nodiscard]] double cut_height(std::size_t k) const;

  /// ASCII rendering of the top of the tree, down to `max_depth` levels:
  /// every node prints its height and leaf count. Used by bench/fig03.
  [[nodiscard]] std::string render(std::size_t max_depth = 4) const;

 private:
  std::size_t num_leaves_ = 0;
  std::vector<Merge> merges_;
};

/// Exact agglomerative clustering via the nearest-neighbour chain.
/// Requires x.rows() >= 1 and x.cols() >= 1.
[[nodiscard]] Dendrogram agglomerative_cluster(const Matrix& x,
                                               Linkage linkage);

/// Cophenetic distances implied by a dendrogram: entry (i, j) is the merge
/// height at which leaves i and j first share a cluster. Returned condensed
/// (upper triangle, i < j, same layout as CondensedDistances) in float.
/// Requires >= 2 leaves.
[[nodiscard]] std::vector<float> cophenetic_distances(const Dendrogram& tree);

/// Cophenetic correlation coefficient: Pearson correlation between the
/// dendrogram's cophenetic distances and the original pairwise Euclidean
/// distances of x — the classic measure of how faithfully a hierarchy
/// preserves the data geometry. Requires x.rows() == tree.num_leaves() >= 2.
[[nodiscard]] double cophenetic_correlation(const Dendrogram& tree,
                                            const Matrix& x);

/// O(N^3) textbook greedy reference implementation (tests only).
[[nodiscard]] Dendrogram naive_agglomerative(const Matrix& x, Linkage linkage);

}  // namespace icn::ml
