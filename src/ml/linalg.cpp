#include "ml/linalg.h"

#include <cmath>

#include "util/error.h"

namespace icn::ml {

std::vector<double> solve_linear_system(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  ICN_REQUIRE(a.cols() == n, "solve: square matrix");
  ICN_REQUIRE(b.size() == n, "solve: rhs size");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    ICN_REQUIRE(std::fabs(a(pivot, col)) > 1e-12, "solve: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a(i, c) * x[c];
    x[i] = acc / a(i, i);
  }
  return x;
}

std::vector<double> weighted_least_squares(const Matrix& x,
                                           const std::vector<double>& y,
                                           const std::vector<double>& w) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  ICN_REQUIRE(y.size() == n && w.size() == n, "wls: sizes");
  Matrix xtwx(p, p);
  std::vector<double> xtwy(p, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    ICN_REQUIRE(w[i] >= 0.0, "wls: weight >= 0");
    const auto row = x.row(i);
    for (std::size_t a = 0; a < p; ++a) {
      const double wa = w[i] * row[a];
      xtwy[a] += wa * y[i];
      for (std::size_t b = a; b < p; ++b) xtwx(a, b) += wa * row[b];
    }
  }
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = 0; b < a; ++b) xtwx(a, b) = xtwx(b, a);
  }
  return solve_linear_system(std::move(xtwx), std::move(xtwy));
}

}  // namespace icn::ml
