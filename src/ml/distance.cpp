#include "ml/distance.h"

#include <cmath>

#include "util/error.h"
#include "util/parallel.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace icn::ml {

namespace {

// Both paths below accumulate in the same canonical 4-wide order: lane k
// sums the squared differences of elements i == k (mod 4), the lanes
// combine as (s0 + s2) + (s1 + s3), and the remaining 0-3 tail elements
// are added sequentially. Fixing one order — instead of matching whatever
// a serial loop would do — is what lets the vector and scalar builds
// produce the same bits.

#if defined(__SSE2__)

double squared_euclidean_kernel(const double* a, const double* b,
                                std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();  // lanes 0, 1
  __m128d acc23 = _mm_setzero_pd();  // lanes 2, 3
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d d23 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
  }
  alignas(16) double s01[2];
  alignas(16) double s23[2];
  _mm_store_pd(s01, acc01);
  _mm_store_pd(s23, acc23);
  double acc = (s01[0] + s23[0]) + (s01[1] + s23[1]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

#else

double squared_euclidean_kernel(const double* a, const double* b,
                                std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double acc = (s0 + s2) + (s1 + s3);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

#endif

}  // namespace

double squared_euclidean(std::span<const double> a,
                         std::span<const double> b) {
  ICN_REQUIRE(a.size() == b.size(), "distance dimensions");
  return squared_euclidean_kernel(a.data(), b.data(), a.size());
}

double euclidean(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_euclidean(a, b));
}

CondensedDistances::CondensedDistances(const Matrix& x) : n_(x.rows()) {
  ICN_REQUIRE(n_ >= 1, "CondensedDistances needs >= 1 point");
  d_.resize(n_ * (n_ - 1) / 2);
  // Row i fills the disjoint slice d_[index(i, i+1) .. index(i, n-1)]; the
  // small grain load-balances the shrinking upper-triangle rows.
  icn::util::parallel_for(0, n_, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const auto ri = x.row(i);
      for (std::size_t j = i + 1; j < n_; ++j) {
        d_[index(i, j)] = euclidean(ri, x.row(j));
      }
    }
  });
}

}  // namespace icn::ml
