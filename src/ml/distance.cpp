#include "ml/distance.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/parallel.h"
#include "util/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#define ICN_ML_X86 1
#include <immintrin.h>
#endif

namespace icn::ml {

// All kernels accumulate in the same canonical 4-lane order: lane k sums the
// elements i == k (mod 4), the lanes combine as (s0 + s2) + (s1 + s3), and
// the remaining 0-3 tail elements add sequentially. Fixing one order —
// instead of matching whatever a serial loop would do — is what lets every
// vector width and the scalar build produce the same bits. The AVX-512
// kernels run subtract/multiply 8-wide but fold the two 4-lane halves into
// the accumulator in element order, so they join the same canonical order
// rather than inventing an 8-lane one.

namespace detail {

double squared_euclidean_scalar(const double* a, const double* b,
                                std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double acc = (s0 + s2) + (s1 + s3);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

void squared_euclidean_x4_scalar(const double* a, const double* b,
                                 std::size_t stride, std::size_t n,
                                 double out[4]) {
  for (int r = 0; r < 4; ++r) {
    out[r] = squared_euclidean_scalar(a, b + static_cast<std::size_t>(r) * stride, n);
  }
}

// The bits the avx2fma lane must reproduce: the canonical 4-lane structure
// with each d*d + acc fused into a single rounding via std::fma. Portable
// scalar code — this is the parity reference for the FMA kernels on any
// hardware, and the fallback the public entry points never reach (the FMA
// lane is rejected at resolve time on non-FMA CPUs).
double squared_euclidean_fma_reference(const double* a, const double* b,
                                       std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 = std::fma(d0, d0, s0);
    s1 = std::fma(d1, d1, s1);
    s2 = std::fma(d2, d2, s2);
    s3 = std::fma(d3, d3, s3);
  }
  double acc = (s0 + s2) + (s1 + s3);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    acc = std::fma(d, d, acc);
  }
  return acc;
}

double vector_sum_scalar(const double* xs, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += xs[i];
    s1 += xs[i + 1];
    s2 += xs[i + 2];
    s3 += xs[i + 3];
  }
  double acc = (s0 + s2) + (s1 + s3);
  for (; i < n; ++i) acc += xs[i];
  return acc;
}

#if defined(ICN_ML_X86)

__attribute__((target("sse2"))) double squared_euclidean_sse2(const double* a,
                                                              const double* b,
                                                              std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();  // lanes 0, 1
  __m128d acc23 = _mm_setzero_pd();  // lanes 2, 3
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d d23 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
  }
  alignas(16) double s01[2];
  alignas(16) double s23[2];
  _mm_store_pd(s01, acc01);
  _mm_store_pd(s23, acc23);
  double acc = (s01[0] + s23[0]) + (s01[1] + s23[1]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

__attribute__((target("avx2"))) double squared_euclidean_avx2(const double* a,
                                                              const double* b,
                                                              std::size_t n) {
  __m256d acc = _mm256_setzero_pd();  // lane k = class k (mod 4)
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  double total = (s[0] + s[2]) + (s[1] + s[3]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

// GCC's _mm512_extractf64x4_pd expands through _mm256_undefined_pd, which
// trips -Wmaybe-uninitialized in the intrinsic header itself; the mask
// argument is -1 so every lane is written.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

__attribute__((target("avx512f"))) double squared_euclidean_avx512(
    const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();  // lane k = class k (mod 4)
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d d =
        _mm512_sub_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i));
    const __m512d sq = _mm512_mul_pd(d, d);
    // Fold the halves in element order to stay in the canonical 4-lane order.
    acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(sq));
    acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(sq, 1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  double total = (s[0] + s[2]) + (s[1] + s[3]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

__attribute__((target("sse2"))) double vector_sum_sse2(const double* xs,
                                                       std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = _mm_add_pd(acc01, _mm_loadu_pd(xs + i));
    acc23 = _mm_add_pd(acc23, _mm_loadu_pd(xs + i + 2));
  }
  alignas(16) double s01[2];
  alignas(16) double s23[2];
  _mm_store_pd(s01, acc01);
  _mm_store_pd(s23, acc23);
  double acc = (s01[0] + s23[0]) + (s01[1] + s23[1]);
  for (; i < n; ++i) acc += xs[i];
  return acc;
}

__attribute__((target("avx2"))) double vector_sum_avx2(const double* xs,
                                                       std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(xs + i));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  double total = (s[0] + s[2]) + (s[1] + s[3]);
  for (; i < n; ++i) total += xs[i];
  return total;
}

__attribute__((target("avx512f"))) double vector_sum_avx512(const double* xs,
                                                            std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d v = _mm512_loadu_pd(xs + i);
    acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(v));
    acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(v, 1));
  }
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(xs + i));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  double total = (s[0] + s[2]) + (s[1] + s[3]);
  for (; i < n; ++i) total += xs[i];
  return total;
}

// ---- x4 row-batched kernels --------------------------------------------
//
// One query row against four consecutive matrix rows, with four independent
// accumulator chains. The single-accumulator kernels are bound by the
// 4-cycle add latency of the accumulate (one vector add per loaded vector);
// four chains give the out-of-order core four adds in flight, which is where
// the condensed-distance speedup comes from. Each chain runs exactly the
// canonical order, so out[r] is byte-identical to the single-pair kernel.

__attribute__((target("sse2"))) void squared_euclidean_x4_sse2(
    const double* a, const double* b, std::size_t stride, std::size_t n,
    double out[4]) {
  __m128d acc01[4];
  __m128d acc23[4];
  for (int r = 0; r < 4; ++r) {
    acc01[r] = _mm_setzero_pd();
    acc23[r] = _mm_setzero_pd();
  }
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d a01 = _mm_loadu_pd(a + i);
    const __m128d a23 = _mm_loadu_pd(a + i + 2);
    for (int r = 0; r < 4; ++r) {
      const double* br = b + static_cast<std::size_t>(r) * stride;
      const __m128d d01 = _mm_sub_pd(a01, _mm_loadu_pd(br + i));
      const __m128d d23 = _mm_sub_pd(a23, _mm_loadu_pd(br + i + 2));
      acc01[r] = _mm_add_pd(acc01[r], _mm_mul_pd(d01, d01));
      acc23[r] = _mm_add_pd(acc23[r], _mm_mul_pd(d23, d23));
    }
  }
  for (int r = 0; r < 4; ++r) {
    const double* br = b + static_cast<std::size_t>(r) * stride;
    alignas(16) double s01[2];
    alignas(16) double s23[2];
    _mm_store_pd(s01, acc01[r]);
    _mm_store_pd(s23, acc23[r]);
    double acc = (s01[0] + s23[0]) + (s01[1] + s23[1]);
    for (std::size_t t = i; t < n; ++t) {
      const double d = a[t] - br[t];
      acc += d * d;
    }
    out[r] = acc;
  }
}

__attribute__((target("avx2"))) void squared_euclidean_x4_avx2(
    const double* a, const double* b, std::size_t stride, std::size_t n,
    double out[4]) {
  __m256d acc[4];
  for (int r = 0; r < 4; ++r) acc[r] = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d av = _mm256_loadu_pd(a + i);
    for (int r = 0; r < 4; ++r) {
      const __m256d d = _mm256_sub_pd(
          av, _mm256_loadu_pd(b + static_cast<std::size_t>(r) * stride + i));
      acc[r] = _mm256_add_pd(acc[r], _mm256_mul_pd(d, d));
    }
  }
  for (int r = 0; r < 4; ++r) {
    const double* br = b + static_cast<std::size_t>(r) * stride;
    alignas(32) double s[4];
    _mm256_store_pd(s, acc[r]);
    double total = (s[0] + s[2]) + (s[1] + s[3]);
    for (std::size_t t = i; t < n; ++t) {
      const double d = a[t] - br[t];
      total += d * d;
    }
    out[r] = total;
  }
}

__attribute__((target("avx512f"))) void squared_euclidean_x4_avx512(
    const double* a, const double* b, std::size_t stride, std::size_t n,
    double out[4]) {
  __m256d acc[4];
  for (int r = 0; r < 4; ++r) acc[r] = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d av = _mm512_loadu_pd(a + i);
    for (int r = 0; r < 4; ++r) {
      const __m512d d = _mm512_sub_pd(
          av, _mm512_loadu_pd(b + static_cast<std::size_t>(r) * stride + i));
      const __m512d sq = _mm512_mul_pd(d, d);
      acc[r] = _mm256_add_pd(acc[r], _mm512_castpd512_pd256(sq));
      acc[r] = _mm256_add_pd(acc[r], _mm512_extractf64x4_pd(sq, 1));
    }
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d av = _mm256_loadu_pd(a + i);
    for (int r = 0; r < 4; ++r) {
      const __m256d d = _mm256_sub_pd(
          av, _mm256_loadu_pd(b + static_cast<std::size_t>(r) * stride + i));
      acc[r] = _mm256_add_pd(acc[r], _mm256_mul_pd(d, d));
    }
  }
  for (int r = 0; r < 4; ++r) {
    const double* br = b + static_cast<std::size_t>(r) * stride;
    alignas(32) double s[4];
    _mm256_store_pd(s, acc[r]);
    double total = (s[0] + s[2]) + (s[1] + s[3]);
    for (std::size_t t = i; t < n; ++t) {
      const double d = a[t] - br[t];
      total += d * d;
    }
    out[r] = total;
  }
}

// ---- opt-in FMA lane ----------------------------------------------------

__attribute__((target("avx2,fma"))) double squared_euclidean_fma(
    const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_fmadd_pd(d, d, acc);
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  double total = (s[0] + s[2]) + (s[1] + s[3]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    total = std::fma(d, d, total);
  }
  return total;
}

__attribute__((target("avx2,fma"))) void squared_euclidean_x4_fma(
    const double* a, const double* b, std::size_t stride, std::size_t n,
    double out[4]) {
  __m256d acc[4];
  for (int r = 0; r < 4; ++r) acc[r] = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d av = _mm256_loadu_pd(a + i);
    for (int r = 0; r < 4; ++r) {
      const __m256d d = _mm256_sub_pd(
          av, _mm256_loadu_pd(b + static_cast<std::size_t>(r) * stride + i));
      acc[r] = _mm256_fmadd_pd(d, d, acc[r]);
    }
  }
  for (int r = 0; r < 4; ++r) {
    const double* br = b + static_cast<std::size_t>(r) * stride;
    alignas(32) double s[4];
    _mm256_store_pd(s, acc[r]);
    double total = (s[0] + s[2]) + (s[1] + s[3]);
    for (std::size_t t = i; t < n; ++t) {
      const double d = a[t] - br[t];
      total = std::fma(d, d, total);
    }
    out[r] = total;
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#else  // !ICN_ML_X86

// Non-x86 builds: every lane aliases the scalar kernel — dispatch still
// works, ICN_SIMD levels above scalar are rejected by util::simd_level().
double squared_euclidean_sse2(const double* a, const double* b,
                              std::size_t n) {
  return squared_euclidean_scalar(a, b, n);
}
double squared_euclidean_avx2(const double* a, const double* b,
                              std::size_t n) {
  return squared_euclidean_scalar(a, b, n);
}
double squared_euclidean_avx512(const double* a, const double* b,
                                std::size_t n) {
  return squared_euclidean_scalar(a, b, n);
}
double vector_sum_sse2(const double* xs, std::size_t n) {
  return vector_sum_scalar(xs, n);
}
double vector_sum_avx2(const double* xs, std::size_t n) {
  return vector_sum_scalar(xs, n);
}
double vector_sum_avx512(const double* xs, std::size_t n) {
  return vector_sum_scalar(xs, n);
}
void squared_euclidean_x4_sse2(const double* a, const double* b,
                               std::size_t stride, std::size_t n,
                               double out[4]) {
  squared_euclidean_x4_scalar(a, b, stride, n, out);
}
void squared_euclidean_x4_avx2(const double* a, const double* b,
                               std::size_t stride, std::size_t n,
                               double out[4]) {
  squared_euclidean_x4_scalar(a, b, stride, n, out);
}
void squared_euclidean_x4_avx512(const double* a, const double* b,
                                 std::size_t stride, std::size_t n,
                                 double out[4]) {
  squared_euclidean_x4_scalar(a, b, stride, n, out);
}
double squared_euclidean_fma(const double* a, const double* b, std::size_t n) {
  return squared_euclidean_fma_reference(a, b, n);
}
void squared_euclidean_x4_fma(const double* a, const double* b,
                              std::size_t stride, std::size_t n,
                              double out[4]) {
  for (int r = 0; r < 4; ++r) {
    out[r] = squared_euclidean_fma_reference(
        a, b + static_cast<std::size_t>(r) * stride, n);
  }
}

#endif  // ICN_ML_X86

}  // namespace detail

namespace {

using SquaredEuclideanFn = double (*)(const double*, const double*,
                                      std::size_t);
using SquaredEuclideanX4Fn = void (*)(const double*, const double*,
                                      std::size_t, std::size_t, double*);
using VectorSumFn = double (*)(const double*, std::size_t);

SquaredEuclideanFn pick_squared_euclidean() {
  switch (icn::util::simd_level()) {
    case icn::util::SimdLevel::kScalar:
      return detail::squared_euclidean_scalar;
    case icn::util::SimdLevel::kSse2:
      return detail::squared_euclidean_sse2;
    case icn::util::SimdLevel::kAvx2:
      return detail::squared_euclidean_avx2;
    case icn::util::SimdLevel::kAvx512:
      return detail::squared_euclidean_avx512;
    case icn::util::SimdLevel::kAvx2Fma:
      return detail::squared_euclidean_fma;
  }
  return detail::squared_euclidean_scalar;
}

SquaredEuclideanX4Fn pick_squared_euclidean_x4() {
  switch (icn::util::simd_level()) {
    case icn::util::SimdLevel::kScalar:
      return detail::squared_euclidean_x4_scalar;
    case icn::util::SimdLevel::kSse2:
      return detail::squared_euclidean_x4_sse2;
    case icn::util::SimdLevel::kAvx2:
      return detail::squared_euclidean_x4_avx2;
    case icn::util::SimdLevel::kAvx512:
      return detail::squared_euclidean_x4_avx512;
    case icn::util::SimdLevel::kAvx2Fma:
      return detail::squared_euclidean_x4_fma;
  }
  return detail::squared_euclidean_x4_scalar;
}

VectorSumFn pick_vector_sum() {
  switch (icn::util::simd_level()) {
    case icn::util::SimdLevel::kScalar:
      return detail::vector_sum_scalar;
    case icn::util::SimdLevel::kSse2:
      return detail::vector_sum_sse2;
    case icn::util::SimdLevel::kAvx2:
      return detail::vector_sum_avx2;
    case icn::util::SimdLevel::kAvx512:
      return detail::vector_sum_avx512;
    case icn::util::SimdLevel::kAvx2Fma:
      // vector_sum has no multiply-add pairs to fuse; the avx2 kernel IS the
      // FMA-lane kernel, so sums keep the canonical bits under avx2fma.
      return detail::vector_sum_avx2;
  }
  return detail::vector_sum_scalar;
}

}  // namespace

double squared_euclidean(std::span<const double> a,
                         std::span<const double> b) {
  ICN_REQUIRE(a.size() == b.size(), "distance dimensions");
  static const SquaredEuclideanFn kernel = pick_squared_euclidean();
  return kernel(a.data(), b.data(), a.size());
}

double euclidean(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_euclidean(a, b));
}

double vector_sum(std::span<const double> xs) {
  static const VectorSumFn kernel = pick_vector_sum();
  return kernel(xs.data(), xs.size());
}

void fill_condensed(const Matrix& x, bool squared, std::span<double> out,
                    std::size_t tile) {
  const std::size_t n = x.rows();
  const std::size_t m = x.cols();
  ICN_REQUIRE(tile >= 1, "fill_condensed tile must be >= 1");
  ICN_REQUIRE(out.size() == n * (n - 1) / 2, "fill_condensed output length");
  if (n < 2) return;
  static const SquaredEuclideanX4Fn kernel_x4 = pick_squared_euclidean_x4();
  static const SquaredEuclideanFn kernel = pick_squared_euclidean();
  const double* base = x.data().data();
  double* d = out.data();
  const auto index = [n](std::size_t i, std::size_t j) {
    return i * n - i * (i + 1) / 2 + (j - i - 1);
  };
  // Row panels of `tile` rows, column tiles on absolute multiples of `tile`:
  // both are pure functions of (n, tile), and every pair value is a pure
  // function of rows (i, j), so blocking and scheduling decide only the
  // iteration order — the filled buffer is byte-identical for every tile
  // size and thread count. Grain 1 over panels: the diagonal panels carry
  // less work than the top ones (shrinking triangle rows), and the stealing
  // pool rebalances whole panels.
  const std::size_t panels = (n + tile - 1) / tile;
  icn::util::parallel_for(
      0, panels, 1, [&](std::size_t plo, std::size_t phi) {
        for (std::size_t p = plo; p < phi; ++p) {
          const std::size_t r0 = p * tile;
          const std::size_t r1 = std::min(r0 + tile, n);
          for (std::size_t t = p; t < panels; ++t) {
            const std::size_t c0 = t * tile;
            const std::size_t c1 = std::min(c0 + tile, n);
            for (std::size_t i = r0; i < r1; ++i) {
              const double* ri = base + i * m;
              double* row_out = d + index(i, i + 1) - (i + 1);
              std::size_t j = std::max(i + 1, c0);
              // Four consecutive columns share one pass over row i via the
              // x4 kernel (independent accumulator chains); each output is
              // byte-identical to the single-pair kernel.
              for (; j + 4 <= c1; j += 4) {
                double q[4];
                kernel_x4(ri, base + j * m, m, m, q);
                if (squared) {
                  row_out[j] = q[0];
                  row_out[j + 1] = q[1];
                  row_out[j + 2] = q[2];
                  row_out[j + 3] = q[3];
                } else {
                  // sqrt is correctly rounded, so taking it here (instead of
                  // inside each kernel) cannot change bits.
                  row_out[j] = std::sqrt(q[0]);
                  row_out[j + 1] = std::sqrt(q[1]);
                  row_out[j + 2] = std::sqrt(q[2]);
                  row_out[j + 3] = std::sqrt(q[3]);
                }
              }
              for (; j < c1; ++j) {
                const double q = kernel(ri, base + j * m, m);
                row_out[j] = squared ? q : std::sqrt(q);
              }
            }
          }
        }
      });
}

CondensedDistances::CondensedDistances(const Matrix& x, std::size_t tile)
    : n_(x.rows()) {
  ICN_REQUIRE(n_ >= 1, "CondensedDistances needs >= 1 point");
  d_.resize(n_ * (n_ - 1) / 2);
  fill_condensed(x, /*squared=*/false, d_, tile);
}

}  // namespace icn::ml
