#include "ml/distance.h"

#include <cmath>

#include "util/error.h"
#include "util/parallel.h"
#include "util/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#define ICN_ML_X86 1
#include <immintrin.h>
#endif

namespace icn::ml {

// All kernels accumulate in the same canonical 4-lane order: lane k sums the
// elements i == k (mod 4), the lanes combine as (s0 + s2) + (s1 + s3), and
// the remaining 0-3 tail elements add sequentially. Fixing one order —
// instead of matching whatever a serial loop would do — is what lets every
// vector width and the scalar build produce the same bits. The AVX-512
// kernels run subtract/multiply 8-wide but fold the two 4-lane halves into
// the accumulator in element order, so they join the same canonical order
// rather than inventing an 8-lane one.

namespace detail {

double squared_euclidean_scalar(const double* a, const double* b,
                                std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double acc = (s0 + s2) + (s1 + s3);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double vector_sum_scalar(const double* xs, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += xs[i];
    s1 += xs[i + 1];
    s2 += xs[i + 2];
    s3 += xs[i + 3];
  }
  double acc = (s0 + s2) + (s1 + s3);
  for (; i < n; ++i) acc += xs[i];
  return acc;
}

#if defined(ICN_ML_X86)

__attribute__((target("sse2"))) double squared_euclidean_sse2(const double* a,
                                                              const double* b,
                                                              std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();  // lanes 0, 1
  __m128d acc23 = _mm_setzero_pd();  // lanes 2, 3
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d d23 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
  }
  alignas(16) double s01[2];
  alignas(16) double s23[2];
  _mm_store_pd(s01, acc01);
  _mm_store_pd(s23, acc23);
  double acc = (s01[0] + s23[0]) + (s01[1] + s23[1]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

__attribute__((target("avx2"))) double squared_euclidean_avx2(const double* a,
                                                              const double* b,
                                                              std::size_t n) {
  __m256d acc = _mm256_setzero_pd();  // lane k = class k (mod 4)
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  double total = (s[0] + s[2]) + (s[1] + s[3]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

// GCC's _mm512_extractf64x4_pd expands through _mm256_undefined_pd, which
// trips -Wmaybe-uninitialized in the intrinsic header itself; the mask
// argument is -1 so every lane is written.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

__attribute__((target("avx512f"))) double squared_euclidean_avx512(
    const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();  // lane k = class k (mod 4)
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d d =
        _mm512_sub_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i));
    const __m512d sq = _mm512_mul_pd(d, d);
    // Fold the halves in element order to stay in the canonical 4-lane order.
    acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(sq));
    acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(sq, 1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  double total = (s[0] + s[2]) + (s[1] + s[3]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

__attribute__((target("sse2"))) double vector_sum_sse2(const double* xs,
                                                       std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = _mm_add_pd(acc01, _mm_loadu_pd(xs + i));
    acc23 = _mm_add_pd(acc23, _mm_loadu_pd(xs + i + 2));
  }
  alignas(16) double s01[2];
  alignas(16) double s23[2];
  _mm_store_pd(s01, acc01);
  _mm_store_pd(s23, acc23);
  double acc = (s01[0] + s23[0]) + (s01[1] + s23[1]);
  for (; i < n; ++i) acc += xs[i];
  return acc;
}

__attribute__((target("avx2"))) double vector_sum_avx2(const double* xs,
                                                       std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(xs + i));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  double total = (s[0] + s[2]) + (s[1] + s[3]);
  for (; i < n; ++i) total += xs[i];
  return total;
}

__attribute__((target("avx512f"))) double vector_sum_avx512(const double* xs,
                                                            std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d v = _mm512_loadu_pd(xs + i);
    acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(v));
    acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(v, 1));
  }
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(xs + i));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  double total = (s[0] + s[2]) + (s[1] + s[3]);
  for (; i < n; ++i) total += xs[i];
  return total;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#else  // !ICN_ML_X86

// Non-x86 builds: every lane aliases the scalar kernel — dispatch still
// works, ICN_SIMD levels above scalar are rejected by util::simd_level().
double squared_euclidean_sse2(const double* a, const double* b,
                              std::size_t n) {
  return squared_euclidean_scalar(a, b, n);
}
double squared_euclidean_avx2(const double* a, const double* b,
                              std::size_t n) {
  return squared_euclidean_scalar(a, b, n);
}
double squared_euclidean_avx512(const double* a, const double* b,
                                std::size_t n) {
  return squared_euclidean_scalar(a, b, n);
}
double vector_sum_sse2(const double* xs, std::size_t n) {
  return vector_sum_scalar(xs, n);
}
double vector_sum_avx2(const double* xs, std::size_t n) {
  return vector_sum_scalar(xs, n);
}
double vector_sum_avx512(const double* xs, std::size_t n) {
  return vector_sum_scalar(xs, n);
}

#endif  // ICN_ML_X86

}  // namespace detail

namespace {

using SquaredEuclideanFn = double (*)(const double*, const double*,
                                      std::size_t);
using VectorSumFn = double (*)(const double*, std::size_t);

SquaredEuclideanFn pick_squared_euclidean() {
  switch (icn::util::simd_level()) {
    case icn::util::SimdLevel::kScalar:
      return detail::squared_euclidean_scalar;
    case icn::util::SimdLevel::kSse2:
      return detail::squared_euclidean_sse2;
    case icn::util::SimdLevel::kAvx2:
      return detail::squared_euclidean_avx2;
    case icn::util::SimdLevel::kAvx512:
      return detail::squared_euclidean_avx512;
  }
  return detail::squared_euclidean_scalar;
}

VectorSumFn pick_vector_sum() {
  switch (icn::util::simd_level()) {
    case icn::util::SimdLevel::kScalar:
      return detail::vector_sum_scalar;
    case icn::util::SimdLevel::kSse2:
      return detail::vector_sum_sse2;
    case icn::util::SimdLevel::kAvx2:
      return detail::vector_sum_avx2;
    case icn::util::SimdLevel::kAvx512:
      return detail::vector_sum_avx512;
  }
  return detail::vector_sum_scalar;
}

}  // namespace

double squared_euclidean(std::span<const double> a,
                         std::span<const double> b) {
  ICN_REQUIRE(a.size() == b.size(), "distance dimensions");
  static const SquaredEuclideanFn kernel = pick_squared_euclidean();
  return kernel(a.data(), b.data(), a.size());
}

double euclidean(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_euclidean(a, b));
}

double vector_sum(std::span<const double> xs) {
  static const VectorSumFn kernel = pick_vector_sum();
  return kernel(xs.data(), xs.size());
}

CondensedDistances::CondensedDistances(const Matrix& x) : n_(x.rows()) {
  ICN_REQUIRE(n_ >= 1, "CondensedDistances needs >= 1 point");
  d_.resize(n_ * (n_ - 1) / 2);
  // Row i fills the disjoint slice d_[index(i, i+1) .. index(i, n-1)]; the
  // upper-triangle rows shrink, so the adaptive grain plus work-stealing
  // keeps every lane busy to the end.
  icn::util::parallel_for(
      0, n_, icn::util::adaptive_grain(0, n_),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const auto ri = x.row(i);
          for (std::size_t j = i + 1; j < n_; ++j) {
            d_[index(i, j)] = euclidean(ri, x.row(j));
          }
        }
      });
}

}  // namespace icn::ml
