#include "ml/distance.h"

#include <cmath>

#include "util/error.h"

namespace icn::ml {

double squared_euclidean(std::span<const double> a,
                         std::span<const double> b) {
  ICN_REQUIRE(a.size() == b.size(), "distance dimensions");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double euclidean(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_euclidean(a, b));
}

CondensedDistances::CondensedDistances(const Matrix& x) : n_(x.rows()) {
  ICN_REQUIRE(n_ >= 1, "CondensedDistances needs >= 1 point");
  d_.resize(n_ * (n_ - 1) / 2);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto ri = x.row(i);
    for (std::size_t j = i + 1; j < n_; ++j) {
      d_[index(i, j)] = static_cast<float>(euclidean(ri, x.row(j)));
    }
  }
}

std::size_t CondensedDistances::index(std::size_t i, std::size_t j) const {
  // i < j assumed by callers after the swap in operator().
  return i * n_ - i * (i + 1) / 2 + (j - i - 1);
}

double CondensedDistances::operator()(std::size_t i, std::size_t j) const {
  ICN_REQUIRE(i < n_ && j < n_, "distance index");
  if (i == j) return 0.0;
  if (i > j) std::swap(i, j);
  return static_cast<double>(d_[index(i, j)]);
}

}  // namespace icn::ml
