#include "ml/distance.h"

#include <cmath>

#include "util/error.h"
#include "util/parallel.h"

namespace icn::ml {

double squared_euclidean(std::span<const double> a,
                         std::span<const double> b) {
  ICN_REQUIRE(a.size() == b.size(), "distance dimensions");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double euclidean(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_euclidean(a, b));
}

CondensedDistances::CondensedDistances(const Matrix& x) : n_(x.rows()) {
  ICN_REQUIRE(n_ >= 1, "CondensedDistances needs >= 1 point");
  d_.resize(n_ * (n_ - 1) / 2);
  // Row i fills the disjoint slice d_[index(i, i+1) .. index(i, n-1)]; the
  // small grain load-balances the shrinking upper-triangle rows.
  icn::util::parallel_for(0, n_, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const auto ri = x.row(i);
      for (std::size_t j = i + 1; j < n_; ++j) {
        d_[index(i, j)] = euclidean(ri, x.row(j));
      }
    }
  });
}

}  // namespace icn::ml
