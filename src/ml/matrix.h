// Dense row-major matrix of double — the feature-matrix currency of the
// analysis pipeline (antennas x services).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace icn::ml {

/// Dense row-major matrix of double.
///
/// Rows are samples (antennas), columns are features (mobile services).
/// Bounds are checked with ICN_REQUIRE on the at() accessors; the span
/// accessors are the fast path used by the algorithms.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from row-major data. Requires data.size() == rows * cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Checked element access.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Unchecked element access (hot loops).
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// View of row r. Requires r < rows().
  [[nodiscard]] std::span<const double> row(std::size_t r) const;
  [[nodiscard]] std::span<double> row(std::size_t r);

  /// Copy of column c. Requires c < cols().
  [[nodiscard]] std::vector<double> column(std::size_t c) const;

  /// Whole storage, row-major.
  [[nodiscard]] std::span<const double> data() const { return data_; }
  [[nodiscard]] std::span<double> data() { return data_; }

  /// New matrix containing the given rows (in the given order).
  [[nodiscard]] Matrix select_rows(std::span<const std::size_t> idx) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace icn::ml
