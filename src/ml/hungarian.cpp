#include "ml/hungarian.h"

#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/parallel.h"

namespace icn::ml {
namespace {

/// Fixed chunk size of the parallel row/column scans. Small instances
/// (cluster alignment, k ~ 10) fall below one chunk and run inline; the
/// parallel path only engages on the large matrices where it pays.
constexpr std::size_t kAssignGrain = 256;

/// Winner of a reduced-cost column scan: smallest value, earliest column on
/// ties — what the serial strict-< scan picks.
struct MinColumn {
  double delta = std::numeric_limits<double>::infinity();
  std::size_t j1 = 0;
};

}  // namespace

std::vector<std::size_t> hungarian_min_cost(const Matrix& cost) {
  const std::size_t n = cost.rows();
  ICN_REQUIRE(n >= 1 && cost.cols() == n, "hungarian: square matrix");
  const auto& data = cost.data();
  const int finite = icn::util::parallel_reduce(
      std::size_t{0}, data.size(), std::size_t{4096}, 1,
      [&](std::size_t lo, std::size_t hi) {
        int ok = 1;
        for (std::size_t i = lo; i < hi; ++i) {
          ok = ok && std::isfinite(data[i]) ? 1 : 0;
        }
        return ok;
      },
      [](int a, int b) { return a && b ? 1 : 0; });
  ICN_REQUIRE(finite != 0, "hungarian: finite costs");
  // Classic O(n^3) potentials formulation (1-indexed internal arrays).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<std::size_t> p(n + 1, 0), way(n + 1, 0);
  // Augmenting-search preprocessing: seed the duals with the classic
  // row/column reduction. u[i] = row minimum and v[j] = column minimum of
  // the row-reduced matrix is equivalent to running the algorithm on
  // cost(i,j) - u[i] - v[j] (every reduced-cost evaluation below already
  // subtracts both), which shifts rows/columns by constants and so preserves
  // the optimal assignments while starting the searches with a zero in every
  // row and column. Each entry is an exact min over a fixed index order into
  // its own slot, so the parallel scans are bit-identical to serial.
  icn::util::parallel_for(
      std::size_t{0}, n, kAssignGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          double m = cost(i, 0);
          for (std::size_t j = 1; j < n; ++j) m = std::min(m, cost(i, j));
          u[i + 1] = m;
        }
      });
  icn::util::parallel_for(
      std::size_t{0}, n, kAssignGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          double m = cost(0, j) - u[1];
          for (std::size_t i = 1; i < n; ++i) {
            m = std::min(m, cost(i, j) - u[i + 1]);
          }
          v[j + 1] = m;
        }
      });
  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      // The O(N) hot scan of the augmenting search: chunks update disjoint
      // minv/way slots and their delta winners fold in chunk order with
      // strict <, reproducing the serial earliest-column tie-break.
      const MinColumn mc = icn::util::parallel_reduce(
          std::size_t{1}, n + 1, kAssignGrain, MinColumn{},
          [&](std::size_t lo, std::size_t hi) {
            MinColumn win;
            for (std::size_t j = lo; j < hi; ++j) {
              if (used[j]) continue;
              const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
              if (cur < minv[j]) {
                minv[j] = cur;
                way[j] = j0;
              }
              if (minv[j] < win.delta) {
                win.delta = minv[j];
                win.j1 = j;
              }
            }
            return win;
          },
          [](MinColumn acc, MinColumn w) { return w.delta < acc.delta ? w : acc; });
      const double delta = mc.delta;
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = mc.j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }
  std::vector<std::size_t> assign(n);
  for (std::size_t j = 1; j <= n; ++j) assign[p[j] - 1] = j - 1;
  return assign;
}

std::vector<int> align_labels(std::span<const int> from,
                              std::span<const int> to, int k) {
  ICN_REQUIRE(from.size() == to.size() && !from.empty(), "align sizes");
  ICN_REQUIRE(k >= 1, "align k");
  const auto uk = static_cast<std::size_t>(k);
  Matrix overlap(uk, uk);
  for (std::size_t i = 0; i < from.size(); ++i) {
    ICN_REQUIRE(from[i] >= 0 && from[i] < k, "align from label");
    ICN_REQUIRE(to[i] >= 0 && to[i] < k, "align to label");
    overlap(static_cast<std::size_t>(from[i]),
            static_cast<std::size_t>(to[i])) += 1.0;
  }
  // Maximize overlap == minimize (max - overlap).
  double max_entry = 0.0;
  for (const double o : overlap.data()) max_entry = std::max(max_entry, o);
  Matrix cost(uk, uk);
  for (std::size_t r = 0; r < uk; ++r) {
    for (std::size_t c = 0; c < uk; ++c) {
      cost(r, c) = max_entry - overlap(r, c);
    }
  }
  const auto assign = hungarian_min_cost(cost);
  std::vector<int> map(uk);
  for (std::size_t r = 0; r < uk; ++r) map[r] = static_cast<int>(assign[r]);
  return map;
}

std::vector<int> apply_label_map(std::span<const int> labels,
                                 std::span<const int> map) {
  std::vector<int> out(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ICN_REQUIRE(labels[i] >= 0 &&
                    static_cast<std::size_t>(labels[i]) < map.size(),
                "apply_label_map label range");
    out[i] = map[static_cast<std::size_t>(labels[i])];
  }
  return out;
}

}  // namespace icn::ml
