#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "util/arena.h"
#include "util/error.h"

namespace icn::ml {
namespace {

/// Gini impurity of a class-count vector with total `n`.
double gini(std::span<const double> counts, double n) {
  if (n <= 0.0) return 0.0;
  double acc = 0.0;
  for (const double c : counts) acc += c * c;
  return 1.0 - acc / (n * n);
}

/// (feature value, class) pair for the split scan. A plain struct instead of
/// std::pair so it is trivially copyable (the Arena only hands out storage
/// for such types); the ordering matches std::pair's lexicographic one.
struct ValClass {
  double value = 0.0;
  int label = 0;
  friend bool operator<(const ValClass& a, const ValClass& b) {
    return a.value < b.value || (a.value == b.value && a.label < b.label);
  }
};

}  // namespace

void DecisionTree::fit(const Matrix& x, std::span<const int> y,
                       int num_classes, const Params& params,
                       icn::util::Rng& rng,
                       std::span<const std::size_t> sample_idx) {
  ICN_REQUIRE(x.rows() == y.size() && x.rows() > 0, "tree fit input shape");
  ICN_REQUIRE(num_classes >= 1, "tree fit num_classes");
  for (const int label : y) {
    ICN_REQUIRE(label >= 0 && label < num_classes, "tree fit label range");
  }
  nodes_.clear();
  num_classes_ = num_classes;
  num_features_ = x.cols();
  importance_.assign(num_features_, 0.0);

  std::vector<std::size_t> idx;
  if (sample_idx.empty()) {
    idx.resize(x.rows());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
  } else {
    idx.assign(sample_idx.begin(), sample_idx.end());
    for (const std::size_t i : idx) {
      ICN_REQUIRE(i < x.rows(), "tree fit sample index");
    }
  }
  build(x, y, params, rng, idx, 0, idx.size(), 0);
}

int DecisionTree::build(const Matrix& x, std::span<const int> y,
                        const Params& params, icn::util::Rng& rng,
                        std::vector<std::size_t>& idx, std::size_t begin,
                        std::size_t end, std::size_t depth) {
  const std::size_t n = end - begin;
  const auto k = static_cast<std::size_t>(num_classes_);

  // Per-node scratch. The arena path opens one Frame per node: every buffer
  // below dies when this call returns, and steady-state recursion does zero
  // mallocs. The heap path is bit-identical (same values, same sort, same
  // rng draws) and kept as the parity baseline for tests.
  const bool use_arena = params.scratch == Scratch::kArena;
  icn::util::Arena& arena = icn::util::scratch_arena();
  std::optional<icn::util::Arena::Frame> frame;
  if (use_arena) frame.emplace(arena);
  std::vector<double> heap_counts;
  std::span<double> counts;
  if (use_arena) {
    counts = arena.alloc_span<double>(k);
  } else {
    heap_counts.resize(k);
    counts = heap_counts;
  }
  std::fill(counts.begin(), counts.end(), 0.0);
  for (std::size_t i = begin; i < end; ++i) {
    counts[static_cast<std::size_t>(y[idx[i]])] += 1.0;
  }
  const double node_n = static_cast<double>(n);
  const double node_gini = gini(counts, node_n);

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    TreeNode& node = nodes_.back();
    node.cover = node_n;
    node.value.resize(k);
    for (std::size_t c = 0; c < k; ++c) node.value[c] = counts[c] / node_n;
  }

  const bool pure = node_gini == 0.0;
  if (pure || depth >= params.max_depth || n < params.min_samples_split) {
    return node_id;
  }

  // Candidate features: a random subset of size max_features (all when 0).
  std::vector<std::size_t> heap_features;
  std::span<std::size_t> features;
  if (use_arena) {
    features = arena.alloc_span<std::size_t>(num_features_);
  } else {
    heap_features.resize(num_features_);
    features = heap_features;
  }
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t mtry = params.max_features == 0
                         ? num_features_
                         : std::min(params.max_features, num_features_);
  // Partial Fisher-Yates: the first mtry entries become the candidate set.
  for (std::size_t i = 0; i < mtry; ++i) {
    const std::size_t j = i + rng.uniform_index(num_features_ - i);
    std::swap(features[i], features[j]);
  }

  double best_gain = 0.0;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  std::vector<double> heap_left;
  std::span<double> left_counts;
  std::vector<ValClass> heap_vals;
  std::span<ValClass> vals;
  if (use_arena) {
    left_counts = arena.alloc_span<double>(k);
    vals = arena.alloc_span<ValClass>(n);
  } else {
    heap_left.resize(k);
    left_counts = heap_left;
    heap_vals.resize(n);
    vals = heap_vals;
  }

  for (std::size_t fi = 0; fi < mtry; ++fi) {
    const std::size_t f = features[fi];
    for (std::size_t i = begin; i < end; ++i) {
      vals[i - begin] = ValClass{x(idx[i], f), y[idx[i]]};
    }
    std::sort(vals.begin(), vals.end());
    if (vals.front().value == vals.back().value) continue;  // constant feature
    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_counts[static_cast<std::size_t>(vals[i].label)] += 1.0;
      if (vals[i].value == vals[i + 1].value) continue;  // not a cut point
      const double nl = static_cast<double>(i + 1);
      const double nr = node_n - nl;
      if (nl < static_cast<double>(params.min_samples_leaf) ||
          nr < static_cast<double>(params.min_samples_leaf)) {
        continue;
      }
      double right_sq = 0.0, left_sq = 0.0;
      for (std::size_t c = 0; c < k; ++c) {
        left_sq += left_counts[c] * left_counts[c];
        const double rc = counts[c] - left_counts[c];
        right_sq += rc * rc;
      }
      const double gini_l = 1.0 - left_sq / (nl * nl);
      const double gini_r = 1.0 - right_sq / (nr * nr);
      const double gain =
          node_gini - (nl / node_n) * gini_l - (nr / node_n) * gini_r;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (vals[i].value + vals[i + 1].value);
      }
    }
  }

  if (best_gain <= 0.0) return node_id;

  // Partition idx[begin, end) by the chosen split (stable not required).
  const auto mid_it = std::partition(
      idx.begin() + static_cast<std::ptrdiff_t>(begin),
      idx.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t i) { return x(i, best_feature) <= best_threshold; });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == begin || mid == end) return node_id;  // numerical edge: no split

  importance_[best_feature] += node_n * best_gain;

  const int left_id = build(x, y, params, rng, idx, begin, mid, depth + 1);
  const int right_id = build(x, y, params, rng, idx, mid, end, depth + 1);
  TreeNode& node = nodes_[static_cast<std::size_t>(node_id)];
  node.feature = static_cast<int>(best_feature);
  node.threshold = best_threshold;
  node.left = left_id;
  node.right = right_id;
  return node_id;
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> x) const {
  ICN_REQUIRE(is_fitted(), "predict on unfitted tree");
  ICN_REQUIRE(x.size() == num_features_, "predict feature count");
  const TreeNode* node = &nodes_.front();
  while (!node->is_leaf()) {
    const std::size_t f = static_cast<std::size_t>(node->feature);
    node = &nodes_[static_cast<std::size_t>(
        x[f] <= node->threshold ? node->left : node->right)];
  }
  return node->value;
}

int DecisionTree::predict(std::span<const double> x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

}  // namespace icn::ml
