#include "ml/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#define ICN_ML_X86 1
#include <immintrin.h>
#endif

namespace icn::ml {
namespace detail {

// ---- RSCA transform (element-wise) --------------------------------------
//
// Every output element is a fixed IEEE expression of (t[j], s[j], total), so
// the scalar and vector kernels agree bit-for-bit by construction; the lane
// suites in tests/ml assert it anyway. The `s > 0 ? r : 0.0` select is an
// AND with the comparison mask: the masked-out value is +0.0, exactly the
// scalar literal.

void rsca_row_scalar(const double* t, const double* s, double total,
                     std::size_t n, double* out) {
  for (std::size_t j = 0; j < n; ++j) {
    const double u = total * s[j];
    const double r = (t[j] - u) / (t[j] + u);
    out[j] = s[j] > 0.0 ? r : 0.0;
  }
}

void rsca_row_fma_reference(const double* t, const double* s, double total,
                            std::size_t n, double* out) {
  for (std::size_t j = 0; j < n; ++j) {
    const double num = std::fma(-total, s[j], t[j]);
    const double den = std::fma(total, s[j], t[j]);
    const double r = num / den;
    out[j] = s[j] > 0.0 ? r : 0.0;
  }
}

void rsca_map_scalar(const double* v, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (v[i] - 1.0) / (v[i] + 1.0);
  }
}

// ---- silhouette / Dunn segment kernels ----------------------------------
//
// labeled_sums: per cluster c, the canonical 4-lane order over positions —
// lane l accumulates `labels[j] == c ? d[j] : 0.0` for j == l (mod 4), lanes
// combine as (l0 + l2) + (l1 + l3), tail elements add sequentially. The
// vector kernels run one pass over the data with a register accumulator per
// cluster; the scalar reference runs one pass per cluster. Identical bits:
// each cluster's accumulator sees the same masked adds in the same order.

void labeled_sums_scalar(const double* d, const int* labels, std::size_t n,
                         std::size_t k, double* sums) {
  for (std::size_t c = 0; c < k; ++c) {
    const int ci = static_cast<int>(c);
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      s0 += labels[i] == ci ? d[i] : 0.0;
      s1 += labels[i + 1] == ci ? d[i + 1] : 0.0;
      s2 += labels[i + 2] == ci ? d[i + 2] : 0.0;
      s3 += labels[i + 3] == ci ? d[i + 3] : 0.0;
    }
    double acc = (s0 + s2) + (s1 + s3);
    for (; i < n; ++i) acc += labels[i] == ci ? d[i] : 0.0;
    sums[c] += acc;
  }
}

// labeled_extrema: lane l tracks the min (cross-label) and max (same-label)
// of its positions with `(x < acc) ? x : acc` / `(acc < x) ? x : acc`
// semantics — a NaN element keeps the accumulator, matching the scalar
// comparison. Lanes combine as (l0 op l2) op (l1 op l3), tail sequential,
// and the segment extrema then fold into the caller's running values with
// the same comparison.

namespace {

inline double min2(double a, double b) { return b < a ? b : a; }
inline double max2(double a, double b) { return a < b ? b : a; }

}  // namespace

void labeled_extrema_scalar(const double* d, const int* labels, int own,
                            std::size_t n, double* min_inter,
                            double* max_diam) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double mn[4] = {kInf, kInf, kInf, kInf};
  double mx[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t l = 0; l < 4; ++l) {
      const double x = d[i + l];
      if (labels[i + l] == own) {
        mx[l] = max2(mx[l], x);
      } else {
        mn[l] = min2(mn[l], x);
      }
    }
  }
  double mnc = min2(min2(mn[0], mn[2]), min2(mn[1], mn[3]));
  double mxc = max2(max2(mx[0], mx[2]), max2(mx[1], mx[3]));
  for (; i < n; ++i) {
    const double x = d[i];
    if (labels[i] == own) {
      mxc = max2(mxc, x);
    } else {
      mnc = min2(mnc, x);
    }
  }
  *min_inter = min2(*min_inter, mnc);
  *max_diam = max2(*max_diam, mxc);
}

#if defined(ICN_ML_X86)

__attribute__((target("sse2"))) void rsca_row_sse2(const double* t,
                                                   const double* s,
                                                   double total,
                                                   std::size_t n,
                                                   double* out) {
  const __m128d vt = _mm_set1_pd(total);
  const __m128d zero = _mm_setzero_pd();
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const __m128d sv = _mm_loadu_pd(s + j);
    const __m128d tv = _mm_loadu_pd(t + j);
    const __m128d u = _mm_mul_pd(vt, sv);
    const __m128d r = _mm_div_pd(_mm_sub_pd(tv, u), _mm_add_pd(tv, u));
    _mm_storeu_pd(out + j, _mm_and_pd(r, _mm_cmpgt_pd(sv, zero)));
  }
  for (; j < n; ++j) {
    const double u = total * s[j];
    const double r = (t[j] - u) / (t[j] + u);
    out[j] = s[j] > 0.0 ? r : 0.0;
  }
}

__attribute__((target("avx2"))) void rsca_row_avx2(const double* t,
                                                   const double* s,
                                                   double total,
                                                   std::size_t n,
                                                   double* out) {
  const __m256d vt = _mm256_set1_pd(total);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d sv = _mm256_loadu_pd(s + j);
    const __m256d tv = _mm256_loadu_pd(t + j);
    const __m256d u = _mm256_mul_pd(vt, sv);
    const __m256d r = _mm256_div_pd(_mm256_sub_pd(tv, u), _mm256_add_pd(tv, u));
    _mm256_storeu_pd(out + j,
                     _mm256_and_pd(r, _mm256_cmp_pd(sv, zero, _CMP_GT_OQ)));
  }
  for (; j < n; ++j) {
    const double u = total * s[j];
    const double r = (t[j] - u) / (t[j] + u);
    out[j] = s[j] > 0.0 ? r : 0.0;
  }
}

void rsca_row_avx512(const double* t, const double* s, double total,
                     std::size_t n, double* out) {
  rsca_row_avx2(t, s, total, n, out);
}

__attribute__((target("avx2,fma"))) void rsca_row_fma(const double* t,
                                                      const double* s,
                                                      double total,
                                                      std::size_t n,
                                                      double* out) {
  const __m256d vt = _mm256_set1_pd(total);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d sv = _mm256_loadu_pd(s + j);
    const __m256d tv = _mm256_loadu_pd(t + j);
    const __m256d num = _mm256_fnmadd_pd(vt, sv, tv);  // t - total*s, fused
    const __m256d den = _mm256_fmadd_pd(vt, sv, tv);   // t + total*s, fused
    const __m256d r = _mm256_div_pd(num, den);
    _mm256_storeu_pd(out + j,
                     _mm256_and_pd(r, _mm256_cmp_pd(sv, zero, _CMP_GT_OQ)));
  }
  for (; j < n; ++j) {
    const double num = std::fma(-total, s[j], t[j]);
    const double den = std::fma(total, s[j], t[j]);
    const double r = num / den;
    out[j] = s[j] > 0.0 ? r : 0.0;
  }
}

__attribute__((target("sse2"))) void rsca_map_sse2(const double* v,
                                                   std::size_t n,
                                                   double* out) {
  const __m128d one = _mm_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_loadu_pd(v + i);
    _mm_storeu_pd(out + i, _mm_div_pd(_mm_sub_pd(x, one), _mm_add_pd(x, one)));
  }
  for (; i < n; ++i) out[i] = (v[i] - 1.0) / (v[i] + 1.0);
}

__attribute__((target("avx2"))) void rsca_map_avx2(const double* v,
                                                   std::size_t n,
                                                   double* out) {
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    _mm256_storeu_pd(out + i,
                     _mm256_div_pd(_mm256_sub_pd(x, one), _mm256_add_pd(x, one)));
  }
  for (; i < n; ++i) out[i] = (v[i] - 1.0) / (v[i] + 1.0);
}

void rsca_map_avx512(const double* v, std::size_t n, double* out) {
  rsca_map_avx2(v, n, out);
}

__attribute__((target("sse2"))) void labeled_sums_sse2(const double* d,
                                                       const int* labels,
                                                       std::size_t n,
                                                       std::size_t k,
                                                       double* sums) {
  // Clusters in groups of 4: 8 xmm accumulators (lanes 01/23 per cluster)
  // plus temporaries fit the 16-register file.
  for (std::size_t c0 = 0; c0 < k; c0 += 4) {
    const std::size_t nc = std::min<std::size_t>(4, k - c0);
    __m128d a01[4];
    __m128d a23[4];
    __m128i cv[4];
    for (std::size_t g = 0; g < nc; ++g) {
      a01[g] = _mm_setzero_pd();
      a23[g] = _mm_setzero_pd();
      cv[g] = _mm_set1_epi32(static_cast<int>(c0 + g));
    }
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m128d d01 = _mm_loadu_pd(d + i);
      const __m128d d23 = _mm_loadu_pd(d + i + 2);
      const __m128i lv =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(labels + i));
      for (std::size_t g = 0; g < nc; ++g) {
        const __m128i eq = _mm_cmpeq_epi32(lv, cv[g]);
        const __m128d m01 = _mm_castsi128_pd(_mm_unpacklo_epi32(eq, eq));
        const __m128d m23 = _mm_castsi128_pd(_mm_unpackhi_epi32(eq, eq));
        a01[g] = _mm_add_pd(a01[g], _mm_and_pd(d01, m01));
        a23[g] = _mm_add_pd(a23[g], _mm_and_pd(d23, m23));
      }
    }
    for (std::size_t g = 0; g < nc; ++g) {
      const int ci = static_cast<int>(c0 + g);
      alignas(16) double s01[2];
      alignas(16) double s23[2];
      _mm_store_pd(s01, a01[g]);
      _mm_store_pd(s23, a23[g]);
      double acc = (s01[0] + s23[0]) + (s01[1] + s23[1]);
      for (std::size_t t = i; t < n; ++t) {
        acc += labels[t] == ci ? d[t] : 0.0;
      }
      sums[c0 + g] += acc;
    }
  }
}

__attribute__((target("avx2"))) void labeled_sums_avx2(const double* d,
                                                       const int* labels,
                                                       std::size_t n,
                                                       std::size_t k,
                                                       double* sums) {
  // Clusters in groups of 8: one ymm accumulator per cluster, one data pass
  // per group. The paper's cluster counts (k <= ~8) make this a single pass.
  for (std::size_t c0 = 0; c0 < k; c0 += 8) {
    const std::size_t nc = std::min<std::size_t>(8, k - c0);
    __m256d acc[8];
    __m128i cv[8];
    for (std::size_t g = 0; g < nc; ++g) {
      acc[g] = _mm256_setzero_pd();
      cv[g] = _mm_set1_epi32(static_cast<int>(c0 + g));
    }
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d dv = _mm256_loadu_pd(d + i);
      const __m128i lv =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(labels + i));
      for (std::size_t g = 0; g < nc; ++g) {
        const __m256d mask =
            _mm256_castsi256_pd(_mm256_cvtepi32_epi64(_mm_cmpeq_epi32(lv, cv[g])));
        acc[g] = _mm256_add_pd(acc[g], _mm256_and_pd(dv, mask));
      }
    }
    for (std::size_t g = 0; g < nc; ++g) {
      const int ci = static_cast<int>(c0 + g);
      alignas(32) double s[4];
      _mm256_store_pd(s, acc[g]);
      double total = (s[0] + s[2]) + (s[1] + s[3]);
      for (std::size_t t = i; t < n; ++t) {
        total += labels[t] == ci ? d[t] : 0.0;
      }
      sums[c0 + g] += total;
    }
  }
}

void labeled_sums_avx512(const double* d, const int* labels, std::size_t n,
                         std::size_t k, double* sums) {
  labeled_sums_avx2(d, labels, n, k, sums);
}

// SSE2 has no blendv; select(a, b, m) = (m & b) | (~m & a).
__attribute__((target("sse2"))) static inline __m128d sse2_select(
    __m128d a, __m128d b, __m128d m) {
  return _mm_or_pd(_mm_and_pd(m, b), _mm_andnot_pd(m, a));
}

__attribute__((target("sse2"))) void labeled_extrema_sse2(
    const double* d, const int* labels, int own, std::size_t n,
    double* min_inter, double* max_diam) {
  const __m128d inf = _mm_set1_pd(std::numeric_limits<double>::infinity());
  __m128d mn01 = inf, mn23 = inf;
  __m128d mx01 = _mm_setzero_pd(), mx23 = _mm_setzero_pd();
  const __m128i ov = _mm_set1_epi32(own);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d d01 = _mm_loadu_pd(d + i);
    const __m128d d23 = _mm_loadu_pd(d + i + 2);
    const __m128i eq = _mm_cmpeq_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(labels + i)), ov);
    const __m128d m01 = _mm_castsi128_pd(_mm_unpacklo_epi32(eq, eq));
    const __m128d m23 = _mm_castsi128_pd(_mm_unpackhi_epi32(eq, eq));
    mx01 = sse2_select(mx01, d01, _mm_and_pd(m01, _mm_cmplt_pd(mx01, d01)));
    mx23 = sse2_select(mx23, d23, _mm_and_pd(m23, _mm_cmplt_pd(mx23, d23)));
    mn01 = sse2_select(mn01, d01, _mm_andnot_pd(m01, _mm_cmplt_pd(d01, mn01)));
    mn23 = sse2_select(mn23, d23, _mm_andnot_pd(m23, _mm_cmplt_pd(d23, mn23)));
  }
  alignas(16) double a[2];
  alignas(16) double b[2];
  _mm_store_pd(a, mn01);
  _mm_store_pd(b, mn23);
  double mnc = min2(min2(a[0], b[0]), min2(a[1], b[1]));
  _mm_store_pd(a, mx01);
  _mm_store_pd(b, mx23);
  double mxc = max2(max2(a[0], b[0]), max2(a[1], b[1]));
  for (; i < n; ++i) {
    const double x = d[i];
    if (labels[i] == own) {
      mxc = max2(mxc, x);
    } else {
      mnc = min2(mnc, x);
    }
  }
  *min_inter = min2(*min_inter, mnc);
  *max_diam = max2(*max_diam, mxc);
}

__attribute__((target("avx2"))) void labeled_extrema_avx2(
    const double* d, const int* labels, int own, std::size_t n,
    double* min_inter, double* max_diam) {
  __m256d mn = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d mx = _mm256_setzero_pd();
  const __m128i ov = _mm_set1_epi32(own);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dv = _mm256_loadu_pd(d + i);
    const __m128i eq = _mm_cmpeq_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(labels + i)), ov);
    const __m256d match = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(eq));
    mx = _mm256_blendv_pd(
        mx, dv, _mm256_and_pd(match, _mm256_cmp_pd(mx, dv, _CMP_LT_OQ)));
    mn = _mm256_blendv_pd(
        mn, dv, _mm256_andnot_pd(match, _mm256_cmp_pd(dv, mn, _CMP_LT_OQ)));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, mn);
  double mnc = min2(min2(s[0], s[2]), min2(s[1], s[3]));
  _mm256_store_pd(s, mx);
  double mxc = max2(max2(s[0], s[2]), max2(s[1], s[3]));
  for (; i < n; ++i) {
    const double x = d[i];
    if (labels[i] == own) {
      mxc = max2(mxc, x);
    } else {
      mnc = min2(mnc, x);
    }
  }
  *min_inter = min2(*min_inter, mnc);
  *max_diam = max2(*max_diam, mxc);
}

void labeled_extrema_avx512(const double* d, const int* labels, int own,
                            std::size_t n, double* min_inter,
                            double* max_diam) {
  labeled_extrema_avx2(d, labels, own, n, min_inter, max_diam);
}

#else  // !ICN_ML_X86

void rsca_row_sse2(const double* t, const double* s, double total,
                   std::size_t n, double* out) {
  rsca_row_scalar(t, s, total, n, out);
}
void rsca_row_avx2(const double* t, const double* s, double total,
                   std::size_t n, double* out) {
  rsca_row_scalar(t, s, total, n, out);
}
void rsca_row_avx512(const double* t, const double* s, double total,
                     std::size_t n, double* out) {
  rsca_row_scalar(t, s, total, n, out);
}
void rsca_row_fma(const double* t, const double* s, double total,
                  std::size_t n, double* out) {
  rsca_row_fma_reference(t, s, total, n, out);
}
void rsca_map_sse2(const double* v, std::size_t n, double* out) {
  rsca_map_scalar(v, n, out);
}
void rsca_map_avx2(const double* v, std::size_t n, double* out) {
  rsca_map_scalar(v, n, out);
}
void rsca_map_avx512(const double* v, std::size_t n, double* out) {
  rsca_map_scalar(v, n, out);
}
void labeled_sums_sse2(const double* d, const int* labels, std::size_t n,
                       std::size_t k, double* sums) {
  labeled_sums_scalar(d, labels, n, k, sums);
}
void labeled_sums_avx2(const double* d, const int* labels, std::size_t n,
                       std::size_t k, double* sums) {
  labeled_sums_scalar(d, labels, n, k, sums);
}
void labeled_sums_avx512(const double* d, const int* labels, std::size_t n,
                         std::size_t k, double* sums) {
  labeled_sums_scalar(d, labels, n, k, sums);
}
void labeled_extrema_sse2(const double* d, const int* labels, int own,
                          std::size_t n, double* min_inter,
                          double* max_diam) {
  labeled_extrema_scalar(d, labels, own, n, min_inter, max_diam);
}
void labeled_extrema_avx2(const double* d, const int* labels, int own,
                          std::size_t n, double* min_inter,
                          double* max_diam) {
  labeled_extrema_scalar(d, labels, own, n, min_inter, max_diam);
}
void labeled_extrema_avx512(const double* d, const int* labels, int own,
                            std::size_t n, double* min_inter,
                            double* max_diam) {
  labeled_extrema_scalar(d, labels, own, n, min_inter, max_diam);
}

#endif  // ICN_ML_X86

}  // namespace detail

namespace {

using RscaRowFn = void (*)(const double*, const double*, double, std::size_t,
                           double*);
using RscaMapFn = void (*)(const double*, std::size_t, double*);
using LabeledSumsFn = void (*)(const double*, const int*, std::size_t,
                               std::size_t, double*);
using LabeledExtremaFn = void (*)(const double*, const int*, int, std::size_t,
                                  double*, double*);

RscaRowFn pick_rsca_row() {
  switch (icn::util::simd_level()) {
    case icn::util::SimdLevel::kScalar:
      return detail::rsca_row_scalar;
    case icn::util::SimdLevel::kSse2:
      return detail::rsca_row_sse2;
    case icn::util::SimdLevel::kAvx2:
      return detail::rsca_row_avx2;
    case icn::util::SimdLevel::kAvx512:
      return detail::rsca_row_avx512;
    case icn::util::SimdLevel::kAvx2Fma:
      return detail::rsca_row_fma;
  }
  return detail::rsca_row_scalar;
}

RscaMapFn pick_rsca_map() {
  switch (icn::util::simd_level()) {
    case icn::util::SimdLevel::kScalar:
      return detail::rsca_map_scalar;
    case icn::util::SimdLevel::kSse2:
      return detail::rsca_map_sse2;
    case icn::util::SimdLevel::kAvx2:
    case icn::util::SimdLevel::kAvx2Fma:  // no multiply-add pairs to fuse
      return detail::rsca_map_avx2;
    case icn::util::SimdLevel::kAvx512:
      return detail::rsca_map_avx512;
  }
  return detail::rsca_map_scalar;
}

LabeledSumsFn pick_labeled_sums() {
  switch (icn::util::simd_level()) {
    case icn::util::SimdLevel::kScalar:
      return detail::labeled_sums_scalar;
    case icn::util::SimdLevel::kSse2:
      return detail::labeled_sums_sse2;
    case icn::util::SimdLevel::kAvx2:
    case icn::util::SimdLevel::kAvx2Fma:  // no multiply-add pairs to fuse
      return detail::labeled_sums_avx2;
    case icn::util::SimdLevel::kAvx512:
      return detail::labeled_sums_avx512;
  }
  return detail::labeled_sums_scalar;
}

LabeledExtremaFn pick_labeled_extrema() {
  switch (icn::util::simd_level()) {
    case icn::util::SimdLevel::kScalar:
      return detail::labeled_extrema_scalar;
    case icn::util::SimdLevel::kSse2:
      return detail::labeled_extrema_sse2;
    case icn::util::SimdLevel::kAvx2:
    case icn::util::SimdLevel::kAvx2Fma:  // compare/blend only, nothing fused
      return detail::labeled_extrema_avx2;
    case icn::util::SimdLevel::kAvx512:
      return detail::labeled_extrema_avx512;
  }
  return detail::labeled_extrema_scalar;
}

}  // namespace

void rsca_row(std::span<const double> traffic, std::span<const double> shares,
              double row_total, std::span<double> out) {
  ICN_REQUIRE(traffic.size() == shares.size() && traffic.size() == out.size(),
              "rsca_row extents");
  static const RscaRowFn kernel = pick_rsca_row();
  kernel(traffic.data(), shares.data(), row_total, traffic.size(), out.data());
}

void rsca_map(std::span<const double> rca, std::span<double> out) {
  ICN_REQUIRE(rca.size() == out.size(), "rsca_map extents");
  static const RscaMapFn kernel = pick_rsca_map();
  kernel(rca.data(), rca.size(), out.data());
}

void labeled_sums(std::span<const double> d, std::span<const int> labels,
                  std::size_t k, double* sums) {
  ICN_REQUIRE(d.size() == labels.size(), "labeled_sums extents");
  static const LabeledSumsFn kernel = pick_labeled_sums();
  kernel(d.data(), labels.data(), d.size(), k, sums);
}

void labeled_extrema(std::span<const double> d, std::span<const int> labels,
                     int own, double* min_inter, double* max_diam) {
  ICN_REQUIRE(d.size() == labels.size(), "labeled_extrema extents");
  static const LabeledExtremaFn kernel = pick_labeled_extrema();
  kernel(d.data(), labels.data(), own, d.size(), min_inter, max_diam);
}

}  // namespace icn::ml
