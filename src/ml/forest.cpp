#include "ml/forest.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.h"

namespace icn::ml {

void RandomForest::fit(const Matrix& x, std::span<const int> y,
                       int num_classes, const Params& params) {
  ICN_REQUIRE(x.rows() == y.size() && x.rows() > 0, "forest fit input shape");
  ICN_REQUIRE(params.num_trees > 0, "forest needs >= 1 tree");
  trees_.clear();
  trees_.resize(params.num_trees);
  num_classes_ = num_classes;
  num_features_ = x.cols();

  DecisionTree::Params tree_params;
  tree_params.max_depth = params.max_depth;
  tree_params.min_samples_leaf = params.min_samples_leaf;
  tree_params.max_features =
      params.max_features != 0
          ? params.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::sqrt(static_cast<double>(x.cols()))));

  const std::size_t n = x.rows();
  // Per-row OOB vote accumulation (class counts).
  std::vector<std::vector<double>> oob_votes(
      n, std::vector<double>(static_cast<std::size_t>(num_classes), 0.0));
  std::vector<bool> oob_touched(n, false);

  std::vector<std::size_t> sample;
  std::vector<bool> in_bag(n);
  for (std::size_t t = 0; t < params.num_trees; ++t) {
    icn::util::Rng rng(icn::util::derive_seed(params.seed, t));
    sample.clear();
    if (params.bootstrap) {
      std::fill(in_bag.begin(), in_bag.end(), false);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t pick = rng.uniform_index(n);
        sample.push_back(pick);
        in_bag[pick] = true;
      }
    } else {
      sample.resize(n);
      std::iota(sample.begin(), sample.end(), std::size_t{0});
    }
    trees_[t].fit(x, y, num_classes, tree_params, rng, sample);
    if (params.bootstrap) {
      for (std::size_t i = 0; i < n; ++i) {
        if (in_bag[i]) continue;
        const auto proba = trees_[t].predict_proba(x.row(i));
        for (std::size_t c = 0; c < proba.size(); ++c) {
          oob_votes[i][c] += proba[c];
        }
        oob_touched[i] = true;
      }
    }
  }

  if (params.bootstrap) {
    std::size_t covered = 0, hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!oob_touched[i]) continue;
      ++covered;
      const auto& votes = oob_votes[i];
      const int pred = static_cast<int>(
          std::max_element(votes.begin(), votes.end()) - votes.begin());
      if (pred == y[i]) ++hits;
    }
    oob_accuracy_ = covered == 0
                        ? std::numeric_limits<double>::quiet_NaN()
                        : static_cast<double>(hits) /
                              static_cast<double>(covered);
  } else {
    oob_accuracy_ = std::numeric_limits<double>::quiet_NaN();
  }
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> x) const {
  ICN_REQUIRE(is_fitted(), "predict on unfitted forest");
  std::vector<double> proba(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const auto p = tree.predict_proba(x);
    for (std::size_t c = 0; c < p.size(); ++c) proba[c] += p[c];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (auto& p : proba) p *= inv;
  return proba;
}

int RandomForest::predict(std::span<const double> x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::vector<int> RandomForest::predict_all(const Matrix& x) const {
  std::vector<int> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out[i] = predict(x.row(i));
  return out;
}

std::vector<double> RandomForest::feature_importance() const {
  ICN_REQUIRE(is_fitted(), "importance on unfitted forest");
  std::vector<double> imp(num_features_, 0.0);
  for (const auto& tree : trees_) {
    const auto& ti = tree.impurity_importance();
    for (std::size_t f = 0; f < imp.size(); ++f) imp[f] += ti[f];
  }
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  if (total > 0.0) {
    for (auto& v : imp) v /= total;
  }
  return imp;
}

}  // namespace icn::ml
