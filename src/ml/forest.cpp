#include "ml/forest.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.h"
#include "util/parallel.h"

namespace icn::ml {

void RandomForest::fit(const Matrix& x, std::span<const int> y,
                       int num_classes, const Params& params) {
  ICN_REQUIRE(x.rows() == y.size() && x.rows() > 0, "forest fit input shape");
  ICN_REQUIRE(params.num_trees > 0, "forest needs >= 1 tree");
  trees_.clear();
  trees_.resize(params.num_trees);
  num_classes_ = num_classes;
  num_features_ = x.cols();

  DecisionTree::Params tree_params;
  tree_params.max_depth = params.max_depth;
  tree_params.min_samples_leaf = params.min_samples_leaf;
  tree_params.scratch = params.scratch;
  tree_params.max_features =
      params.max_features != 0
          ? params.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::sqrt(static_cast<double>(x.cols()))));

  const std::size_t n = x.rows();

  // Each tree's randomness comes from its own seed stream derived up front
  // (never from a shared generator), so trees can be fitted in any order —
  // and on any number of threads — and come out identical to a serial build.
  // The bootstrap membership of every tree is kept so the OOB pass below can
  // run per row.
  std::vector<std::vector<bool>> in_bag;
  if (params.bootstrap) in_bag.resize(params.num_trees);
  icn::util::parallel_for(
      0, params.num_trees, 1, [&](std::size_t lo, std::size_t hi) {
        std::vector<std::size_t> sample;
        for (std::size_t t = lo; t < hi; ++t) {
          icn::util::Rng rng(icn::util::derive_seed(params.seed, t));
          sample.clear();
          if (params.bootstrap) {
            in_bag[t].assign(n, false);
            for (std::size_t i = 0; i < n; ++i) {
              const std::size_t pick = rng.uniform_index(n);
              sample.push_back(pick);
              in_bag[t][pick] = true;
            }
          } else {
            sample.resize(n);
            std::iota(sample.begin(), sample.end(), std::size_t{0});
          }
          trees_[t].fit(x, y, num_classes, tree_params, rng, sample);
        }
      });

  if (params.bootstrap) {
    // OOB votes accumulate per row over the trees in index order (the same
    // addition order as a serial tree-major loop for any fixed row), so the
    // estimate does not depend on the thread count.
    std::vector<std::vector<double>> oob_votes(
        n, std::vector<double>(static_cast<std::size_t>(num_classes), 0.0));
    std::vector<bool> oob_touched(n, false);
    icn::util::parallel_for(0, n, 64, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t t = 0; t < params.num_trees; ++t) {
          if (in_bag[t][i]) continue;
          const auto proba = trees_[t].predict_proba(x.row(i));
          for (std::size_t c = 0; c < proba.size(); ++c) {
            oob_votes[i][c] += proba[c];
          }
          oob_touched[i] = true;
        }
      }
    });
    std::size_t covered = 0, hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!oob_touched[i]) continue;
      ++covered;
      const auto& votes = oob_votes[i];
      const int pred = static_cast<int>(
          std::max_element(votes.begin(), votes.end()) - votes.begin());
      if (pred == y[i]) ++hits;
    }
    oob_accuracy_ = covered == 0
                        ? std::numeric_limits<double>::quiet_NaN()
                        : static_cast<double>(hits) /
                              static_cast<double>(covered);
  } else {
    oob_accuracy_ = std::numeric_limits<double>::quiet_NaN();
  }
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> x) const {
  ICN_REQUIRE(is_fitted(), "predict on unfitted forest");
  std::vector<double> proba(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const auto p = tree.predict_proba(x);
    for (std::size_t c = 0; c < p.size(); ++c) proba[c] += p[c];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (auto& p : proba) p *= inv;
  return proba;
}

int RandomForest::predict(std::span<const double> x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::vector<int> RandomForest::predict_all(const Matrix& x) const {
  std::vector<int> out(x.rows());
  icn::util::parallel_for(0, x.rows(), 32,
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i) {
                              out[i] = predict(x.row(i));
                            }
                          });
  return out;
}

std::vector<double> RandomForest::feature_importance() const {
  ICN_REQUIRE(is_fitted(), "importance on unfitted forest");
  std::vector<double> imp(num_features_, 0.0);
  for (const auto& tree : trees_) {
    const auto& ti = tree.impurity_importance();
    for (std::size_t f = 0; f < imp.size(); ++f) imp[f] += ti[f];
  }
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  if (total > 0.0) {
    for (auto& v : imp) v /= total;
  }
  return imp;
}

}  // namespace icn::ml
