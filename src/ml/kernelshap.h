// KernelSHAP — the model-agnostic Shapley approximation of Lundberg & Lee
// (NeurIPS 2017): a weighted linear regression over feature coalitions with
// the Shapley kernel, with absent features imputed from a background dataset.
//
// Used as the model-agnostic cross-check of TreeSHAP (the paper discusses
// both; TreeSHAP is the fast path for tree ensembles, KernelSHAP works for
// any model).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ml/matrix.h"

namespace icn::ml {

/// A black-box model: feature vector in, size-K output vector out.
using ModelFunction =
    std::function<std::vector<double>(std::span<const double>)>;

/// KernelSHAP configuration.
struct KernelShapParams {
  /// Budget of non-trivial coalitions. When 2^M - 2 fits, all are
  /// enumerated (exact regression); otherwise coalitions are sampled with
  /// the Shapley-kernel size distribution.
  std::size_t max_coalitions = 2048;
  std::uint64_t seed = 7;  ///< Sampling seed (sampled regime only).
};

/// KernelSHAP output.
struct KernelShapResult {
  Matrix phi;                ///< (M x K) Shapley value estimates.
  std::vector<double> base;  ///< v(empty): mean model output on background.
};

/// Explains model(x) against `background` (rows are reference samples used to
/// impute absent features; the interventional value function
/// v(S) = mean_b model(x_S combined with b_!S)).
/// Requires non-empty background with background.cols() == x.size() >= 1.
[[nodiscard]] KernelShapResult kernel_shap(const ModelFunction& model,
                                           std::span<const double> x,
                                           const Matrix& background,
                                           const KernelShapParams& params = {});

/// kernel_shap for every row of x, computed in parallel. Row r samples its
/// coalitions from the derived seed stream derive_seed(params.seed, r), so
/// explanations are independent of both the thread count and the batch
/// composition (and the exact-enumeration regime ignores seeds entirely).
/// The model is invoked from multiple threads concurrently and must be
/// thread-safe for const-style calls (RandomForest::predict_proba is).
[[nodiscard]] std::vector<KernelShapResult> kernel_shap_batch(
    const ModelFunction& model, const Matrix& x, const Matrix& background,
    const KernelShapParams& params = {});

/// The interventional value function used by kernel_shap, exposed so tests
/// can feed it to exact_shapley(). Output size = model output size.
[[nodiscard]] std::vector<double> interventional_value(
    const ModelFunction& model, std::span<const double> x,
    const Matrix& background, const std::vector<bool>& present);

}  // namespace icn::ml
