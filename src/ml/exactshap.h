// Exact Shapley values by subset enumeration (Eq. 4 of the paper).
//
// Exponential in the number of features, so only usable for small M — this
// is the ground truth the tests compare TreeSHAP and KernelSHAP against.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "ml/matrix.h"

namespace icn::ml {

/// A coalition value function: maps a feature-presence mask to the (size-K)
/// model output with the absent features marginalized out.
using ValueFunction =
    std::function<std::vector<double>(const std::vector<bool>&)>;

/// Exact Shapley values phi (M x K) by enumerating all 2^M coalitions:
///   phi_i = sum_{S not containing i} |S|!(M-|S|-1)!/M! * (v(S+i) - v(S)).
/// Requires 1 <= num_features <= 20 (cost 2^M evaluations of v).
[[nodiscard]] Matrix exact_shapley(const ValueFunction& v,
                                   std::size_t num_features,
                                   std::size_t num_outputs);

}  // namespace icn::ml
