#include "ml/kernelshap.h"

#include <algorithm>
#include <cmath>

#include "ml/linalg.h"
#include "util/arena.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace icn::ml {
namespace {

/// Binomial coefficient as double (M <= 63 here).
double choose(std::size_t n, std::size_t k) {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double r = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    r = r * static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return r;
}

/// Shapley kernel weight for a coalition of size s out of m features.
double shapley_kernel(std::size_t m, std::size_t s) {
  // (m - 1) / (C(m, s) * s * (m - s)); infinite at s = 0 and s = m, which are
  // handled as hard constraints instead.
  return static_cast<double>(m - 1) /
         (choose(m, s) * static_cast<double>(s) *
          static_cast<double>(m - s));
}

}  // namespace

std::vector<double> interventional_value(const ModelFunction& model,
                                         std::span<const double> x,
                                         const Matrix& background,
                                         const std::vector<bool>& present) {
  ICN_REQUIRE(background.rows() > 0 && background.cols() == x.size(),
              "background shape");
  ICN_REQUIRE(present.size() == x.size(), "present mask size");
  // The composite row is rebuilt once per (coalition, background) pair —
  // scratch-arena storage keeps that loop allocation-free.
  auto& arena = icn::util::scratch_arena();
  const icn::util::Arena::Frame frame(arena);
  const std::span<double> composite = arena.alloc_span<double>(x.size());
  std::vector<double> acc;
  for (std::size_t b = 0; b < background.rows(); ++b) {
    const auto bg = background.row(b);
    for (std::size_t f = 0; f < x.size(); ++f) {
      composite[f] = present[f] ? x[f] : bg[f];
    }
    const auto out = model(composite);
    if (acc.empty()) acc.assign(out.size(), 0.0);
    ICN_REQUIRE(out.size() == acc.size(), "model output size");
    for (std::size_t c = 0; c < out.size(); ++c) acc[c] += out[c];
  }
  const double inv = 1.0 / static_cast<double>(background.rows());
  for (auto& v : acc) v *= inv;
  return acc;
}

KernelShapResult kernel_shap(const ModelFunction& model,
                             std::span<const double> x,
                             const Matrix& background,
                             const KernelShapParams& params) {
  const std::size_t m = x.size();
  ICN_REQUIRE(m >= 1, "kernel_shap needs features");
  ICN_REQUIRE(background.rows() > 0 && background.cols() == m,
              "background shape");

  const std::vector<bool> none(m, false);
  const std::vector<bool> all(m, true);
  const std::vector<double> v0 = interventional_value(model, x, background,
                                                      none);
  const std::vector<double> v1 = interventional_value(model, x, background,
                                                      all);
  const std::size_t num_outputs = v0.size();

  KernelShapResult result;
  result.base = v0;
  result.phi = Matrix(m, num_outputs);

  if (m == 1) {
    for (std::size_t c = 0; c < num_outputs; ++c) {
      result.phi(0, c) = v1[c] - v0[c];
    }
    return result;
  }

  // Assemble coalitions (presence masks, excluding empty and full).
  std::vector<std::vector<bool>> masks;
  std::vector<double> weights;
  const bool enumerate_all =
      m <= 20 && ((std::size_t{1} << m) - 2) <= params.max_coalitions;
  if (enumerate_all) {
    for (std::size_t s = 1; s + 1 < (std::size_t{1} << m); ++s) {
      std::vector<bool> mask(m);
      std::size_t count = 0;
      for (std::size_t f = 0; f < m; ++f) {
        mask[f] = (s >> f) & 1U;
        count += mask[f] ? 1 : 0;
      }
      masks.push_back(std::move(mask));
      weights.push_back(shapley_kernel(m, count));
    }
  } else {
    // Sample coalition sizes from the Shapley-kernel mass, then uniform
    // subsets of that size.
    icn::util::Rng rng(params.seed);
    std::vector<double> size_mass(m - 1);
    for (std::size_t s = 1; s < m; ++s) {
      size_mass[s - 1] = shapley_kernel(m, s) * choose(m, s);
    }
    std::vector<std::size_t> order(m);
    for (std::size_t i = 0; i < params.max_coalitions; ++i) {
      const std::size_t s = rng.categorical(size_mass) + 1;
      for (std::size_t f = 0; f < m; ++f) order[f] = f;
      for (std::size_t f = 0; f < s; ++f) {
        const std::size_t j = f + rng.uniform_index(m - f);
        std::swap(order[f], order[j]);
      }
      std::vector<bool> mask(m, false);
      for (std::size_t f = 0; f < s; ++f) mask[order[f]] = true;
      masks.push_back(std::move(mask));
      weights.push_back(1.0);  // size already accounted for by sampling
    }
  }

  // Evaluate v on every coalition.
  std::vector<std::vector<double>> values(masks.size());
  for (std::size_t i = 0; i < masks.size(); ++i) {
    values[i] = interventional_value(model, x, background, masks[i]);
  }

  // Constrained weighted regression: eliminate the last feature using
  // sum(phi) = v(full) - v(empty). Design has m-1 columns:
  //   y_i - z_last * (v1 - v0) = sum_{f < m-1} phi_f * (z_f - z_last).
  const std::size_t p = m - 1;
  Matrix design(masks.size(), p);
  for (std::size_t i = 0; i < masks.size(); ++i) {
    const double z_last = masks[i][m - 1] ? 1.0 : 0.0;
    for (std::size_t f = 0; f < p; ++f) {
      design(i, f) = (masks[i][f] ? 1.0 : 0.0) - z_last;
    }
  }
  std::vector<double> y(masks.size());
  for (std::size_t c = 0; c < num_outputs; ++c) {
    const double delta = v1[c] - v0[c];
    for (std::size_t i = 0; i < masks.size(); ++i) {
      const double z_last = masks[i][m - 1] ? 1.0 : 0.0;
      y[i] = values[i][c] - v0[c] - z_last * delta;
    }
    const auto beta = weighted_least_squares(design, y, weights);
    double acc = 0.0;
    for (std::size_t f = 0; f < p; ++f) {
      result.phi(f, c) = beta[f];
      acc += beta[f];
    }
    result.phi(m - 1, c) = delta - acc;
  }
  return result;
}

std::vector<KernelShapResult> kernel_shap_batch(const ModelFunction& model,
                                                const Matrix& x,
                                                const Matrix& background,
                                                const KernelShapParams& params) {
  ICN_REQUIRE(background.rows() > 0 && background.cols() == x.cols(),
              "background shape");
  std::vector<KernelShapResult> out(x.rows());
  icn::util::parallel_for(0, x.rows(), 1,
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t r = lo; r < hi; ++r) {
                              KernelShapParams row_params = params;
                              row_params.seed =
                                  icn::util::derive_seed(params.seed, r);
                              out[r] = kernel_shap(model, x.row(r), background,
                                                   row_params);
                            }
                          });
  return out;
}

}  // namespace icn::ml
