// Runtime-dispatched element/row kernels for the RSCA transform and the
// silhouette/Dunn inner loops.
//
// These extend the dispatch contract of ml/distance.h to the remaining
// analysis hot paths:
//
//   - rsca_row: the fused RSCA transform. With row total T and baseline
//     share s_j, RCA = (t_j/T)/s_j and RSCA = (RCA-1)/(RCA+1) algebraically
//     collapse to (t_j - T*s_j) / (t_j + T*s_j) — one divide per element
//     instead of three. Services unseen in the baseline (s_j <= 0) map to
//     0.0 (the neutral RCA = 1 of the unfused path).
//   - rsca_map: element-wise (v-1)/(v+1), the standalone RCA->RSCA map.
//   - labeled_sums: per-cluster sums of a distance segment, the silhouette
//     a/b building block.
//   - labeled_extrema: masked min/max of a distance segment split by
//     same-label vs cross-label, the Dunn building block.
//
// Determinism: rsca_row and rsca_map are purely element-wise (every output
// element is a fixed expression of the corresponding inputs), so all lanes
// produce identical bits by IEEE semantics alone. labeled_sums accumulates
// per cluster in the canonical 4-lane order of ml/distance.h, with the
// conditional add defined as `acc += (label == c ? d : 0.0)` per lane slot.
// labeled_extrema uses `acc = (acc < x) ? x : acc` / `(x < acc) ? x : acc`
// per lane slot (NaN keeps the accumulator, like the scalar comparison) and
// combines lanes as (l0 op l2) op (l1 op l3). Every non-FMA lane is
// byte-identical; the opt-in avx2fma lane fuses T*s_j into the adjacent
// add/subtract for rsca_row (its parity reference is rsca_row_fma_reference)
// and falls back to the avx2 kernels everywhere else, since the other
// kernels contain no multiply-add pairs to fuse.
#pragma once

#include <cstddef>
#include <span>

namespace icn::ml {

/// Fused RSCA transform of one traffic row: out[j] = (t[j] - T*s[j]) /
/// (t[j] + T*s[j]), or 0.0 where s[j] <= 0. Requires equal extents.
void rsca_row(std::span<const double> traffic, std::span<const double> shares,
              double row_total, std::span<double> out);

/// Element-wise RCA -> RSCA map: out[i] = (v[i]-1)/(v[i]+1). The caller
/// validates non-negativity (see core/rca.cpp). Requires equal extents.
void rsca_map(std::span<const double> rca, std::span<double> out);

/// sums[c] += sum of d[j] where labels[j] == c, for each c in [0, k), in the
/// canonical 4-lane order. labels[j] must be in [0, k). Requires
/// labels.size() == d.size().
void labeled_sums(std::span<const double> d, std::span<const int> labels,
                  std::size_t k, double* sums);

/// Folds a distance segment into running extrema: elements with
/// labels[j] == own update *max_diam (same-cluster diameter), the rest
/// update *min_inter (cross-cluster separation). Requires equal extents.
void labeled_extrema(std::span<const double> d, std::span<const int> labels,
                     int own, double* min_inter, double* max_diam);

namespace detail {

// Per-level kernels, exposed for the bit-parity suites and SIMD benches.
// Wide variants must only run on hardware supporting the level; on non-x86
// builds they alias the scalar kernels. The avx512 entries forward to the
// avx2 kernels: these loops are compare/blend/divide bound, where 512-bit
// vectors buy nothing on this data shape, and the dispatch seam keeps the
// option open without a third code path.
void rsca_row_scalar(const double* t, const double* s, double total,
                     std::size_t n, double* out);
void rsca_row_sse2(const double* t, const double* s, double total,
                   std::size_t n, double* out);
void rsca_row_avx2(const double* t, const double* s, double total,
                   std::size_t n, double* out);
void rsca_row_avx512(const double* t, const double* s, double total,
                     std::size_t n, double* out);
/// Scalar reference for the FMA lane: std::fma(-total, s, t) numerator and
/// std::fma(total, s, t) denominator. Defines the bits rsca_row_fma must hit.
void rsca_row_fma_reference(const double* t, const double* s, double total,
                            std::size_t n, double* out);
void rsca_row_fma(const double* t, const double* s, double total,
                  std::size_t n, double* out);

void rsca_map_scalar(const double* v, std::size_t n, double* out);
void rsca_map_sse2(const double* v, std::size_t n, double* out);
void rsca_map_avx2(const double* v, std::size_t n, double* out);
void rsca_map_avx512(const double* v, std::size_t n, double* out);

void labeled_sums_scalar(const double* d, const int* labels, std::size_t n,
                         std::size_t k, double* sums);
void labeled_sums_sse2(const double* d, const int* labels, std::size_t n,
                       std::size_t k, double* sums);
void labeled_sums_avx2(const double* d, const int* labels, std::size_t n,
                       std::size_t k, double* sums);
void labeled_sums_avx512(const double* d, const int* labels, std::size_t n,
                         std::size_t k, double* sums);

void labeled_extrema_scalar(const double* d, const int* labels, int own,
                            std::size_t n, double* min_inter,
                            double* max_diam);
void labeled_extrema_sse2(const double* d, const int* labels, int own,
                          std::size_t n, double* min_inter, double* max_diam);
void labeled_extrema_avx2(const double* d, const int* labels, int own,
                          std::size_t n, double* min_inter, double* max_diam);
void labeled_extrema_avx512(const double* d, const int* labels, int own,
                            std::size_t n, double* min_inter,
                            double* max_diam);

}  // namespace detail

}  // namespace icn::ml
