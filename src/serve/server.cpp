#include "serve/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/error.h"

namespace icn::serve {
namespace {

[[noreturn]] void fail_errno(const char* op) {
  throw icn::util::IoError(std::string("serve: ") + op + " failed: " +
                           std::strerror(errno));
}

/// Parses a positive integer env var; throws EnvConfigError on garbage.
std::uint64_t parse_env_u64(const char* name, const char* value,
                            std::uint64_t min, std::uint64_t max) {
  std::string v;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p == ' ' || *p == '\t') continue;
    v += *p;
  }
  if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
    throw icn::util::EnvConfigError(
        std::string(name) + "=\"" + value +
        "\" is not a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || parsed < min ||
      parsed > max) {
    throw icn::util::EnvConfigError(
        std::string(name) + "=\"" + value + "\" is outside [" +
        std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return parsed;
}

}  // namespace

ServeConfig ServeConfig::from_env() {
  ServeConfig config;
  if (const char* v = std::getenv("ICN_SERVE_MAX_CONNS")) {
    config.max_connections = static_cast<std::size_t>(
        parse_env_u64("ICN_SERVE_MAX_CONNS", v, 1, 1u << 20));
  }
  if (const char* v = std::getenv("ICN_SERVE_MAX_FRAME")) {
    // Floor of 64: below the reply header + a small error detail nothing
    // could ever be answered.
    config.max_frame = static_cast<std::size_t>(
        parse_env_u64("ICN_SERVE_MAX_FRAME", v, 64, 1u << 30));
  }
  if (const char* v = std::getenv("ICN_SERVE_WRITE_BUF")) {
    config.write_high_water = static_cast<std::size_t>(
        parse_env_u64("ICN_SERVE_WRITE_BUF", v, 4096, 1u << 30));
  }
  if (const char* v = std::getenv("ICN_SERVE_RATE")) {
    config.rate_tokens_per_tick = static_cast<std::uint32_t>(
        parse_env_u64("ICN_SERVE_RATE", v, 0, 1u << 30));
  }
  if (const char* v = std::getenv("ICN_SERVE_RATE_BURST")) {
    config.rate_burst = static_cast<std::uint32_t>(
        parse_env_u64("ICN_SERVE_RATE_BURST", v, 0, 1u << 30));
  }
  if (config.rate_tokens_per_tick > 0 && config.rate_burst == 0) {
    config.rate_burst = config.rate_tokens_per_tick;
  }
  if (const char* v = std::getenv("ICN_SERVE_IDLE_TICKS")) {
    config.idle_deadline_ticks =
        parse_env_u64("ICN_SERVE_IDLE_TICKS", v, 0, 1u << 30);
  }
  if (const char* v = std::getenv("ICN_SERVE_REQUEST_TICKS")) {
    config.request_deadline_ticks =
        parse_env_u64("ICN_SERVE_REQUEST_TICKS", v, 0, 1u << 30);
  }
  if (const char* v = std::getenv("ICN_SERVE_DRAIN_TICKS")) {
    config.drain_deadline_ticks =
        parse_env_u64("ICN_SERVE_DRAIN_TICKS", v, 1, 1u << 30);
  }
  return config;
}

Server::Server(const ServeConfig& config, const SnapshotRegistry& registry)
    : config_(config), registry_(registry), listener_(config.port) {
  epoll_ = icn::util::Fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_.valid()) fail_errno("epoll_create1");
  wakeup_ = icn::util::Fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wakeup_.valid()) fail_errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.fd();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, listener_.fd(), &ev) != 0) {
    fail_errno("epoll_ctl(listener)");
  }
  ev.data.fd = wakeup_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wakeup_.get(), &ev) != 0) {
    fail_errno("epoll_ctl(wakeup)");
  }
}

Server::~Server() = default;

void Server::accept_pending(std::uint64_t tick) {
  while (true) {
    icn::util::Fd fd = listener_.accept_nonblocking();
    if (!fd.valid()) return;
    if (draining_ || sessions_.size() >= config_.max_connections) {
      // Typed refusal, best-effort (the socket buffer of a fresh connection
      // always fits one small frame), then close.
      const Status status =
          draining_ ? Status::kShuttingDown : Status::kServerFull;
      std::vector<std::uint8_t> reject;
      append_error_reply(
          reject, 0, Opcode::kPing, status, registry_.generation(),
          draining_ ? std::string("server draining")
                    : "connection limit of " +
                          std::to_string(config_.max_connections) +
                          " reached");
      (void)icn::util::write_some(fd.get(), reject);
      stats_.connections_refused += 1;
      continue;  // Fd closes on scope exit.
    }
    Session::Limits limits;
    limits.max_frame = config_.max_frame;
    limits.write_high_water = config_.write_high_water;
    limits.rate_tokens_per_tick = config_.rate_tokens_per_tick;
    limits.rate_burst = config_.rate_burst;
    limits.idle_deadline_ticks = config_.idle_deadline_ticks;
    limits.request_deadline_ticks = config_.request_deadline_ticks;
    std::unique_ptr<Transport> transport =
        std::make_unique<SocketTransport>(std::move(fd));
    if (transport_factory_) {
      transport = transport_factory_(std::move(transport),
                                     stats_.connections_accepted);
    }
    const int raw = transport->fd();
    auto session = std::make_unique<Session>(std::move(transport),
                                             registry_.acquire(), &registry_,
                                             limits, tick, &health_);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = raw;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, raw, &ev) != 0) {
      fail_errno("epoll_ctl(session add)");
    }
    sessions_.emplace(raw, std::move(session));
    stats_.connections_accepted += 1;
  }
}

void Server::update_interest(Session& session) {
  epoll_event ev{};
  ev.events = (session.wants_read() ? EPOLLIN : 0u) |
              (session.wants_write() ? EPOLLOUT : 0u);
  ev.data.fd = session.fd();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, session.fd(), &ev) != 0) {
    fail_errno("epoll_ctl(session mod)");
  }
}

void Server::absorb_counters(Session& session) {
  stats_.frames_served += session.take_frames_delta();
  stats_.shutdown_rejects += session.take_shutdown_rejects_delta();
}

void Server::drop_closed(int fd) {
  // The Session already closed its descriptor, which removed it from the
  // epoll set implicitly.
  sessions_.erase(fd);
  stats_.connections_closed += 1;
}

void Server::refresh_health() {
  health_.open_sessions = static_cast<std::uint32_t>(sessions_.size());
  health_.latest_generation = registry_.generation();
  health_.degraded_publishes = registry_.degraded_publishes();
  health_.connections_accepted = stats_.connections_accepted;
  health_.connections_refused = stats_.connections_refused;
  health_.connections_closed = stats_.connections_closed;
  health_.frames_served = stats_.frames_served;
  health_.ticks = stats_.ticks;
  health_.evicted_idle = stats_.sessions_evicted_idle;
  health_.evicted_deadline = stats_.sessions_evicted_deadline;
  health_.shutdown_rejects = stats_.shutdown_rejects;
  health_.checkpoint_failures =
      checkpoint_failures_source_ ? checkpoint_failures_source_() : 0;
  health_.draining = draining_ ? 1 : 0;
}

void Server::sweep_sessions(std::uint64_t tick) {
  const bool drain_expired =
      draining_ && tick >= drain_started_tick_ &&
      tick - drain_started_tick_ >= config_.drain_deadline_ticks;
  // Collect first: evictions and drops mutate sessions_.
  std::vector<int> fds;
  fds.reserve(sessions_.size());
  for (const auto& [fd, session] : sessions_) fds.push_back(fd);
  for (const int fd : fds) {
    const auto it = sessions_.find(fd);
    if (it == sessions_.end()) continue;
    Session& session = *it->second;
    if (drain_expired) {
      session.force_close();
    } else if (draining_ && session.drain_idle() &&
               tick > drain_started_tick_) {
      // Graceful drain exit: replies flushed, nothing left to answer. The
      // one-tick grace lets in-flight pipelined bytes arrive and collect
      // their typed kShuttingDown rejects instead of a bare EOF.
      session.force_close();
    } else if (session.state() == SessionState::kOpen) {
      const TickEvent event = session.on_tick(tick);
      if (event == TickEvent::kEvictedIdle) {
        stats_.sessions_evicted_idle += 1;
      } else if (event == TickEvent::kEvictedDeadline) {
        stats_.sessions_evicted_deadline += 1;
      }
    }
    // Evictions and drain rejects queue reply bytes outside the event
    // loop; flush them now so a quiet socket still sees the typed close.
    if (session.state() != SessionState::kClosed && session.wants_write()) {
      session.on_writable(tick);
    }
    absorb_counters(session);
    if (session.state() == SessionState::kClosed) {
      drop_closed(fd);
    } else {
      update_interest(session);
    }
  }
}

int Server::step(int timeout_ms) {
  epoll_event events[128];
  int n;
  do {
    n = ::epoll_wait(epoll_.get(), events, 128, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) fail_errno("epoll_wait");

  stats_.ticks += 1;
  const std::uint64_t tick = stats_.ticks;

  if (!draining_ && drain_requested_.load(std::memory_order_acquire)) {
    draining_ = true;
    drain_started_tick_ = tick;
    for (auto& [fd, session] : sessions_) session->begin_drain(tick);
  }
  refresh_health();

  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == listener_.fd()) {
      accept_pending(tick);
      continue;
    }
    if (fd == wakeup_.get()) {
      std::uint64_t drain;
      while (::read(wakeup_.get(), &drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    const auto it = sessions_.find(fd);
    if (it == sessions_.end()) continue;  // Closed earlier this round.
    Session& session = *it->second;
    if ((events[i].events & (EPOLLOUT)) != 0) session.on_writable(tick);
    if (session.state() != SessionState::kClosed &&
        (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
      session.on_readable(tick);
    }
    // Greedy flush + backpressure replay. Flushing in the same round avoids
    // a second epoll round-trip per request, and every drain below the
    // high-water mark must re-parse the frames that were already buffered
    // when backpressure tripped: a pipelining client waiting on those
    // replies sends no new bytes, so level-triggered EPOLLIN alone would
    // strand them in read_buf_ forever.
    while (session.state() != SessionState::kClosed) {
      session.on_writable(tick);
      if (session.state() == SessionState::kClosed ||
          !session.serve_buffered(tick)) {
        break;
      }
    }
    absorb_counters(session);
    if (session.state() == SessionState::kClosed) {
      drop_closed(fd);
    } else {
      update_interest(session);
    }
  }

  // Deadline / drain enforcement walks every session, not just the ones
  // with events — a slow loris's whole point is to stay silent. Skipped
  // when nothing could fire, so the happy path stays O(events).
  if (draining_ || config_.idle_deadline_ticks > 0 ||
      config_.request_deadline_ticks > 0) {
    sweep_sessions(tick);
  }
  return n;
}

void Server::run() {
  while (!stop_.load(std::memory_order_acquire)) {
    step(50);
    if (draining_ && sessions_.empty()) break;
  }
}

void Server::stop() {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  (void)::write(wakeup_.get(), &one, sizeof(one));
}

void Server::begin_drain() {
  drain_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  (void)::write(wakeup_.get(), &one, sizeof(one));
}

}  // namespace icn::serve
