#include "serve/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/error.h"

namespace icn::serve {
namespace {

[[noreturn]] void fail_errno(const char* op) {
  throw icn::util::IoError(std::string("serve: ") + op + " failed: " +
                           std::strerror(errno));
}

/// Parses a positive integer env var; throws EnvConfigError on garbage.
std::uint64_t parse_env_u64(const char* name, const char* value,
                            std::uint64_t min, std::uint64_t max) {
  std::string v;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p == ' ' || *p == '\t') continue;
    v += *p;
  }
  if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
    throw icn::util::EnvConfigError(
        std::string(name) + "=\"" + value +
        "\" is not a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || parsed < min ||
      parsed > max) {
    throw icn::util::EnvConfigError(
        std::string(name) + "=\"" + value + "\" is outside [" +
        std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return parsed;
}

}  // namespace

ServeConfig ServeConfig::from_env() {
  ServeConfig config;
  if (const char* v = std::getenv("ICN_SERVE_MAX_CONNS")) {
    config.max_connections = static_cast<std::size_t>(
        parse_env_u64("ICN_SERVE_MAX_CONNS", v, 1, 1u << 20));
  }
  if (const char* v = std::getenv("ICN_SERVE_MAX_FRAME")) {
    // Floor of 64: below the reply header + a small error detail nothing
    // could ever be answered.
    config.max_frame = static_cast<std::size_t>(
        parse_env_u64("ICN_SERVE_MAX_FRAME", v, 64, 1u << 30));
  }
  if (const char* v = std::getenv("ICN_SERVE_WRITE_BUF")) {
    config.write_high_water = static_cast<std::size_t>(
        parse_env_u64("ICN_SERVE_WRITE_BUF", v, 4096, 1u << 30));
  }
  if (const char* v = std::getenv("ICN_SERVE_RATE")) {
    config.rate_tokens_per_tick = static_cast<std::uint32_t>(
        parse_env_u64("ICN_SERVE_RATE", v, 0, 1u << 30));
  }
  if (const char* v = std::getenv("ICN_SERVE_RATE_BURST")) {
    config.rate_burst = static_cast<std::uint32_t>(
        parse_env_u64("ICN_SERVE_RATE_BURST", v, 0, 1u << 30));
  }
  if (config.rate_tokens_per_tick > 0 && config.rate_burst == 0) {
    config.rate_burst = config.rate_tokens_per_tick;
  }
  return config;
}

Server::Server(const ServeConfig& config, const SnapshotRegistry& registry)
    : config_(config), registry_(registry), listener_(config.port) {
  epoll_ = icn::util::Fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_.valid()) fail_errno("epoll_create1");
  wakeup_ = icn::util::Fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wakeup_.valid()) fail_errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.fd();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, listener_.fd(), &ev) != 0) {
    fail_errno("epoll_ctl(listener)");
  }
  ev.data.fd = wakeup_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wakeup_.get(), &ev) != 0) {
    fail_errno("epoll_ctl(wakeup)");
  }
}

Server::~Server() = default;

void Server::accept_pending() {
  while (true) {
    icn::util::Fd fd = listener_.accept_nonblocking();
    if (!fd.valid()) return;
    if (sessions_.size() >= config_.max_connections) {
      // Admission control: a typed reject, best-effort (the socket buffer
      // of a fresh connection always fits one small frame), then close.
      std::vector<std::uint8_t> reject;
      append_error_reply(reject, 0, Opcode::kPing, Status::kServerFull,
                         registry_.generation(),
                         "connection limit of " +
                             std::to_string(config_.max_connections) +
                             " reached");
      (void)icn::util::write_some(fd.get(), reject);
      stats_.connections_refused += 1;
      continue;  // Fd closes on scope exit.
    }
    Session::Limits limits;
    limits.max_frame = config_.max_frame;
    limits.write_high_water = config_.write_high_water;
    limits.rate_tokens_per_tick = config_.rate_tokens_per_tick;
    limits.rate_burst = config_.rate_burst;
    const int raw = fd.get();
    auto session = std::make_unique<Session>(std::move(fd),
                                             registry_.acquire(), &registry_,
                                             limits);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = raw;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, raw, &ev) != 0) {
      fail_errno("epoll_ctl(session add)");
    }
    sessions_.emplace(raw, std::move(session));
    stats_.connections_accepted += 1;
  }
}

void Server::update_interest(Session& session) {
  epoll_event ev{};
  ev.events = (session.wants_read() ? EPOLLIN : 0u) |
              (session.wants_write() ? EPOLLOUT : 0u);
  ev.data.fd = session.fd();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, session.fd(), &ev) != 0) {
    fail_errno("epoll_ctl(session mod)");
  }
}

void Server::drop_closed(int fd) {
  // The Session already closed its descriptor, which removed it from the
  // epoll set implicitly.
  sessions_.erase(fd);
  stats_.connections_closed += 1;
}

int Server::step(int timeout_ms) {
  epoll_event events[128];
  int n;
  do {
    n = ::epoll_wait(epoll_.get(), events, 128, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) fail_errno("epoll_wait");

  stats_.ticks += 1;
  const std::uint64_t tick = stats_.ticks;

  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == listener_.fd()) {
      accept_pending();
      continue;
    }
    if (fd == wakeup_.get()) {
      std::uint64_t drain;
      while (::read(wakeup_.get(), &drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    const auto it = sessions_.find(fd);
    if (it == sessions_.end()) continue;  // Closed earlier this round.
    Session& session = *it->second;
    const std::uint64_t frames_before = session.frames_served();
    if ((events[i].events & (EPOLLOUT)) != 0) session.on_writable();
    if (session.state() != SessionState::kClosed &&
        (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
      session.on_readable(tick);
    }
    // Greedy flush + backpressure replay. Flushing in the same round avoids
    // a second epoll round-trip per request, and every drain below the
    // high-water mark must re-parse the frames that were already buffered
    // when backpressure tripped: a pipelining client waiting on those
    // replies sends no new bytes, so level-triggered EPOLLIN alone would
    // strand them in read_buf_ forever.
    while (session.state() != SessionState::kClosed) {
      session.on_writable();
      if (session.state() == SessionState::kClosed ||
          !session.serve_buffered(tick)) {
        break;
      }
    }
    stats_.frames_served += session.frames_served() - frames_before;
    if (session.state() == SessionState::kClosed) {
      drop_closed(fd);
    } else {
      update_interest(session);
    }
  }
  return n;
}

void Server::run() {
  while (!stop_.load(std::memory_order_acquire)) {
    step(50);
  }
}

void Server::stop() {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  (void)::write(wakeup_.get(), &one, sizeof(one));
}

}  // namespace icn::serve
