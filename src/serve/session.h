// Per-connection state machine of the snapshot server (DESIGN.md §9.4).
//
// A Session owns one Transport (a non-blocking socket in production, a
// fault-injecting shim in the chaos tests) plus its read/write ByteQueues and
// the connection's pinned snapshot generation. The reactor calls
// on_readable/on_writable; the session extracts length-prefixed frames,
// applies the token-bucket rate limit, dispatches through the command table
// against its *pinned* ServedSnapshot, and queues reply bytes.
//
// Pinning: the session acquires the registry head when the connection is
// accepted and serves every query from that generation until the client
// sends kRepin — a hot swap never changes the data an in-flight or
// already-pinned reader sees. Sessions that connect after a swap see the new
// generation immediately.
//
// Backpressure: when the write queue exceeds the configured high-water mark
// the session stops parsing new requests (the reactor also stops polling it
// for reads) until the queue drains below the mark — a slow reader throttles
// itself, not the server.
//
// Deadlines (all on the virtual tick clock, so deterministic in step mode):
// an idle deadline evicts sessions that go quiet entirely, and a request
// deadline evicts slow-loris sessions that trickle a frame forever — both
// with a typed Status::kDeadline reply that flushes before the close. The
// request deadline only fires while the head of the read queue is an
// incomplete frame and intake is not backpressured: complete frames parked
// behind a full write queue are the server's debt, not the client's.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "serve/command_table.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/transport.h"
#include "util/bytes.h"
#include "util/socket.h"

namespace icn::serve {

/// Token-bucket rate limiter on the reactor's virtual tick clock (one tick
/// per poll round, never wall time, so single-threaded replays are exactly
/// reproducible). tokens_per_tick == 0 disables limiting.
class TokenBucket {
 public:
  // A non-zero rate with burst below the rate could never refill a full
  // tick's worth (refill is capped at burst; burst == 0 rejects forever), so
  // the burst is normalized to at least the per-tick rate.
  TokenBucket(std::uint32_t tokens_per_tick, std::uint32_t burst)
      : rate_(tokens_per_tick),
        burst_(tokens_per_tick > 0 ? std::max(burst, tokens_per_tick)
                                   : burst),
        tokens_(burst_) {}

  /// Advances the clock to `tick`, refilling rate_ tokens per elapsed tick
  /// up to the burst cap.
  void advance(std::uint64_t tick);

  /// Consumes one token; false = rate limited.
  [[nodiscard]] bool try_take();

  [[nodiscard]] std::uint64_t tokens() const { return tokens_; }

 private:
  std::uint32_t rate_ = 0;
  std::uint32_t burst_ = 0;
  std::uint64_t tokens_ = 0;
  std::uint64_t last_tick_ = 0;
};

/// Lifecycle as the reactor sees it.
enum class SessionState : std::uint8_t {
  kOpen,
  kDraining,  ///< Flush the write queue, then close (typed reject sent).
  kClosed,    ///< EOF or hard error; reactor should drop it now.
};

/// Why the session left kOpen (diagnostics / test assertions).
enum class CloseReason : std::uint8_t {
  kNone,
  kPeerGone,         ///< EOF, reset, or injected connection death.
  kOversized,        ///< Oversized frame reject.
  kIdleDeadline,     ///< Evicted: no bytes for idle_deadline_ticks.
  kRequestDeadline,  ///< Evicted: slow-loris partial frame.
  kShutdown,         ///< Server drain.
};

/// Outcome of one deadline check (Session::on_tick).
enum class TickEvent : std::uint8_t {
  kNone,
  kEvictedIdle,
  kEvictedDeadline,
};

class Session {
 public:
  /// Limits inherited from the server config (see ServeConfig).
  struct Limits {
    std::size_t max_frame = kDefaultMaxFrame;
    std::size_t write_high_water = 4u << 20;
    std::uint32_t rate_tokens_per_tick = 0;  ///< 0 = unlimited.
    std::uint32_t rate_burst = 0;
    std::uint64_t idle_deadline_ticks = 0;     ///< 0 = no idle eviction.
    std::uint64_t request_deadline_ticks = 0;  ///< 0 = no loris eviction.
  };

  /// `transport` carries the connection; `accept_tick` starts the idle
  /// clock; `health` (optional, must outlive the session) is the live
  /// counter block served for kHealth requests.
  Session(std::unique_ptr<Transport> transport,
          std::shared_ptr<const ServedSnapshot> pinned,
          const SnapshotRegistry* registry, const Limits& limits,
          std::uint64_t accept_tick = 0, const HealthInfo* health = nullptr);

  /// Legacy convenience: wraps a raw socket in a SocketTransport.
  Session(icn::util::Fd fd, std::shared_ptr<const ServedSnapshot> pinned,
          const SnapshotRegistry* registry, const Limits& limits);

  [[nodiscard]] int fd() const { return transport_->fd(); }
  [[nodiscard]] SessionState state() const { return state_; }
  [[nodiscard]] CloseReason close_reason() const { return close_reason_; }

  /// True when the session has reply bytes waiting for the socket.
  [[nodiscard]] bool wants_write() const { return !write_buf_.empty(); }
  /// False while backpressure (write high-water) or draining suppresses
  /// request intake.
  [[nodiscard]] bool wants_read() const {
    return state_ == SessionState::kOpen &&
           write_buf_.size() < limits_.write_high_water;
  }

  /// Drains the transport into the read queue and serves every complete
  /// frame. `tick` is the reactor's virtual clock.
  void on_readable(std::uint64_t tick);

  /// Flushes queued reply bytes. Transitions kDraining -> kClosed when the
  /// queue empties.
  void on_writable(std::uint64_t tick);

  /// Parses and serves every complete frame already buffered in the read
  /// queue, stopping when backpressure trips. Returns true when at least one
  /// frame was served. The reactor must call this after the write queue
  /// drains below the high-water mark: frames buffered when backpressure
  /// tripped would otherwise never be revisited — level-triggered EPOLLIN
  /// stays silent while a pipelining client waits for replies to requests it
  /// already sent.
  bool serve_buffered(std::uint64_t tick);

  /// Deadline check, called once per poll round. An eviction queues a typed
  /// Status::kDeadline reply and moves the session to kDraining (the reply
  /// flushes, then the connection closes).
  TickEvent on_tick(std::uint64_t tick);

  /// Server drain: every already-buffered complete frame is answered with a
  /// typed Status::kShuttingDown reject, and so is every frame that still
  /// arrives afterwards — the session stays open so in-flight pipelined
  /// requests see the typed status instead of a bare EOF. Idempotent.
  void begin_drain(std::uint64_t tick);

  /// True once a draining session has flushed every queued reply and holds
  /// no complete unanswered frame — the reactor may close it gracefully.
  [[nodiscard]] bool drain_idle() const;

  /// Drain-deadline enforcement: drops the connection immediately, queued
  /// bytes and all.
  void force_close();

  /// Generation currently pinned (0 = none).
  [[nodiscard]] std::uint64_t pinned_generation() const {
    return pinned_ ? pinned_->generation() : 0;
  }

  /// Frames answered over the session's lifetime (including typed errors).
  [[nodiscard]] std::uint64_t frames_served() const { return frames_served_; }
  /// Frames refused with kShuttingDown over the session's lifetime.
  [[nodiscard]] std::uint64_t shutdown_rejects() const {
    return shutdown_rejects_;
  }

  /// Counter deltas since the last take_* call, for the reactor's running
  /// totals (sessions die; the server absorbs before dropping them).
  std::uint64_t take_frames_delta();
  std::uint64_t take_shutdown_rejects_delta();

  /// Serves one already-extracted frame payload (shared with the
  /// deterministic single-threaded mode; exposed for tests).
  void serve_frame(std::span<const std::uint8_t> payload, std::uint64_t tick);

 private:
  void close_now();
  /// Queues the typed eviction reply and starts drain-and-close.
  void evict(CloseReason reason, std::uint64_t tick, const char* detail);

  std::unique_ptr<Transport> transport_;
  std::shared_ptr<const ServedSnapshot> pinned_;
  const SnapshotRegistry* registry_;  ///< For kRepin; may be null in tests.
  Limits limits_;
  TokenBucket bucket_;
  const HealthInfo* health_;  ///< Live kHealth source; null = zeroed reply.
  icn::util::ByteQueue read_buf_;
  icn::util::ByteQueue write_buf_;
  std::vector<std::uint8_t> reply_scratch_;
  std::vector<std::uint8_t> body_scratch_;
  SessionState state_ = SessionState::kOpen;
  CloseReason close_reason_ = CloseReason::kNone;
  bool shutting_down_ = false;
  std::uint64_t frames_served_ = 0;
  std::uint64_t frames_taken_ = 0;
  std::uint64_t shutdown_rejects_ = 0;
  std::uint64_t shutdown_rejects_taken_ = 0;
  std::uint64_t last_activity_tick_ = 0;  ///< Last tick that moved bytes in.
  std::uint64_t frame_start_tick_ = 0;    ///< When the pending frame began.
};

}  // namespace icn::serve
