// Per-connection state machine of the snapshot server (DESIGN.md §9.4).
//
// A Session owns one non-blocking socket plus its read/write ByteQueues and
// the connection's pinned snapshot generation. The reactor calls
// on_readable/on_writable; the session extracts length-prefixed frames,
// applies the token-bucket rate limit, dispatches through the command table
// against its *pinned* ServedSnapshot, and queues reply bytes.
//
// Pinning: the session acquires the registry head when the connection is
// accepted and serves every query from that generation until the client
// sends kRepin — a hot swap never changes the data an in-flight or
// already-pinned reader sees. Sessions that connect after a swap see the new
// generation immediately.
//
// Backpressure: when the write queue exceeds the configured high-water mark
// the session stops parsing new requests (the reactor also stops polling it
// for reads) until the queue drains below the mark — a slow reader throttles
// itself, not the server.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "serve/command_table.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "util/bytes.h"
#include "util/socket.h"

namespace icn::serve {

/// Token-bucket rate limiter on the reactor's virtual tick clock (one tick
/// per poll round, never wall time, so single-threaded replays are exactly
/// reproducible). tokens_per_tick == 0 disables limiting.
class TokenBucket {
 public:
  // A non-zero rate with burst below the rate could never refill a full
  // tick's worth (refill is capped at burst; burst == 0 rejects forever), so
  // the burst is normalized to at least the per-tick rate.
  TokenBucket(std::uint32_t tokens_per_tick, std::uint32_t burst)
      : rate_(tokens_per_tick),
        burst_(tokens_per_tick > 0 ? std::max(burst, tokens_per_tick)
                                   : burst),
        tokens_(burst_) {}

  /// Advances the clock to `tick`, refilling rate_ tokens per elapsed tick
  /// up to the burst cap.
  void advance(std::uint64_t tick);

  /// Consumes one token; false = rate limited.
  [[nodiscard]] bool try_take();

  [[nodiscard]] std::uint64_t tokens() const { return tokens_; }

 private:
  std::uint32_t rate_ = 0;
  std::uint32_t burst_ = 0;
  std::uint64_t tokens_ = 0;
  std::uint64_t last_tick_ = 0;
};

/// Why a session wants to close (reported to the reactor).
enum class SessionState : std::uint8_t {
  kOpen,
  kDraining,  ///< Flush the write queue, then close (oversized reject).
  kClosed,    ///< EOF or hard error; reactor should drop it now.
};

class Session {
 public:
  /// Limits inherited from the server config (see ServeConfig).
  struct Limits {
    std::size_t max_frame = kDefaultMaxFrame;
    std::size_t write_high_water = 4u << 20;
    std::uint32_t rate_tokens_per_tick = 0;  ///< 0 = unlimited.
    std::uint32_t rate_burst = 0;
  };

  Session(icn::util::Fd fd, std::shared_ptr<const ServedSnapshot> pinned,
          const SnapshotRegistry* registry, const Limits& limits);

  [[nodiscard]] int fd() const { return fd_.get(); }
  [[nodiscard]] SessionState state() const { return state_; }

  /// True when the session has reply bytes waiting for the socket.
  [[nodiscard]] bool wants_write() const { return !write_buf_.empty(); }
  /// False while backpressure (write high-water) or draining suppresses
  /// request intake.
  [[nodiscard]] bool wants_read() const {
    return state_ == SessionState::kOpen &&
           write_buf_.size() < limits_.write_high_water;
  }

  /// Drains the socket into the read queue and serves every complete frame.
  /// `tick` is the reactor's virtual clock for the rate limiter.
  void on_readable(std::uint64_t tick);

  /// Flushes queued reply bytes. Transitions kDraining -> kClosed when the
  /// queue empties.
  void on_writable();

  /// Parses and serves every complete frame already buffered in the read
  /// queue, stopping when backpressure trips. Returns true when at least one
  /// frame was served. The reactor must call this after the write queue
  /// drains below the high-water mark: frames buffered when backpressure
  /// tripped would otherwise never be revisited — level-triggered EPOLLIN
  /// stays silent while a pipelining client waits for replies to requests it
  /// already sent.
  bool serve_buffered(std::uint64_t tick);

  /// Generation currently pinned (0 = none).
  [[nodiscard]] std::uint64_t pinned_generation() const {
    return pinned_ ? pinned_->generation() : 0;
  }

  /// Frames answered over the session's lifetime (including typed errors).
  [[nodiscard]] std::uint64_t frames_served() const { return frames_served_; }

  /// Serves one already-extracted frame payload (shared with the
  /// deterministic single-threaded mode; exposed for tests).
  void serve_frame(std::span<const std::uint8_t> payload, std::uint64_t tick);

 private:
  void close_now();

  icn::util::Fd fd_;
  std::shared_ptr<const ServedSnapshot> pinned_;
  const SnapshotRegistry* registry_;  ///< For kRepin; may be null in tests.
  Limits limits_;
  TokenBucket bucket_;
  icn::util::ByteQueue read_buf_;
  icn::util::ByteQueue write_buf_;
  std::vector<std::uint8_t> reply_scratch_;
  SessionState state_ = SessionState::kOpen;
  std::uint64_t frames_served_ = 0;
};

}  // namespace icn::serve
