// Command-table dispatch: one handler struct per opcode (DESIGN.md §9.2).
//
// dispatch_request() is the deterministic core of the server: given a pinned
// ServedSnapshot and one request frame payload, it appends exactly one reply
// frame. It holds no state, takes no locks, allocates only the reply bytes,
// and never throws on wire input — malformed bodies become typed error
// replies. The epoll sessions and the single-threaded test mode both call
// it, which is the byte-exactness argument: any reply observed on a socket
// can be replayed here and memcmp'd.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serve/protocol.h"
#include "serve/registry.h"

namespace icn::serve {

/// One entry of the command table.
struct CommandHandler {
  Opcode opcode{};
  const char* name = "";
  /// Exact body size in bytes, or -1 for variable (validated by run).
  std::ptrdiff_t body_size = 0;
  /// Appends the kOk reply body to `body`, or returns an error status (the
  /// dispatcher then emits the typed error reply). `snap` is never null.
  Status (*run)(const ServedSnapshot& snap, BodyReader& in,
                std::vector<std::uint8_t>& body) = nullptr;
};

/// The table, indexed by opcode order (kPing..kRepin).
[[nodiscard]] std::span<const CommandHandler> command_table();

/// Serves one request frame payload from `snap` (nullptr = nothing
/// published), appending exactly one reply frame to `out`.
/// `max_reply_frame` caps the reply payload; a query whose answer would
/// exceed it gets a typed kOversized error instead of an unbounded reply.
void dispatch_request(const ServedSnapshot* snap,
                      std::span<const std::uint8_t> payload,
                      std::vector<std::uint8_t>& out,
                      std::size_t max_reply_frame = kDefaultMaxFrame);

/// Single-request convenience for tests and tools: returns the reply frame
/// for one request frame payload.
[[nodiscard]] std::vector<std::uint8_t> deterministic_reply(
    const ServedSnapshot* snap, std::span<const std::uint8_t> payload,
    std::size_t max_reply_frame = kDefaultMaxFrame);

}  // namespace icn::serve
