// The epoll reactor serving sealed snapshots to many clients (DESIGN.md §9).
//
// One reactor thread owns the listener, the epoll set, and every Session;
// queries execute inline on that thread (they are zero-copy reads, not
// compute), so the read path has no locks at all. The only cross-thread
// interactions are the SnapshotRegistry's atomic head swap (writer thread)
// and the stop/drain flags (any thread).
//
// Admission control: accepted connections beyond max_connections get a
// typed kServerFull reply and are closed before a Session is built; while
// draining, new connections get kShuttingDown instead.
//
// Determinism: step() is the single-threaded mode — tests drive the reactor
// one poll round at a time on their own thread, with the virtual tick clock
// advancing per round, and replies come out byte-identical to run()'s
// because both paths serve via Session::serve_frame -> dispatch_request.
// The chaos tests additionally slide a fault-injecting Transport under every
// session via set_transport_factory().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "serve/registry.h"
#include "serve/session.h"
#include "serve/transport.h"
#include "util/socket.h"

namespace icn::serve {

/// Server knobs. from_env() reads the ICN_SERVE_* variables and throws
/// icn::util::EnvConfigError on anything it cannot interpret, so a config
/// typo fails loudly at startup instead of silently serving defaults.
struct ServeConfig {
  std::uint16_t port = 0;            ///< 0 = ephemeral (tests/examples).
  std::size_t max_connections = 1024;            ///< ICN_SERVE_MAX_CONNS
  std::size_t max_frame = kDefaultMaxFrame;      ///< ICN_SERVE_MAX_FRAME
  std::size_t write_high_water = 4u << 20;       ///< ICN_SERVE_WRITE_BUF
  std::uint32_t rate_tokens_per_tick = 0;        ///< ICN_SERVE_RATE (0 = off)
  std::uint32_t rate_burst = 0;  ///< ICN_SERVE_RATE_BURST (0 = rate value)
  /// Evict sessions with no inbound bytes for this many ticks (0 = never).
  /// ICN_SERVE_IDLE_TICKS
  std::uint64_t idle_deadline_ticks = 0;
  /// Evict sessions whose pending frame stays incomplete for this many
  /// ticks — the slow-loris defense (0 = never). ICN_SERVE_REQUEST_TICKS
  std::uint64_t request_deadline_ticks = 0;
  /// Ticks a graceful drain waits for sessions to flush and leave before
  /// force-closing the stragglers. ICN_SERVE_DRAIN_TICKS
  std::uint64_t drain_deadline_ticks = 256;

  /// Applies ICN_SERVE_* environment overrides to the defaults above.
  [[nodiscard]] static ServeConfig from_env();
};

/// Running totals the reactor maintains (read between steps or after stop).
struct ServeStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;  ///< Admission + drain rejects.
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_served = 0;
  std::uint64_t ticks = 0;
  std::uint64_t sessions_evicted_idle = 0;
  std::uint64_t sessions_evicted_deadline = 0;  ///< Slow-loris evictions.
  std::uint64_t shutdown_rejects = 0;  ///< Frames refused while draining.
};

class Server {
 public:
  /// Wraps the freshly accepted connection's transport; the chaos tests
  /// install FaultyTransport here. `conn_index` counts accepted connections
  /// from 0 in accept order.
  using TransportFactory = std::function<std::unique_ptr<Transport>(
      std::unique_ptr<Transport> inner, std::uint64_t conn_index)>;

  /// Binds the loopback listener (throws IoError on failure). The registry
  /// must outlive the server; it may be published to while serving.
  Server(const ServeConfig& config, const SnapshotRegistry& registry);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] const ServeStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t num_sessions() const { return sessions_.size(); }
  /// True once a drain has been latched by the reactor (reactor thread /
  /// between steps only).
  [[nodiscard]] bool draining() const { return draining_; }
  /// Counters served for kHealth, refreshed at the top of each step.
  [[nodiscard]] const HealthInfo& health() const { return health_; }

  /// Installs the transport wrapper for future accepts. Call before the
  /// reactor runs (not thread safe against a running reactor).
  void set_transport_factory(TransportFactory factory) {
    transport_factory_ = std::move(factory);
  }

  /// Installs the source of HealthInfo::checkpoint_failures (e.g. summed
  /// FeedSupervisor stats). Sampled from the reactor thread at the top of
  /// each step; the callable must be safe to invoke from there. Call before
  /// the reactor runs (not thread safe against a running reactor).
  void set_checkpoint_failures_source(std::function<std::uint64_t()> source) {
    checkpoint_failures_source_ = std::move(source);
  }

  /// One poll round: waits up to timeout_ms for events, serves them, and
  /// advances the virtual tick. Returns the number of epoll events handled.
  int step(int timeout_ms);

  /// Serves until stop() is called (from any thread) or a drain completes.
  void run();
  /// Immediate stop: run() returns after the current round.
  void stop();
  /// Graceful drain (any thread): queued replies flush, new requests and
  /// connections get typed kShuttingDown, run() returns once every session
  /// is gone (or the drain deadline force-closes the stragglers).
  void begin_drain();

 private:
  void accept_pending(std::uint64_t tick);
  void update_interest(Session& session);
  void absorb_counters(Session& session);
  void drop_closed(int fd);
  void refresh_health();
  /// Deadline + drain sweep over every session (not just event-active
  /// ones); erases the sessions it closes.
  void sweep_sessions(std::uint64_t tick);

  ServeConfig config_;
  const SnapshotRegistry& registry_;
  icn::util::TcpListener listener_;
  icn::util::Fd epoll_;
  icn::util::Fd wakeup_;  ///< eventfd for cross-thread stop()/begin_drain().
  std::unordered_map<int, std::unique_ptr<Session>> sessions_;
  ServeStats stats_;
  HealthInfo health_;
  TransportFactory transport_factory_;
  std::function<std::uint64_t()> checkpoint_failures_source_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;  ///< Reactor-thread latch of drain_requested_.
  std::uint64_t drain_started_tick_ = 0;
};

}  // namespace icn::serve
