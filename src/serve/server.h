// The epoll reactor serving sealed snapshots to many clients (DESIGN.md §9).
//
// One reactor thread owns the listener, the epoll set, and every Session;
// queries execute inline on that thread (they are zero-copy reads, not
// compute), so the read path has no locks at all. The only cross-thread
// interaction is the SnapshotRegistry's atomic head swap (writer thread) and
// the stop flag (any thread).
//
// Admission control: accepted connections beyond max_connections get a
// typed kServerFull reply and are closed before a Session is built.
//
// Determinism: step() is the single-threaded mode — tests drive the reactor
// one poll round at a time on their own thread, with the virtual tick clock
// advancing per round, and replies come out byte-identical to run()'s
// because both paths serve via Session::serve_frame -> dispatch_request.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "serve/registry.h"
#include "serve/session.h"
#include "util/socket.h"

namespace icn::serve {

/// Server knobs. from_env() reads the ICN_SERVE_* variables and throws
/// icn::util::EnvConfigError on anything it cannot interpret, so a config
/// typo fails loudly at startup instead of silently serving defaults.
struct ServeConfig {
  std::uint16_t port = 0;            ///< 0 = ephemeral (tests/examples).
  std::size_t max_connections = 1024;            ///< ICN_SERVE_MAX_CONNS
  std::size_t max_frame = kDefaultMaxFrame;      ///< ICN_SERVE_MAX_FRAME
  std::size_t write_high_water = 4u << 20;       ///< ICN_SERVE_WRITE_BUF
  std::uint32_t rate_tokens_per_tick = 0;        ///< ICN_SERVE_RATE (0 = off)
  std::uint32_t rate_burst = 0;  ///< ICN_SERVE_RATE_BURST (0 = rate value)

  /// Applies ICN_SERVE_* environment overrides to the defaults above.
  [[nodiscard]] static ServeConfig from_env();
};

/// Running totals the reactor maintains (read between steps or after stop).
struct ServeStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;  ///< Admission control rejects.
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_served = 0;
  std::uint64_t ticks = 0;
};

class Server {
 public:
  /// Binds the loopback listener (throws IoError on failure). The registry
  /// must outlive the server; it may be published to while serving.
  Server(const ServeConfig& config, const SnapshotRegistry& registry);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] const ServeStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t num_sessions() const { return sessions_.size(); }

  /// One poll round: waits up to timeout_ms for events, serves them, and
  /// advances the virtual tick. Returns the number of epoll events handled.
  int step(int timeout_ms);

  /// Serves until stop() is called (from any thread).
  void run();
  void stop();

 private:
  void accept_pending();
  void update_interest(Session& session);
  void drop_closed(int fd);

  ServeConfig config_;
  const SnapshotRegistry& registry_;
  icn::util::TcpListener listener_;
  icn::util::Fd epoll_;
  icn::util::Fd wakeup_;  ///< eventfd for cross-thread stop().
  std::unordered_map<int, std::unique_ptr<Session>> sessions_;
  ServeStats stats_;
  std::atomic<bool> stop_{false};
};

}  // namespace icn::serve
