// Snapshot publication: one writer seals/loads snapshots, many readers pin
// generations, nobody blocks (DESIGN.md §9.3).
//
// A ServedSnapshot is an immutable bundle of a mmap'd store snapshot, its
// pre-parsed zero-copy views (matrix, meta, hour-indexed windows, coverage,
// quarantine), and optional analytics (cluster labels, per-cluster SHAP
// rankings) computed offline by whoever publishes. Immutability is the whole
// concurrency story: once published, the bundle never changes, so any number
// of reader threads can serve queries from it without synchronization.
//
// SnapshotRegistry is the epoch/RCU hand-off point. publish() swaps the
// head shared_ptr; acquire() copies it. A reader that acquired generation G
// keeps serving G's bytes — the mapping stays alive through the shared_ptr —
// while the writer publishes G+1 and newcomers see it. No torn reads (the
// pointer swap happens under a mutex held only for the swap itself, the
// pointee immutable), no locks anywhere on the query path (sessions pin at
// accept/repin, never per request), and retired generations unmap exactly
// when the last pinned reader lets go.
//
// The head slot is a plain shared_ptr under a micro mutex rather than
// std::atomic<shared_ptr>: the libstdc++ lock-bit implementation of the
// latter is opaque to ThreadSanitizer, and pinning is far off the hot path,
// so a pthread mutex TSan can reason about is the better trade.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "store/snapshot.h"

namespace icn::serve {

/// One ranked SHAP feature-impact entry (mirrors core::FeatureImpact without
/// depending on icn_core — the serving layer stores plain numbers).
struct ShapEntry {
  std::uint32_t service = 0;
  double mean_abs_shap = 0.0;
  double value_shap_correlation = 0.0;
  double mean_value_in_cluster = 0.0;
};

/// Analytics attached to a published snapshot. Computed by the publisher
/// (e.g. from core::analyze_traffic) — the server serves results, it does
/// not run the pipeline.
struct ServedAnalytics {
  std::uint32_t num_clusters = 0;
  /// Per analyzed row: the reported cluster label.
  std::vector<int> labels;
  /// Tensor rows that entered the analysis (maps labels[i] to a row). Empty
  /// means all rows were analyzed in order.
  std::vector<std::size_t> analyzed_rows;
  /// shap[c] = services ranked by mean_abs_shap, descending, for cluster c.
  std::vector<std::vector<ShapEntry>> shap;
};

/// Immutable snapshot + views + analytics bundle. Construct via load().
class ServedSnapshot {
 public:
  /// Maps `path` and pre-parses every section the command table serves.
  /// Throws store::SnapshotError / icn::util::IoError like MappedSnapshot.
  [[nodiscard]] static std::shared_ptr<ServedSnapshot> load(
      const std::string& path,
      std::optional<ServedAnalytics> analytics = std::nullopt);

  [[nodiscard]] const store::MappedSnapshot& snapshot() const { return snap_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  [[nodiscard]] std::size_t num_antennas() const { return num_antennas_; }
  [[nodiscard]] std::size_t num_services() const { return num_services_; }
  [[nodiscard]] std::int64_t num_hours() const { return num_hours_; }

  [[nodiscard]] const std::optional<store::MatrixView>& matrix() const {
    return matrix_;
  }
  [[nodiscard]] const std::optional<store::StreamMetaView>& meta() const {
    return meta_;
  }
  /// kWindow sections in file order.
  [[nodiscard]] const std::vector<store::WindowView>& windows() const {
    return windows_;
  }
  /// Index of the *last* window for `hour` (later checkpoints of the same
  /// hour supersede earlier ones), or -1 when the hour has no window.
  [[nodiscard]] std::ptrdiff_t window_for_hour(std::int64_t hour) const;

  [[nodiscard]] const std::optional<store::CoverageSectionView>& coverage()
      const {
    return coverage_;
  }
  [[nodiscard]] const std::optional<store::QuarantineSectionView>&
  quarantine() const {
    return quarantine_;
  }
  [[nodiscard]] const std::optional<ServedAnalytics>& analytics() const {
    return analytics_;
  }
  /// Cluster label of a tensor row (-1 = excluded/unanalyzed). Requires
  /// analytics() and row < num_antennas().
  [[nodiscard]] int label_of_row(std::size_t row) const {
    return row_labels_[row];
  }

 private:
  friend class SnapshotRegistry;
  explicit ServedSnapshot(const std::string& path) : snap_(path), path_(path) {}

  store::MappedSnapshot snap_;
  std::string path_;
  std::uint64_t generation_ = 0;  ///< Assigned by SnapshotRegistry::publish.

  std::size_t num_antennas_ = 0;
  std::size_t num_services_ = 0;
  std::int64_t num_hours_ = 0;

  std::optional<store::MatrixView> matrix_;
  std::optional<store::StreamMetaView> meta_;
  std::vector<store::WindowView> windows_;
  /// hour -> last window index, dense over [0, num_hours); -1 = absent.
  std::vector<std::ptrdiff_t> hour_index_;
  std::optional<store::CoverageSectionView> coverage_;
  std::optional<store::QuarantineSectionView> quarantine_;
  std::optional<ServedAnalytics> analytics_;
  std::vector<int> row_labels_;  ///< Dense per-row labels, -1 = unanalyzed.
};

/// The atomic publish/acquire hand-off. One writer, many readers.
class SnapshotRegistry {
 public:
  /// Assigns the next generation number to `snap` and makes it the head.
  /// Single-writer: callers serialize publishes (the sealing thread).
  /// Returns the assigned generation (1-based).
  std::uint64_t publish(std::shared_ptr<ServedSnapshot> snap);

  /// Convenience: load + publish in one step.
  std::uint64_t publish_file(
      const std::string& path,
      std::optional<ServedAnalytics> analytics = std::nullopt) {
    return publish(ServedSnapshot::load(path, std::move(analytics)));
  }

  /// Quarantined publish: like publish_file, but a sealed file that fails
  /// validation (section CRC mismatch, truncation, unreadable mapping) keeps
  /// the previous generation serving, bumps degraded_publishes(), records
  /// the error, and returns 0 — the reactor never crashes on a torn publish.
  /// Precondition failures (analytics shape bugs) still throw: those are
  /// publisher programming errors, not wire-vulnerable corruption.
  std::uint64_t try_publish_file(
      const std::string& path,
      std::optional<ServedAnalytics> analytics = std::nullopt);

  /// Publishes quarantined by try_publish_file since construction.
  [[nodiscard]] std::uint64_t degraded_publishes() const {
    return degraded_.load(std::memory_order_acquire);
  }

  /// Diagnostic from the most recent quarantined publish ("" = none yet).
  [[nodiscard]] std::string last_publish_error() const {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    return last_error_;
  }

  /// Pins the current head (nullptr before the first publish). A pointer
  /// copy under a mutex held for the copy only; called at accept and repin,
  /// never per query.
  [[nodiscard]] std::shared_ptr<const ServedSnapshot> acquire() const {
    const std::lock_guard<std::mutex> lock(head_mutex_);
    return head_;
  }

  /// Generation of the latest publish (0 = none yet).
  [[nodiscard]] std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex head_mutex_;
  std::shared_ptr<const ServedSnapshot> head_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> degraded_{0};
  mutable std::mutex error_mutex_;
  std::string last_error_;
};

}  // namespace icn::serve
