#include "serve/fault.h"

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"

namespace icn::serve {
namespace {

// Substream tags keep the per-purpose decision streams independent: the rx
// budget of a cell never shifts because the stall rate changed.
constexpr std::uint64_t kTagRx = 1;
constexpr std::uint64_t kTagTx = 2;
constexpr std::uint64_t kTagStall = 3;
constexpr std::uint64_t kTagCorrupt = 4;
constexpr std::uint64_t kTagReset = 5;

}  // namespace

std::string to_string(ServeFaultKind kind) {
  switch (kind) {
    case ServeFaultKind::kPartialRead:
      return "partial_read";
    case ServeFaultKind::kShortWrite:
      return "short_write";
    case ServeFaultKind::kStall:
      return "stall";
    case ServeFaultKind::kCorrupt:
      return "corrupt";
    case ServeFaultKind::kReset:
      return "reset";
  }
  return "?";
}

std::string to_string(const ServeFaultEvent& event) {
  return "conn=" + std::to_string(event.conn) +
         " tick=" + std::to_string(event.tick) + " " + to_string(event.kind) +
         " a=" + std::to_string(event.a) + " b=" + std::to_string(event.b);
}

std::string to_text(const ServeFaultLedger& ledger) {
  std::string out;
  for (const ServeFaultEvent& event : ledger) {
    out += to_string(event);
    out += '\n';
  }
  return out;
}

ServeFaultPlan::ServeFaultPlan(const ServeFaultPlanParams& params)
    : params_(params) {
  ICN_REQUIRE(params_.partial_read_max >= 1,
              "serve fault plan: partial_read_max >= 1");
  ICN_REQUIRE(params_.short_write_max >= 1,
              "serve fault plan: short_write_max >= 1");
  ICN_REQUIRE(params_.stall_max_ticks >= 1,
              "serve fault plan: stall_max_ticks >= 1");
  ICN_REQUIRE(params_.reset_min_ticks >= 1 &&
                  params_.reset_min_ticks <= params_.reset_max_ticks,
              "serve fault plan: 1 <= reset_min_ticks <= reset_max_ticks");
}

std::size_t ServeFaultPlan::rx_budget(std::uint64_t conn,
                                      std::uint64_t tick) const {
  if (stalled(conn, tick)) return 0;
  icn::util::Rng rng(
      icn::util::derive_seed(params_.seed, conn, tick, kTagRx));
  if (!rng.bernoulli(params_.partial_read_rate)) return kUnlimited;
  return 1 + static_cast<std::size_t>(
                 rng.uniform_index(params_.partial_read_max));
}

std::size_t ServeFaultPlan::tx_budget(std::uint64_t conn,
                                      std::uint64_t tick) const {
  if (stalled(conn, tick)) return 0;
  icn::util::Rng rng(
      icn::util::derive_seed(params_.seed, conn, tick, kTagTx));
  if (!rng.bernoulli(params_.short_write_rate)) return kUnlimited;
  return 1 + static_cast<std::size_t>(
                 rng.uniform_index(params_.short_write_max));
}

std::uint64_t ServeFaultPlan::stall_starting_at(std::uint64_t conn,
                                                std::uint64_t tick) const {
  if (params_.stall_rate <= 0.0) return 0;
  icn::util::Rng rng(
      icn::util::derive_seed(params_.seed, conn, tick, kTagStall));
  if (!rng.bernoulli(params_.stall_rate)) return 0;
  return 1 + rng.uniform_index(params_.stall_max_ticks);
}

bool ServeFaultPlan::stalled(std::uint64_t conn, std::uint64_t tick) const {
  if (params_.stall_rate <= 0.0) return false;
  // A window of length L starting at t covers [t, t + L); scan every start
  // that could still cover `tick`.
  for (std::uint64_t back = 0; back < params_.stall_max_ticks; ++back) {
    if (back > tick) break;
    if (stall_starting_at(conn, tick - back) > back) return true;
  }
  return false;
}

std::optional<std::uint8_t> ServeFaultPlan::corrupt_mask(
    std::uint64_t conn, std::uint64_t offset) const {
  if (params_.corrupt_rate <= 0.0) return std::nullopt;
  icn::util::Rng rng(
      icn::util::derive_seed(params_.seed, conn, offset, kTagCorrupt));
  if (!rng.bernoulli(params_.corrupt_rate)) return std::nullopt;
  return static_cast<std::uint8_t>(1u << rng.uniform_index(8));
}

std::optional<std::uint64_t> ServeFaultPlan::reset_after(
    std::uint64_t conn) const {
  if (params_.reset_rate <= 0.0) return std::nullopt;
  icn::util::Rng rng(icn::util::derive_seed(params_.seed, conn, kTagReset));
  if (!rng.bernoulli(params_.reset_rate)) return std::nullopt;
  return params_.reset_min_ticks +
         rng.uniform_index(params_.reset_max_ticks - params_.reset_min_ticks +
                           1);
}

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 const ServeFaultPlan* plan,
                                 std::uint64_t conn, ServeFaultLedger* ledger)
    : inner_(std::move(inner)), plan_(plan), conn_(conn), ledger_(ledger) {
  ICN_REQUIRE(inner_ != nullptr && plan_ != nullptr,
              "faulty transport: inner transport and plan required");
}

void FaultyTransport::log(ServeFaultKind kind, std::uint64_t tick,
                          std::uint64_t a, std::uint64_t b) {
  if (ledger_ != nullptr) {
    ledger_->push_back(ServeFaultEvent{conn_, tick, kind, a, b});
  }
}

bool FaultyTransport::check_reset(std::uint64_t tick) {
  if (reset_fired_) return true;
  if (!birth_tick_.has_value()) birth_tick_ = tick;
  const std::optional<std::uint64_t> lifetime = plan_->reset_after(conn_);
  if (lifetime.has_value() && tick - *birth_tick_ >= *lifetime) {
    log(ServeFaultKind::kReset, tick, *lifetime, 0);
    inner_->close();
    reset_fired_ = true;
    return true;
  }
  return false;
}

void FaultyTransport::roll_tick(std::uint64_t tick) {
  if (!tick_seen_ || tick != cur_tick_) {
    cur_tick_ = tick;
    tick_seen_ = true;
    rx_used_ = 0;
    tx_used_ = 0;
    stall_logged_ = false;
    partial_logged_ = false;
    short_logged_ = false;
  }
}

std::ptrdiff_t FaultyTransport::read_some(std::span<std::uint8_t> buf,
                                          std::uint64_t tick) {
  if (check_reset(tick)) return -1;
  roll_tick(tick);
  if (plan_->stalled(conn_, tick)) {
    if (!stall_logged_) {
      log(ServeFaultKind::kStall, tick, 0, 0);
      stall_logged_ = true;
    }
    return 0;
  }
  const std::size_t budget = plan_->rx_budget(conn_, tick);
  std::size_t allowed = buf.size();
  if (budget != ServeFaultPlan::kUnlimited) {
    if (rx_used_ >= budget) return 0;
    allowed = std::min(allowed, budget - rx_used_);
  }
  const std::ptrdiff_t n = inner_->read_some(buf.first(allowed), tick);
  if (n <= 0) return n;
  if (budget != ServeFaultPlan::kUnlimited) {
    rx_used_ += static_cast<std::size_t>(n);
    if (!partial_logged_) {
      log(ServeFaultKind::kPartialRead, tick, budget,
          static_cast<std::uint64_t>(n));
      partial_logged_ = true;
    }
  }
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::uint64_t offset = rx_offset_ + static_cast<std::uint64_t>(i);
    if (const auto mask = plan_->corrupt_mask(conn_, offset)) {
      buf[static_cast<std::size_t>(i)] ^= *mask;
      log(ServeFaultKind::kCorrupt, tick, offset, *mask);
    }
  }
  rx_offset_ += static_cast<std::uint64_t>(n);
  return n;
}

std::ptrdiff_t FaultyTransport::write_some(std::span<const std::uint8_t> buf,
                                           std::uint64_t tick) {
  if (check_reset(tick)) return -1;
  roll_tick(tick);
  if (plan_->stalled(conn_, tick)) {
    if (!stall_logged_) {
      log(ServeFaultKind::kStall, tick, 0, 0);
      stall_logged_ = true;
    }
    return 0;
  }
  const std::size_t budget = plan_->tx_budget(conn_, tick);
  std::size_t allowed = buf.size();
  if (budget != ServeFaultPlan::kUnlimited) {
    if (tx_used_ >= budget) return 0;
    allowed = std::min(allowed, budget - tx_used_);
  }
  const std::ptrdiff_t n = inner_->write_some(buf.first(allowed), tick);
  if (n <= 0) return n;
  if (budget != ServeFaultPlan::kUnlimited) {
    tx_used_ += static_cast<std::size_t>(n);
    if (!short_logged_) {
      log(ServeFaultKind::kShortWrite, tick, budget,
          static_cast<std::uint64_t>(n));
      short_logged_ = true;
    }
  }
  return n;
}

}  // namespace icn::serve
