// The byte-transport seam under Session (DESIGN.md §9.7).
//
// Session does all of its socket I/O through this interface so the serve
// chaos tests can slide a fault-injecting shim (serve/fault.h) between the
// state machine and the kernel without touching the state machine itself.
// The production path pays one virtual call per read/write — noise next to
// the syscall it wraps.
//
// Contract (mirrors icn::util::read_some / write_some):
//   > 0  bytes transferred
//   0    would block — try again on a later tick
//   -1   EOF, peer reset, or injected connection death
// Hard local errors still throw icn::util::IoError. `tick` is the reactor's
// virtual clock; a real socket ignores it, a faulty transport keys its
// per-tick budgets and stall windows off it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/socket.h"

namespace icn::serve {

class Transport {
 public:
  virtual ~Transport() = default;
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual std::ptrdiff_t read_some(std::span<std::uint8_t> buf,
                                   std::uint64_t tick) = 0;
  virtual std::ptrdiff_t write_some(std::span<const std::uint8_t> buf,
                                    std::uint64_t tick) = 0;
  virtual void close() = 0;
  /// Underlying descriptor for epoll registration (-1 once closed).
  [[nodiscard]] virtual int fd() const = 0;
};

/// The production transport: a plain non-blocking socket.
class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(icn::util::Fd fd) : fd_(std::move(fd)) {}

  std::ptrdiff_t read_some(std::span<std::uint8_t> buf,
                           std::uint64_t tick) override;
  std::ptrdiff_t write_some(std::span<const std::uint8_t> buf,
                            std::uint64_t tick) override;
  void close() override { fd_.close(); }
  [[nodiscard]] int fd() const override { return fd_.get(); }

 private:
  icn::util::Fd fd_;
};

}  // namespace icn::serve
