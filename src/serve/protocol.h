// Wire protocol of the snapshot query server (DESIGN.md §9.2).
//
// Everything is little-endian, mirroring the snapshot store. A connection
// carries a stream of length-prefixed frames in each direction:
//
//   frame   := u32 payload_len  payload[payload_len]
//   request := u32 request_id  u8 opcode  u8 reserved[3]=0  body
//   reply   := u32 request_id  u8 opcode  u8 status  u16 reserved=0
//              u64 generation  body
//
// `request_id` is an opaque client token echoed verbatim, so clients may
// pipeline requests and match replies. `generation` is the snapshot
// generation the reply was served from (0 = none published yet); it is how a
// client observes a hot swap. Error replies (status != kOk) carry a body of
// `u32 msg_len  msg[msg_len]` ASCII detail.
//
// Framing survives bad bodies: a request whose *frame* is intact but whose
// body is garbage gets a typed error reply and the connection keeps going.
// Only a declared payload length beyond the server's max-frame knob is
// answered with a kOversized reject and a close, since the stream position
// after an unread over-long payload is unknowable.
//
// The reply to any request is a pure function of (served snapshot, request
// payload) — session state never leaks into reply bytes (kRepin swaps the
// snapshot *between* requests). That purity is what makes the byte-exact
// deterministic test mode possible: tests replay a captured request against
// command_table dispatch and memcmp the reply.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace icn::serve {

inline constexpr std::uint32_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 4;
inline constexpr std::size_t kRequestHeaderSize = 8;
inline constexpr std::size_t kReplyHeaderSize = 16;
/// Default cap on a frame payload; override with ICN_SERVE_MAX_FRAME.
inline constexpr std::size_t kDefaultMaxFrame = 1u << 20;

/// Request opcodes. One CommandHandler per value (command_table.h).
enum class Opcode : std::uint8_t {
  kPing = 1,        ///< body: empty. reply: u32 protocol_version.
  kInfo = 2,        ///< body: empty. reply: snapshot shape + section flags.
  kSlice = 3,       ///< body: u32 row, u32 service, i64 hour_first, i64
                    ///< hour_last. reply: u32 hours, u32 services, f64[].
  kCluster = 4,     ///< body: u32 row. reply: i32 label (-1 = unanalyzed).
  kShap = 5,        ///< body: u32 cluster, u32 max_services. reply: ranked
                    ///< {u32 service, f64 mean_abs, f64 corr, f64 mean_val}.
  kCoverage = 6,    ///< body: u32 row (kAllRows = summary). reply: see .cpp.
  kQuarantine = 7,  ///< body: empty. reply: per-hour rejected/repaired.
  kRepin = 8,       ///< body: empty. Session re-pins to the latest
                    ///< generation; reply body empty.
  kHealth = 9,      ///< body: empty. reply: HealthInfo wire layout (see
                    ///< append_health_body). Served with *live* reactor
                    ///< stats by the session; the pure dispatch path
                    ///< answers with zeroed counters, so kHealth is the one
                    ///< opcode excluded from the byte-exactness oracle.
};

/// Wildcard row/service selector in kSlice/kCoverage bodies.
inline constexpr std::uint32_t kAllServices = 0xFFFFFFFFu;
inline constexpr std::uint32_t kAllRows = 0xFFFFFFFFu;
/// hour_first == hour_last == kTotalsHours selects the kMatrix totals
/// instead of per-hour kWindow cells.
inline constexpr std::int64_t kTotalsHours = -1;

/// Typed reply status. Every abnormal outcome a client can cause has a
/// distinct value — the protocol never answers garbage with a disconnect
/// alone.
enum class Status : std::uint8_t {
  kOk = 0,
  kMalformedFrame = 1,  ///< Header too short / nonzero reserved bytes.
  kBadOpcode = 2,       ///< Unknown opcode byte.
  kBadBody = 3,         ///< Body size or field values malformed.
  kOutOfRange = 4,      ///< Row/service/cluster/hour outside the snapshot.
  kNoSection = 5,       ///< Snapshot lacks the section/analytics queried.
  kOversized = 6,       ///< Declared frame length above the server cap.
  kRateLimited = 7,     ///< Token bucket empty; retry later.
  kServerFull = 8,      ///< Admission control: connection limit reached.
  kNoSnapshot = 9,      ///< Nothing published yet.
  kDeadline = 10,       ///< Idle or request deadline exceeded; the session
                        ///< is evicted after this typed reply flushes.
  kShuttingDown = 11,   ///< Server draining: queued replies still flush,
                        ///< new requests and connections are refused.
};

[[nodiscard]] const char* to_string(Status status);

/// Live reactor health served by Opcode::kHealth. The session fills it from
/// the reactor's counters; dispatch_request (no reactor behind it) answers
/// with a zeroed instance so the wire layout is total over callers.
struct HealthInfo {
  std::uint32_t open_sessions = 0;
  std::uint64_t latest_generation = 0;   ///< Registry head, not the pin.
  std::uint64_t degraded_publishes = 0;  ///< Publishes quarantined by CRC.
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_served = 0;
  std::uint64_t ticks = 0;
  std::uint64_t evicted_idle = 0;      ///< Idle-deadline evictions.
  std::uint64_t evicted_deadline = 0;  ///< Request-deadline (slow loris).
  std::uint64_t shutdown_rejects = 0;  ///< Frames refused while draining.
  std::uint64_t checkpoint_failures = 0;  ///< Durability-layer checkpoint
                                          ///< append/fsync failures (ENOSPC
                                          ///< degradation) upstream of the
                                          ///< snapshots this server publishes.
  std::uint8_t draining = 0;
};

/// Exact byte size of the kHealth kOk reply body.
inline constexpr std::size_t kHealthBodySize = 4 + 4 + 11 * 8 + 4;

/// Appends the fixed little-endian kHealth body (version, then HealthInfo).
void append_health_body(std::vector<std::uint8_t>& out,
                        const HealthInfo& info);

/// Decoded request header + body view (into the caller's frame buffer).
struct Request {
  std::uint32_t request_id = 0;
  Opcode opcode{};
  std::span<const std::uint8_t> body;
};

/// Outcome of decode_request: a request, or the typed error to reply with.
struct DecodedRequest {
  std::optional<Request> request;  ///< Set iff status == kOk.
  Status status = Status::kOk;
  std::uint32_t request_id = 0;  ///< Echoed even for malformed bodies when
                                 ///< the header was readable (else 0).
};

/// Validates a request frame payload. Never throws on wire input.
[[nodiscard]] DecodedRequest decode_request(
    std::span<const std::uint8_t> payload);

/// Little-endian append helpers shared by request and reply builders.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_i32(std::vector<std::uint8_t>& out, std::int32_t v);
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v);
void put_f64(std::vector<std::uint8_t>& out, double v);
void put_bytes(std::vector<std::uint8_t>& out,
               std::span<const std::uint8_t> bytes);

/// Bounds-checked little-endian cursor over a request body. Each take_*
/// returns nullopt once the body is exhausted; ok() reports whether every
/// read so far succeeded and done() whether the body was fully consumed.
class BodyReader {
 public:
  explicit BodyReader(std::span<const std::uint8_t> body) : body_(body) {}

  [[nodiscard]] std::optional<std::uint32_t> take_u32();
  [[nodiscard]] std::optional<std::int64_t> take_i64();
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool done() const { return ok_ && at_ == body_.size(); }

 private:
  std::span<const std::uint8_t> body_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

/// Builds one request frame (frame header + request header + body).
[[nodiscard]] std::vector<std::uint8_t> build_request(
    std::uint32_t request_id, Opcode opcode,
    std::span<const std::uint8_t> body = {});

/// Appends one complete reply frame to `out`. `body` is the opcode-specific
/// payload for kOk replies; error replies should pass the ASCII detail via
/// build_error_reply instead.
void append_reply(std::vector<std::uint8_t>& out, std::uint32_t request_id,
                  Opcode opcode, Status status, std::uint64_t generation,
                  std::span<const std::uint8_t> body);

/// Appends a typed error reply frame (status != kOk) carrying `detail`.
void append_error_reply(std::vector<std::uint8_t>& out,
                        std::uint32_t request_id, Opcode opcode, Status status,
                        std::uint64_t generation, std::string_view detail);

/// Decoded reply header + body view, for clients.
struct Reply {
  std::uint32_t request_id = 0;
  Opcode opcode{};
  Status status = Status::kOk;
  std::uint64_t generation = 0;
  std::span<const std::uint8_t> body;
};

/// Parses a reply frame payload (client side). Returns nullopt on a
/// malformed reply (short header / nonzero reserved).
[[nodiscard]] std::optional<Reply> decode_reply(
    std::span<const std::uint8_t> payload);

/// Incremental frame extraction from a byte stream.
struct FrameResult {
  enum class Kind : std::uint8_t {
    kNeedMore,   ///< Not enough buffered bytes for a whole frame.
    kFrame,      ///< `payload` is one complete frame payload.
    kOversized,  ///< Declared length exceeds max_frame; connection must
                 ///< reject and close (stream position is lost).
  };
  Kind kind = Kind::kNeedMore;
  std::span<const std::uint8_t> payload;
  std::size_t consumed = 0;  ///< Bytes of `stream` this frame used.
  std::uint32_t declared_len = 0;  ///< For kOversized diagnostics.
};

/// Examines the head of `stream` for one frame without consuming it; the
/// caller drops `consumed` bytes after handling kFrame.
[[nodiscard]] FrameResult try_parse_frame(std::span<const std::uint8_t> stream,
                                          std::size_t max_frame);

}  // namespace icn::serve
