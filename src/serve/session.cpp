#include "serve/session.h"

#include <algorithm>
#include <string>

namespace icn::serve {

void TokenBucket::advance(std::uint64_t tick) {
  if (rate_ == 0) return;
  if (tick > last_tick_) {
    const std::uint64_t elapsed = tick - last_tick_;
    // elapsed >= burst implies a full refill for any rate >= 1; the branch
    // also keeps elapsed * rate_ away from overflow.
    const std::uint64_t refill =
        elapsed >= burst_ ? burst_ : elapsed * rate_;
    tokens_ = std::min<std::uint64_t>(burst_, tokens_ + refill);
    last_tick_ = tick;
  }
}

bool TokenBucket::try_take() {
  if (rate_ == 0) return true;
  if (tokens_ == 0) return false;
  --tokens_;
  return true;
}

Session::Session(std::unique_ptr<Transport> transport,
                 std::shared_ptr<const ServedSnapshot> pinned,
                 const SnapshotRegistry* registry, const Limits& limits,
                 std::uint64_t accept_tick, const HealthInfo* health)
    : transport_(std::move(transport)),
      pinned_(std::move(pinned)),
      registry_(registry),
      limits_(limits),
      bucket_(limits.rate_tokens_per_tick, limits.rate_burst),
      health_(health),
      last_activity_tick_(accept_tick),
      frame_start_tick_(accept_tick) {}

Session::Session(icn::util::Fd fd,
                 std::shared_ptr<const ServedSnapshot> pinned,
                 const SnapshotRegistry* registry, const Limits& limits)
    : Session(std::make_unique<SocketTransport>(std::move(fd)),
              std::move(pinned), registry, limits) {}

void Session::serve_frame(std::span<const std::uint8_t> payload,
                          std::uint64_t tick) {
  bucket_.advance(tick);
  reply_scratch_.clear();
  ++frames_served_;  // Every frame gets exactly one reply, typed or kOk.
  const DecodedRequest decoded = decode_request(payload);
  const Opcode op = decoded.request ? decoded.request->opcode : Opcode::kPing;

  if (shutting_down_) {
    // Drain semantics: queued replies still flush, but frames that arrive
    // (or were buffered) after the drain began are refused, typed.
    ++shutdown_rejects_;
    append_error_reply(reply_scratch_, decoded.request_id, op,
                       Status::kShuttingDown, pinned_generation(),
                       to_string(Status::kShuttingDown));
    write_buf_.append(reply_scratch_);
    return;
  }

  if (!bucket_.try_take()) {
    // Rate-limited requests are refused without dispatch — but the reply
    // still echoes the request id when the header was readable so the
    // client can match it.
    append_error_reply(reply_scratch_, decoded.request_id, op,
                       Status::kRateLimited, pinned_generation(),
                       to_string(Status::kRateLimited));
    write_buf_.append(reply_scratch_);
    return;
  }

  // kHealth with a live counter source is the one opcode the session
  // answers itself: the counters are reactor state, not snapshot state, so
  // the pure dispatch path (which serves a zeroed HealthInfo) cannot know
  // them. Malformed kHealth bodies still fall through to dispatch for the
  // typed kBadBody reply.
  if (health_ != nullptr && decoded.request && op == Opcode::kHealth &&
      decoded.request->body.empty()) {
    body_scratch_.clear();
    append_health_body(body_scratch_, *health_);
    append_reply(reply_scratch_, decoded.request_id, Opcode::kHealth,
                 Status::kOk, pinned_generation(), body_scratch_);
    write_buf_.append(reply_scratch_);
    return;
  }

  // kRepin swaps the session's pin *before* dispatch so the reply's
  // generation stamp names the snapshot subsequent requests will read.
  if (registry_ != nullptr && decoded.request &&
      op == Opcode::kRepin && decoded.request->body.empty()) {
    pinned_ = registry_->acquire();
  }

  dispatch_request(pinned_.get(), payload, reply_scratch_, limits_.max_frame);
  write_buf_.append(reply_scratch_);
}

void Session::on_readable(std::uint64_t tick) {
  if (state_ != SessionState::kOpen) return;
  // Drain the transport. 16 KiB per read keeps one syscall per small burst
  // while bounding the bytes a single session can queue per round.
  while (wants_read()) {
    auto span = read_buf_.grow_tail(16384);
    const std::ptrdiff_t n = transport_->read_some(span, tick);
    if (n < 0) {
      if (close_reason_ == CloseReason::kNone) {
        close_reason_ = CloseReason::kPeerGone;
      }
      close_now();
      return;
    }
    read_buf_.shrink_tail(span.size() - static_cast<std::size_t>(n));
    if (n == 0) break;  // EAGAIN: transport drained this tick.
    if (read_buf_.size() == static_cast<std::size_t>(n)) {
      // Empty -> nonempty: the pending frame's deadline clock starts now.
      frame_start_tick_ = tick;
    }
    last_activity_tick_ = tick;
    serve_buffered(tick);
  }
}

bool Session::serve_buffered(std::uint64_t tick) {
  bool served = false;
  while (wants_read()) {
    const FrameResult frame =
        try_parse_frame(read_buf_.data(), limits_.max_frame);
    if (frame.kind == FrameResult::Kind::kNeedMore) break;
    if (frame.kind == FrameResult::Kind::kOversized) {
      // Typed reject, then drain-and-close: the stream position after an
      // unread over-long payload is unknowable, so the connection cannot
      // be resynchronized.
      reply_scratch_.clear();
      append_error_reply(
          reply_scratch_, 0, Opcode::kPing, Status::kOversized,
          pinned_generation(),
          "frame of " + std::to_string(frame.declared_len) +
              " bytes exceeds the server max of " +
              std::to_string(limits_.max_frame));
      write_buf_.append(reply_scratch_);
      state_ = SessionState::kDraining;
      close_reason_ = CloseReason::kOversized;
      return true;
    }
    serve_frame(frame.payload, tick);
    read_buf_.consume(frame.consumed);
    // Progress resets the slow-loris clock: whatever partial frame remains
    // buffered started its wait now, not when the first byte arrived.
    frame_start_tick_ = tick;
    last_activity_tick_ = tick;
    served = true;
  }
  return served;
}

void Session::on_writable(std::uint64_t tick) {
  while (!write_buf_.empty()) {
    const std::ptrdiff_t n = transport_->write_some(write_buf_.data(), tick);
    if (n < 0) {
      if (close_reason_ == CloseReason::kNone) {
        close_reason_ = CloseReason::kPeerGone;
      }
      close_now();
      return;
    }
    if (n == 0) return;  // EAGAIN: kernel buffer full, try next round.
    write_buf_.consume(static_cast<std::size_t>(n));
  }
  if (state_ == SessionState::kDraining) close_now();
}

TickEvent Session::on_tick(std::uint64_t tick) {
  if (state_ != SessionState::kOpen || shutting_down_) return TickEvent::kNone;

  if (limits_.request_deadline_ticks > 0 && !read_buf_.empty()) {
    // Slow-loris check: the head of the read queue has been an incomplete
    // frame for too long. Complete frames parked behind write backpressure
    // are the server's debt, not the client's, so wants_read() gates it.
    const FrameResult head =
        try_parse_frame(read_buf_.data(), limits_.max_frame);
    if (head.kind == FrameResult::Kind::kNeedMore && wants_read() &&
        tick >= frame_start_tick_ &&
        tick - frame_start_tick_ >= limits_.request_deadline_ticks) {
      evict(CloseReason::kRequestDeadline, tick,
            "request deadline exceeded (incomplete frame)");
      return TickEvent::kEvictedDeadline;
    }
  }

  if (limits_.idle_deadline_ticks > 0 && read_buf_.empty() &&
      write_buf_.empty() && tick >= last_activity_tick_ &&
      tick - last_activity_tick_ >= limits_.idle_deadline_ticks) {
    evict(CloseReason::kIdleDeadline, tick, "idle deadline exceeded");
    return TickEvent::kEvictedIdle;
  }
  return TickEvent::kNone;
}

void Session::evict(CloseReason reason, std::uint64_t /*tick*/,
                    const char* detail) {
  reply_scratch_.clear();
  append_error_reply(reply_scratch_, 0, Opcode::kPing, Status::kDeadline,
                     pinned_generation(), detail);
  write_buf_.append(reply_scratch_);
  state_ = SessionState::kDraining;
  close_reason_ = reason;
}

void Session::begin_drain(std::uint64_t tick) {
  if (state_ != SessionState::kOpen || shutting_down_) return;
  shutting_down_ = true;
  // The session stays kOpen: already-buffered and still-arriving frames all
  // get their typed kShuttingDown replies (serve_frame sees shutting_down_).
  // The reactor closes the session once it is drain-idle — replies flushed
  // and no complete frame pending — or at the drain deadline.
  serve_buffered(tick);
  if (close_reason_ == CloseReason::kNone) {
    close_reason_ = CloseReason::kShutdown;
  }
}

bool Session::drain_idle() const {
  if (!shutting_down_ || state_ != SessionState::kOpen) return false;
  if (!write_buf_.empty()) return false;
  const FrameResult head =
      try_parse_frame(read_buf_.data(), limits_.max_frame);
  return head.kind == FrameResult::Kind::kNeedMore;
}

void Session::force_close() {
  if (state_ == SessionState::kClosed) return;
  if (close_reason_ == CloseReason::kNone) {
    close_reason_ = CloseReason::kShutdown;
  }
  close_now();
}

std::uint64_t Session::take_frames_delta() {
  const std::uint64_t delta = frames_served_ - frames_taken_;
  frames_taken_ = frames_served_;
  return delta;
}

std::uint64_t Session::take_shutdown_rejects_delta() {
  const std::uint64_t delta = shutdown_rejects_ - shutdown_rejects_taken_;
  shutdown_rejects_taken_ = shutdown_rejects_;
  return delta;
}

void Session::close_now() {
  transport_->close();
  state_ = SessionState::kClosed;
  read_buf_.clear();
  write_buf_.clear();
}

}  // namespace icn::serve
