#include "serve/session.h"

#include <algorithm>
#include <string>

namespace icn::serve {

void TokenBucket::advance(std::uint64_t tick) {
  if (rate_ == 0) return;
  if (tick > last_tick_) {
    const std::uint64_t elapsed = tick - last_tick_;
    // elapsed >= burst implies a full refill for any rate >= 1; the branch
    // also keeps elapsed * rate_ away from overflow.
    const std::uint64_t refill =
        elapsed >= burst_ ? burst_ : elapsed * rate_;
    tokens_ = std::min<std::uint64_t>(burst_, tokens_ + refill);
    last_tick_ = tick;
  }
}

bool TokenBucket::try_take() {
  if (rate_ == 0) return true;
  if (tokens_ == 0) return false;
  --tokens_;
  return true;
}

Session::Session(icn::util::Fd fd,
                 std::shared_ptr<const ServedSnapshot> pinned,
                 const SnapshotRegistry* registry, const Limits& limits)
    : fd_(std::move(fd)),
      pinned_(std::move(pinned)),
      registry_(registry),
      limits_(limits),
      bucket_(limits.rate_tokens_per_tick, limits.rate_burst) {}

void Session::serve_frame(std::span<const std::uint8_t> payload,
                          std::uint64_t tick) {
  bucket_.advance(tick);
  reply_scratch_.clear();
  ++frames_served_;  // Every frame gets exactly one reply, typed or kOk.
  if (!bucket_.try_take()) {
    // Rate-limited requests are refused without decoding the body — but the
    // reply still echoes the request id when the header is readable so the
    // client can match it.
    const DecodedRequest decoded = decode_request(payload);
    const Opcode op =
        decoded.request ? decoded.request->opcode : Opcode::kPing;
    append_error_reply(reply_scratch_, decoded.request_id, op,
                       Status::kRateLimited, pinned_generation(),
                       to_string(Status::kRateLimited));
    write_buf_.append(reply_scratch_);
    return;
  }

  // kRepin swaps the session's pin *before* dispatch so the reply's
  // generation stamp names the snapshot subsequent requests will read.
  if (registry_ != nullptr) {
    const DecodedRequest decoded = decode_request(payload);
    if (decoded.request && decoded.request->opcode == Opcode::kRepin &&
        decoded.request->body.empty()) {
      pinned_ = registry_->acquire();
    }
  }

  dispatch_request(pinned_.get(), payload, reply_scratch_, limits_.max_frame);
  write_buf_.append(reply_scratch_);
}

void Session::on_readable(std::uint64_t tick) {
  if (state_ != SessionState::kOpen) return;
  // Drain the socket. 16 KiB per read keeps one syscall per small burst
  // while bounding the bytes a single session can queue per round.
  while (wants_read()) {
    auto span = read_buf_.grow_tail(16384);
    const std::ptrdiff_t n = icn::util::read_some(fd_.get(), span);
    if (n < 0) {
      close_now();
      return;
    }
    read_buf_.shrink_tail(span.size() - static_cast<std::size_t>(n));
    if (n == 0) break;  // EAGAIN: socket drained.
    serve_buffered(tick);
  }
}

bool Session::serve_buffered(std::uint64_t tick) {
  bool served = false;
  while (wants_read()) {
    const FrameResult frame =
        try_parse_frame(read_buf_.data(), limits_.max_frame);
    if (frame.kind == FrameResult::Kind::kNeedMore) break;
    if (frame.kind == FrameResult::Kind::kOversized) {
      // Typed reject, then drain-and-close: the stream position after an
      // unread over-long payload is unknowable, so the connection cannot
      // be resynchronized.
      reply_scratch_.clear();
      append_error_reply(
          reply_scratch_, 0, Opcode::kPing, Status::kOversized,
          pinned_generation(),
          "frame of " + std::to_string(frame.declared_len) +
              " bytes exceeds the server max of " +
              std::to_string(limits_.max_frame));
      write_buf_.append(reply_scratch_);
      state_ = SessionState::kDraining;
      return true;
    }
    serve_frame(frame.payload, tick);
    read_buf_.consume(frame.consumed);
    served = true;
  }
  return served;
}

void Session::on_writable() {
  while (!write_buf_.empty()) {
    const std::ptrdiff_t n =
        icn::util::write_some(fd_.get(), write_buf_.data());
    if (n < 0) {
      close_now();
      return;
    }
    if (n == 0) return;  // EAGAIN: kernel buffer full, try next round.
    write_buf_.consume(static_cast<std::size_t>(n));
  }
  if (state_ == SessionState::kDraining) close_now();
}

void Session::close_now() {
  fd_.close();
  state_ = SessionState::kClosed;
  read_buf_.clear();
  write_buf_.clear();
}

}  // namespace icn::serve
