#include "serve/registry.h"

#include "util/error.h"

namespace icn::serve {

std::shared_ptr<ServedSnapshot> ServedSnapshot::load(
    const std::string& path, std::optional<ServedAnalytics> analytics) {
  // Not make_shared: the constructor is private and the mapping is large
  // enough that control-block co-location is irrelevant.
  std::shared_ptr<ServedSnapshot> out(new ServedSnapshot(path));

  out->matrix_ = out->snap_.matrix();
  out->meta_ = out->snap_.stream_meta();
  out->windows_ = out->snap_.windows();
  out->coverage_ = out->snap_.coverage();
  out->quarantine_ = out->snap_.quarantine();

  // Shape: prefer the explicit kStreamMeta; fall back to the matrix for
  // merged study snapshots that carry totals only.
  if (out->meta_) {
    out->num_antennas_ = out->meta_->antenna_ids.size();
    out->num_services_ = out->meta_->num_services;
    out->num_hours_ = out->meta_->num_hours;
  } else if (out->matrix_) {
    out->num_antennas_ = out->matrix_->rows;
    out->num_services_ = out->matrix_->cols;
    out->num_hours_ = 0;
  }

  if (out->num_hours_ > 0) {
    out->hour_index_.assign(static_cast<std::size_t>(out->num_hours_), -1);
    for (std::size_t w = 0; w < out->windows_.size(); ++w) {
      const std::int64_t hour = out->windows_[w].hour;
      if (hour >= 0 && hour < out->num_hours_) {
        // Later sections supersede: a resumed ingest may have re-closed an
        // hour after a torn tail was truncated.
        out->hour_index_[static_cast<std::size_t>(hour)] =
            static_cast<std::ptrdiff_t>(w);
      }
    }
  }

  if (analytics.has_value()) {
    ICN_REQUIRE(analytics->shap.size() == analytics->num_clusters,
                "served analytics: one SHAP ranking per cluster");
    out->row_labels_.assign(out->num_antennas_, -1);
    if (analytics->analyzed_rows.empty()) {
      ICN_REQUIRE(analytics->labels.size() <= out->num_antennas_,
                  "served analytics: more labels than rows");
      for (std::size_t i = 0; i < analytics->labels.size(); ++i) {
        out->row_labels_[i] = analytics->labels[i];
      }
    } else {
      ICN_REQUIRE(analytics->analyzed_rows.size() == analytics->labels.size(),
                  "served analytics: analyzed_rows/labels size mismatch");
      for (std::size_t i = 0; i < analytics->labels.size(); ++i) {
        const std::size_t row = analytics->analyzed_rows[i];
        ICN_REQUIRE(row < out->num_antennas_,
                    "served analytics: analyzed row out of range");
        out->row_labels_[row] = analytics->labels[i];
      }
    }
    out->analytics_ = std::move(analytics);
  }
  return out;
}

std::ptrdiff_t ServedSnapshot::window_for_hour(std::int64_t hour) const {
  if (hour < 0 || hour >= static_cast<std::int64_t>(hour_index_.size())) {
    return -1;
  }
  return hour_index_[static_cast<std::size_t>(hour)];
}

std::uint64_t SnapshotRegistry::try_publish_file(
    const std::string& path, std::optional<ServedAnalytics> analytics) {
  try {
    return publish(ServedSnapshot::load(path, std::move(analytics)));
  } catch (const store::SnapshotError& e) {
    degraded_.fetch_add(1, std::memory_order_acq_rel);
    const std::lock_guard<std::mutex> lock(error_mutex_);
    last_error_ = e.what();
  } catch (const icn::util::IoError& e) {
    degraded_.fetch_add(1, std::memory_order_acq_rel);
    const std::lock_guard<std::mutex> lock(error_mutex_);
    last_error_ = e.what();
  }
  return 0;
}

std::uint64_t SnapshotRegistry::publish(std::shared_ptr<ServedSnapshot> snap) {
  ICN_REQUIRE(snap != nullptr, "publish requires a snapshot");
  const std::uint64_t gen =
      generation_.load(std::memory_order_relaxed) + 1;
  snap->generation_ = gen;
  // Order matters for readers that look at generation() without acquiring:
  // the head must carry the new bundle before generation() reports it.
  {
    const std::lock_guard<std::mutex> lock(head_mutex_);
    head_ = std::shared_ptr<const ServedSnapshot>(std::move(snap));
  }
  generation_.store(gen, std::memory_order_release);
  return gen;
}

}  // namespace icn::serve
