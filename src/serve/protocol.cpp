#include "serve/protocol.h"

#include <cstring>

namespace icn::serve {
namespace {

template <typename T>
void put_raw(std::vector<std::uint8_t>& out, T v) {
  const auto at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

bool known_opcode(std::uint8_t op) {
  return op >= static_cast<std::uint8_t>(Opcode::kPing) &&
         op <= static_cast<std::uint8_t>(Opcode::kHealth);
}

}  // namespace

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kMalformedFrame:
      return "malformed frame";
    case Status::kBadOpcode:
      return "unknown opcode";
    case Status::kBadBody:
      return "malformed body";
    case Status::kOutOfRange:
      return "out of range";
    case Status::kNoSection:
      return "section not in snapshot";
    case Status::kOversized:
      return "frame too large";
    case Status::kRateLimited:
      return "rate limited";
    case Status::kServerFull:
      return "server full";
    case Status::kNoSnapshot:
      return "no snapshot published";
    case Status::kDeadline:
      return "deadline exceeded";
    case Status::kShuttingDown:
      return "server shutting down";
  }
  return "?";
}

void append_health_body(std::vector<std::uint8_t>& out,
                        const HealthInfo& info) {
  put_u32(out, kProtocolVersion);
  put_u32(out, info.open_sessions);
  put_u64(out, info.latest_generation);
  put_u64(out, info.degraded_publishes);
  put_u64(out, info.connections_accepted);
  put_u64(out, info.connections_refused);
  put_u64(out, info.connections_closed);
  put_u64(out, info.frames_served);
  put_u64(out, info.ticks);
  put_u64(out, info.evicted_idle);
  put_u64(out, info.evicted_deadline);
  put_u64(out, info.shutdown_rejects);
  put_u64(out, info.checkpoint_failures);
  put_u8(out, info.draining);
  put_u8(out, 0);
  put_u8(out, 0);
  put_u8(out, 0);
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  put_raw(out, v);
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_raw(out, v);
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_raw(out, v);
}
void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_raw(out, v);
}
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_raw(out, v);
}
void put_f64(std::vector<std::uint8_t>& out, double v) { put_raw(out, v); }
void put_bytes(std::vector<std::uint8_t>& out,
               std::span<const std::uint8_t> bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

DecodedRequest decode_request(std::span<const std::uint8_t> payload) {
  DecodedRequest out;
  if (payload.size() < kRequestHeaderSize) {
    out.status = Status::kMalformedFrame;
    if (payload.size() >= 4) out.request_id = get_u32(payload.data());
    return out;
  }
  out.request_id = get_u32(payload.data());
  const std::uint8_t op = payload[4];
  if (payload[5] != 0 || payload[6] != 0 || payload[7] != 0) {
    out.status = Status::kMalformedFrame;
    return out;
  }
  if (!known_opcode(op)) {
    out.status = Status::kBadOpcode;
    return out;
  }
  out.request = Request{out.request_id, static_cast<Opcode>(op),
                        payload.subspan(kRequestHeaderSize)};
  return out;
}

std::optional<std::uint32_t> BodyReader::take_u32() {
  if (!ok_ || at_ + 4 > body_.size()) {
    ok_ = false;
    return std::nullopt;
  }
  const std::uint32_t v = get_u32(body_.data() + at_);
  at_ += 4;
  return v;
}

std::optional<std::int64_t> BodyReader::take_i64() {
  if (!ok_ || at_ + 8 > body_.size()) {
    ok_ = false;
    return std::nullopt;
  }
  const auto v = static_cast<std::int64_t>(get_u64(body_.data() + at_));
  at_ += 8;
  return v;
}

std::vector<std::uint8_t> build_request(std::uint32_t request_id,
                                        Opcode opcode,
                                        std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + kRequestHeaderSize + body.size());
  put_u32(out, static_cast<std::uint32_t>(kRequestHeaderSize + body.size()));
  put_u32(out, request_id);
  put_u8(out, static_cast<std::uint8_t>(opcode));
  put_u8(out, 0);
  put_u8(out, 0);
  put_u8(out, 0);
  put_bytes(out, body);
  return out;
}

void append_reply(std::vector<std::uint8_t>& out, std::uint32_t request_id,
                  Opcode opcode, Status status, std::uint64_t generation,
                  std::span<const std::uint8_t> body) {
  put_u32(out, static_cast<std::uint32_t>(kReplyHeaderSize + body.size()));
  put_u32(out, request_id);
  put_u8(out, static_cast<std::uint8_t>(opcode));
  put_u8(out, static_cast<std::uint8_t>(status));
  put_u16(out, 0);
  put_u64(out, generation);
  put_bytes(out, body);
}

void append_error_reply(std::vector<std::uint8_t>& out,
                        std::uint32_t request_id, Opcode opcode, Status status,
                        std::uint64_t generation, std::string_view detail) {
  std::vector<std::uint8_t> body;
  body.reserve(4 + detail.size());
  put_u32(body, static_cast<std::uint32_t>(detail.size()));
  put_bytes(body, {reinterpret_cast<const std::uint8_t*>(detail.data()),
                   detail.size()});
  append_reply(out, request_id, opcode, status, generation, body);
}

std::optional<Reply> decode_reply(std::span<const std::uint8_t> payload) {
  if (payload.size() < kReplyHeaderSize) return std::nullopt;
  Reply reply;
  reply.request_id = get_u32(payload.data());
  reply.opcode = static_cast<Opcode>(payload[4]);
  reply.status = static_cast<Status>(payload[5]);
  if (payload[6] != 0 || payload[7] != 0) return std::nullopt;
  reply.generation = get_u64(payload.data() + 8);
  reply.body = payload.subspan(kReplyHeaderSize);
  return reply;
}

FrameResult try_parse_frame(std::span<const std::uint8_t> stream,
                            std::size_t max_frame) {
  FrameResult result;
  if (stream.size() < kFrameHeaderSize) return result;
  const std::uint32_t len = get_u32(stream.data());
  if (len > max_frame) {
    result.kind = FrameResult::Kind::kOversized;
    result.declared_len = len;
    return result;
  }
  if (stream.size() < kFrameHeaderSize + len) return result;
  result.kind = FrameResult::Kind::kFrame;
  result.payload = stream.subspan(kFrameHeaderSize, len);
  result.consumed = kFrameHeaderSize + len;
  return result;
}

}  // namespace icn::serve
