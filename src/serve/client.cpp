#include "serve/client.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/rng.h"

namespace icn::serve {

const char* to_string(ClientErrorKind kind) {
  switch (kind) {
    case ClientErrorKind::kConnectFailed:
      return "connect failed";
    case ClientErrorKind::kConnectTimeout:
      return "connect timeout";
    case ClientErrorKind::kWriteFailed:
      return "write failed";
    case ClientErrorKind::kReadTimeout:
      return "read timeout";
    case ClientErrorKind::kClosedByServer:
      return "closed by server";
    case ClientErrorKind::kTruncatedReply:
      return "truncated reply";
    case ClientErrorKind::kMalformedReply:
      return "malformed reply";
  }
  return "?";
}

std::uint64_t backoff_delay_ms(const ClientOptions& options,
                               std::uint32_t attempt) {
  // Shift capped at 20: beyond that any base >= 1 ms already exceeds every
  // sane backoff_max_ms, and 1 << 63 would overflow.
  const std::uint64_t shifted =
      options.backoff_base_ms << std::min<std::uint32_t>(attempt, 20);
  const std::uint64_t raw = std::min(options.backoff_max_ms, shifted);
  if (raw <= 1) return raw;
  // Deterministic jitter in [raw/2, raw): equal (seed, attempt) pairs sleep
  // equally on every platform, so seeded chaos tests replay exactly.
  icn::util::Rng rng(
      icn::util::derive_seed(options.jitter_seed, attempt));
  return raw / 2 + rng.uniform_index(raw - raw / 2);
}

QueryClient::QueryClient(std::uint16_t port, const ClientOptions& options)
    : port_(port), options_(options) {
  connect_with_retries(port);
}

void QueryClient::connect_with_retries(std::uint16_t port) {
  const std::uint32_t attempts = std::max<std::uint32_t>(1, options_.max_attempts);
  int last_errno = 0;
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff_delay_ms(options_, attempt - 1)));
    }
    const int timeout =
        options_.connect_timeout_ms == 0 ? -1 : options_.connect_timeout_ms;
    fd_ = icn::util::try_connect_loopback(port, timeout, &last_errno);
    if (fd_.valid()) return;
  }
  if (last_errno == 0) {
    throw ClientError(ClientErrorKind::kConnectTimeout,
                      "serve client: no connection to 127.0.0.1:" +
                          std::to_string(port) + " within " +
                          std::to_string(options_.connect_timeout_ms) + " ms");
  }
  throw ClientError(ClientErrorKind::kConnectFailed,
                    "serve client: connect to 127.0.0.1:" +
                        std::to_string(port) + " failed: " +
                        std::strerror(last_errno));
}

void QueryClient::read_exact_deadline(std::span<std::uint8_t> buf,
                                      bool mid_frame) {
  const auto started = std::chrono::steady_clock::now();
  std::size_t at = 0;
  while (at < buf.size()) {
    int remaining = -1;
    if (options_.read_timeout_ms > 0) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - started);
      remaining =
          options_.read_timeout_ms - static_cast<int>(elapsed.count());
      if (remaining <= 0 ||
          icn::util::poll_fd(fd_.get(), POLLIN, remaining) == 0) {
        throw ClientError(ClientErrorKind::kReadTimeout,
                          "serve client: no reply bytes within " +
                              std::to_string(options_.read_timeout_ms) +
                              " ms (" + std::to_string(at) + "/" +
                              std::to_string(buf.size()) + " read)");
      }
    }
    const ssize_t n = ::read(fd_.get(), buf.data() + at, buf.size() - at);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        throw ClientError(mid_frame || at > 0
                              ? ClientErrorKind::kTruncatedReply
                              : ClientErrorKind::kClosedByServer,
                          "serve client: connection reset by server");
      }
      throw ClientError(ClientErrorKind::kClosedByServer,
                        std::string("serve client: read failed: ") +
                            std::strerror(errno));
    }
    if (n == 0) {
      if (mid_frame || at > 0) {
        throw ClientError(ClientErrorKind::kTruncatedReply,
                          "serve client: connection closed mid-reply (" +
                              std::to_string(at) + "/" +
                              std::to_string(buf.size()) + " bytes)");
      }
      throw ClientError(ClientErrorKind::kClosedByServer,
                        "serve client: connection closed by server");
    }
    at += static_cast<std::size_t>(n);
  }
}

void QueryClient::read_frame() {
  std::uint8_t header[kFrameHeaderSize];
  read_exact_deadline(std::span<std::uint8_t>(header), /*mid_frame=*/false);
  std::uint32_t len = 0;
  std::memcpy(&len, header, sizeof(len));
  reply_payload_.resize(len);
  if (len > 0) {
    read_exact_deadline(
        std::span<std::uint8_t>(reply_payload_.data(), len),
        /*mid_frame=*/true);
  }
}

Reply QueryClient::call(Opcode opcode, std::span<const std::uint8_t> body,
                        std::uint32_t request_id) {
  request_scratch_ = build_request(request_id, opcode, body);
  try {
    icn::util::write_all(fd_.get(), request_scratch_);
  } catch (const icn::util::IoError& e) {
    throw ClientError(ClientErrorKind::kWriteFailed, e.what());
  }
  read_frame();
  const std::optional<Reply> reply = decode_reply(reply_payload_);
  if (!reply) {
    throw ClientError(ClientErrorKind::kMalformedReply,
                      "serve client: malformed reply frame (" +
                          std::to_string(reply_payload_.size()) +
                          " payload bytes)");
  }
  return *reply;
}

Reply QueryClient::call_idempotent(Opcode opcode,
                                   std::span<const std::uint8_t> body,
                                   std::uint32_t request_id) {
  const std::uint32_t attempts = std::max<std::uint32_t>(1, options_.max_attempts);
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      return call(opcode, body, request_id);
    } catch (const ClientError&) {
      if (attempt + 1 >= attempts) throw;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff_delay_ms(options_, attempt)));
    // Every query opcode is an idempotent read (kRepin re-pins to the same
    // head on a re-send), so tearing down and re-sending is safe.
    fd_.close();
    connect_with_retries(port_);
    ++reconnects_;
  }
}

std::vector<std::uint8_t> QueryClient::call_raw(
    std::span<const std::uint8_t> frame) {
  try {
    icn::util::write_all(fd_.get(), frame);
  } catch (const icn::util::IoError& e) {
    throw ClientError(ClientErrorKind::kWriteFailed, e.what());
  }
  read_frame();
  return reply_payload_;
}

std::vector<std::uint8_t> make_slice_body(std::uint32_t row,
                                          std::uint32_t service,
                                          std::int64_t hour_first,
                                          std::int64_t hour_last) {
  std::vector<std::uint8_t> body;
  put_u32(body, row);
  put_u32(body, service);
  put_i64(body, hour_first);
  put_i64(body, hour_last);
  return body;
}

std::vector<std::uint8_t> make_cluster_body(std::uint32_t row) {
  std::vector<std::uint8_t> body;
  put_u32(body, row);
  return body;
}

std::vector<std::uint8_t> make_shap_body(std::uint32_t cluster,
                                         std::uint32_t max_services) {
  std::vector<std::uint8_t> body;
  put_u32(body, cluster);
  put_u32(body, max_services);
  return body;
}

std::vector<std::uint8_t> make_coverage_body(std::uint32_t row) {
  std::vector<std::uint8_t> body;
  put_u32(body, row);
  return body;
}

}  // namespace icn::serve
