#include "serve/client.h"

#include <cstring>

#include "util/error.h"

namespace icn::serve {

QueryClient::QueryClient(std::uint16_t port)
    : fd_(icn::util::connect_loopback(port)) {}

void QueryClient::read_frame() {
  std::uint8_t header[kFrameHeaderSize];
  if (!icn::util::read_exact(fd_.get(), std::span<std::uint8_t>(header))) {
    throw icn::util::IoError("serve client: connection closed by server");
  }
  std::uint32_t len = 0;
  std::memcpy(&len, header, sizeof(len));
  reply_payload_.resize(len);
  if (len > 0 &&
      !icn::util::read_exact(fd_.get(), std::span<std::uint8_t>(
                                            reply_payload_.data(), len))) {
    throw icn::util::IoError(
        "serve client: connection closed mid-reply (expected " +
        std::to_string(len) + " payload bytes)");
  }
}

Reply QueryClient::call(Opcode opcode, std::span<const std::uint8_t> body,
                        std::uint32_t request_id) {
  request_scratch_ = build_request(request_id, opcode, body);
  icn::util::write_all(fd_.get(), request_scratch_);
  read_frame();
  const std::optional<Reply> reply = decode_reply(reply_payload_);
  if (!reply) {
    throw icn::util::IoError("serve client: malformed reply frame (" +
                             std::to_string(reply_payload_.size()) +
                             " payload bytes)");
  }
  return *reply;
}

std::vector<std::uint8_t> QueryClient::call_raw(
    std::span<const std::uint8_t> frame) {
  icn::util::write_all(fd_.get(), frame);
  read_frame();
  return reply_payload_;
}

std::vector<std::uint8_t> make_slice_body(std::uint32_t row,
                                          std::uint32_t service,
                                          std::int64_t hour_first,
                                          std::int64_t hour_last) {
  std::vector<std::uint8_t> body;
  put_u32(body, row);
  put_u32(body, service);
  put_i64(body, hour_first);
  put_i64(body, hour_last);
  return body;
}

std::vector<std::uint8_t> make_cluster_body(std::uint32_t row) {
  std::vector<std::uint8_t> body;
  put_u32(body, row);
  return body;
}

std::vector<std::uint8_t> make_shap_body(std::uint32_t cluster,
                                         std::uint32_t max_services) {
  std::vector<std::uint8_t> body;
  put_u32(body, cluster);
  put_u32(body, max_services);
  return body;
}

std::vector<std::uint8_t> make_coverage_body(std::uint32_t row) {
  std::vector<std::uint8_t> body;
  put_u32(body, row);
  return body;
}

}  // namespace icn::serve
