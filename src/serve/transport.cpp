#include "serve/transport.h"

namespace icn::serve {

std::ptrdiff_t SocketTransport::read_some(std::span<std::uint8_t> buf,
                                          std::uint64_t /*tick*/) {
  return icn::util::read_some(fd_.get(), buf);
}

std::ptrdiff_t SocketTransport::write_some(std::span<const std::uint8_t> buf,
                                           std::uint64_t /*tick*/) {
  return icn::util::write_some(fd_.get(), buf);
}

}  // namespace icn::serve
