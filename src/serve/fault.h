// Seeded network-fault injection for the serve layer (DESIGN.md §9.7).
//
// The ingest plant already survives a seeded fault::FaultPlan; this is the
// same philosophy pointed at the wire. A ServeFaultPlan turns one 64-bit
// seed into a complete deterministic schedule of transport hostility over
// (connection, tick) cells — partial reads, short writes, stall windows,
// per-byte corruption, abrupt resets — with no wall-clock time or global RNG
// anywhere: every decision is a pure function of
// derive_seed(seed, conn, key, fault-tag), so equal seeds face byte-identical
// hostility and the injected-event ledger replays verbatim.
//
// FaultyTransport applies the plan between Session and the socket. Partial
// reads and short writes are *per-tick byte budgets*, not per-call caps: the
// session's read loop retries until would-block, so a cap on one call would
// throttle nothing — a budget makes the remainder of the tick return 0, which
// is exactly how a congested link presents to a non-blocking socket.
//
// Corruption is keyed by (conn, absolute received-byte offset), not by tick:
// a test that knows the bytes it sent can recompute the corrupted stream
// offline and shadow-replay it through try_parse_frame + dispatch_request,
// keeping the byte-exactness oracle intact even for damaged streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/transport.h"

namespace icn::serve {

enum class ServeFaultKind : std::uint8_t {
  kPartialRead,  ///< Tick rx budget a bytes; this read delivered b.
  kShortWrite,   ///< Tick tx budget a bytes; this write accepted b.
  kStall,        ///< Connection frozen this tick (both directions).
  kCorrupt,      ///< Received byte at stream offset a XOR'd with mask b.
  kReset,        ///< Connection killed a ticks after its first I/O.
};

[[nodiscard]] std::string to_string(ServeFaultKind kind);

/// One injected transport fault. `a`/`b` are kind-specific (see
/// ServeFaultKind).
struct ServeFaultEvent {
  std::uint64_t conn = 0;
  std::uint64_t tick = 0;
  ServeFaultKind kind{};
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool operator==(const ServeFaultEvent&) const = default;
};

[[nodiscard]] std::string to_string(const ServeFaultEvent& event);

/// Injection-order audit trail; equal-seed runs must produce equal ledgers.
using ServeFaultLedger = std::vector<ServeFaultEvent>;

/// Human-readable, line-per-event dump of a ledger.
[[nodiscard]] std::string to_text(const ServeFaultLedger& ledger);

struct ServeFaultPlanParams {
  std::uint64_t seed = 1;

  /// P[a (conn, tick) cell caps received bytes at a budget].
  double partial_read_rate = 0.0;
  std::size_t partial_read_max = 64;  ///< Budget in [1, max] bytes.

  /// P[a (conn, tick) cell caps written bytes at a budget].
  double short_write_rate = 0.0;
  std::size_t short_write_max = 64;  ///< Budget in [1, max] bytes.

  /// P[a stall window starts at a given (conn, tick)]. A stalled tick moves
  /// no bytes in either direction.
  double stall_rate = 0.0;
  std::uint64_t stall_max_ticks = 3;  ///< Window length in [1, max].

  /// P[one received byte is corrupted] — per byte, keyed by stream offset.
  double corrupt_rate = 0.0;

  /// P[the connection is reset]. A planned reset fires on the first I/O
  /// attempt at least `lifetime` ticks after the connection's first I/O,
  /// lifetime in [reset_min_ticks, reset_max_ticks].
  double reset_rate = 0.0;
  std::uint64_t reset_min_ticks = 1;
  std::uint64_t reset_max_ticks = 64;
};

/// The deterministic transport-fault schedule. Every query is pure: calling
/// it never changes what any other query returns, so shadow replays and the
/// live transport always agree.
class ServeFaultPlan {
 public:
  /// rx_budget / tx_budget value meaning "no cap this tick".
  static constexpr std::size_t kUnlimited =
      std::numeric_limits<std::size_t>::max();

  explicit ServeFaultPlan(const ServeFaultPlanParams& params);

  [[nodiscard]] const ServeFaultPlanParams& params() const { return params_; }

  /// Received-byte budget for (conn, tick): 0 when stalled, kUnlimited when
  /// no fault, else a budget in [1, partial_read_max].
  [[nodiscard]] std::size_t rx_budget(std::uint64_t conn,
                                      std::uint64_t tick) const;
  /// Written-byte budget, same shape as rx_budget.
  [[nodiscard]] std::size_t tx_budget(std::uint64_t conn,
                                      std::uint64_t tick) const;

  /// Length of the stall window starting exactly at (conn, tick), or 0.
  [[nodiscard]] std::uint64_t stall_starting_at(std::uint64_t conn,
                                                std::uint64_t tick) const;
  /// True when (conn, tick) lies inside any stall window.
  [[nodiscard]] bool stalled(std::uint64_t conn, std::uint64_t tick) const;

  /// XOR mask for the received byte at absolute stream offset `offset` of
  /// `conn`, or nullopt when the byte passes clean. Single-bit masks only.
  [[nodiscard]] std::optional<std::uint8_t> corrupt_mask(
      std::uint64_t conn, std::uint64_t offset) const;

  /// Planned lifetime of `conn` in ticks counted from its first I/O, or
  /// nullopt when the connection is never reset.
  [[nodiscard]] std::optional<std::uint64_t> reset_after(
      std::uint64_t conn) const;

 private:
  ServeFaultPlanParams params_;
};

/// Applies a ServeFaultPlan between a Session and its real transport.
/// Every injected event is appended to `ledger` (when non-null) in injection
/// order — the replayable audit trail equal-seed runs compare verbatim.
class FaultyTransport final : public Transport {
 public:
  /// `plan` (and `ledger`, when given) must outlive the transport.
  FaultyTransport(std::unique_ptr<Transport> inner, const ServeFaultPlan* plan,
                  std::uint64_t conn, ServeFaultLedger* ledger);

  std::ptrdiff_t read_some(std::span<std::uint8_t> buf,
                           std::uint64_t tick) override;
  std::ptrdiff_t write_some(std::span<const std::uint8_t> buf,
                            std::uint64_t tick) override;
  void close() override { inner_->close(); }
  [[nodiscard]] int fd() const override { return inner_->fd(); }

  /// Received bytes delivered so far (the corruption stream offset).
  [[nodiscard]] std::uint64_t rx_offset() const { return rx_offset_; }

 private:
  /// Returns true when the connection is (now) dead; logs the reset once.
  bool check_reset(std::uint64_t tick);
  /// Rolls the per-tick budget accounting forward; logs a stall once per
  /// stalled tick that sees an I/O attempt.
  void roll_tick(std::uint64_t tick);
  void log(ServeFaultKind kind, std::uint64_t tick, std::uint64_t a,
           std::uint64_t b);

  std::unique_ptr<Transport> inner_;
  const ServeFaultPlan* plan_;
  std::uint64_t conn_;
  ServeFaultLedger* ledger_;  ///< May be null (bench mode: no audit trail).

  std::optional<std::uint64_t> birth_tick_;  ///< Tick of the first I/O.
  bool reset_fired_ = false;
  std::uint64_t cur_tick_ = 0;
  bool tick_seen_ = false;
  std::size_t rx_used_ = 0;  ///< Bytes of the current tick's rx budget spent.
  std::size_t tx_used_ = 0;
  bool stall_logged_ = false;    ///< One kStall event per stalled tick.
  bool partial_logged_ = false;  ///< One kPartialRead event per capped tick.
  bool short_logged_ = false;    ///< One kShortWrite event per capped tick.
  std::uint64_t rx_offset_ = 0;
};

}  // namespace icn::serve
