#include "serve/command_table.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>

namespace icn::serve {
namespace {

// --- kPing ---------------------------------------------------------------

Status run_ping(const ServedSnapshot&, BodyReader&,
                std::vector<std::uint8_t>& body) {
  put_u32(body, kProtocolVersion);
  return Status::kOk;
}

// --- kInfo ---------------------------------------------------------------

Status run_info(const ServedSnapshot& snap, BodyReader&,
                std::vector<std::uint8_t>& body) {
  put_u32(body, static_cast<std::uint32_t>(snap.num_antennas()));
  put_u32(body, static_cast<std::uint32_t>(snap.num_services()));
  put_i64(body, snap.num_hours());
  put_u32(body, static_cast<std::uint32_t>(snap.snapshot().sections().size()));
  put_u32(body, static_cast<std::uint32_t>(snap.windows().size()));
  put_u32(body, snap.analytics() ? snap.analytics()->num_clusters : 0);
  put_u8(body, snap.matrix() ? 1 : 0);
  put_u8(body, snap.coverage() ? 1 : 0);
  put_u8(body, snap.quarantine() ? 1 : 0);
  put_u8(body, snap.analytics() ? 1 : 0);
  return Status::kOk;
}

// --- kSlice --------------------------------------------------------------

Status run_slice(const ServedSnapshot& snap, BodyReader& in,
                 std::vector<std::uint8_t>& body) {
  const auto row = in.take_u32();
  const auto service = in.take_u32();
  const auto hour_first = in.take_i64();
  const auto hour_last = in.take_i64();
  if (!in.done()) return Status::kBadBody;

  if (*row >= snap.num_antennas()) return Status::kOutOfRange;
  if (*service != kAllServices && *service >= snap.num_services()) {
    return Status::kOutOfRange;
  }
  const std::size_t services =
      *service == kAllServices ? snap.num_services() : 1;

  if (*hour_first == kTotalsHours && *hour_last == kTotalsHours) {
    // Totals mode: one row of the kMatrix tensor, straight off the mapping.
    // Bounds come from the matrix's *own* header dims, not the kStreamMeta
    // shape the row/service arguments were validated against: each section
    // is only self-validated, so a snapshot can carry a smaller matrix than
    // its meta claims. Cells outside the matrix read as 0.0, mirroring the
    // short-window fallback below.
    if (!snap.matrix()) return Status::kNoSection;
    const auto& m = *snap.matrix();
    put_u32(body, 0);  // count_hours == 0 marks a totals reply.
    put_u32(body, static_cast<std::uint32_t>(services));
    const auto at = body.size();
    body.resize(at + services * 8);  // Value-initialized: zero fill.
    if (*row < m.rows) {
      const double* src = m.values.data() + *row * m.cols;
      if (*service == kAllServices) {
        std::memcpy(body.data() + at, src,
                    std::min<std::size_t>(services, m.cols) * 8);
      } else if (*service < m.cols) {
        std::memcpy(body.data() + at, src + *service, 8);
      }
    }
    return Status::kOk;
  }

  if (*hour_first < 0 || *hour_last < *hour_first) return Status::kBadBody;
  if (snap.num_hours() <= 0 || snap.windows().empty()) {
    return Status::kNoSection;
  }
  if (*hour_last > snap.num_hours()) return Status::kOutOfRange;
  const auto hours = static_cast<std::size_t>(*hour_last - *hour_first);
  put_u32(body, static_cast<std::uint32_t>(hours));
  put_u32(body, static_cast<std::uint32_t>(services));
  // Hours the snapshot never closed a window for read as 0.0 — the coverage
  // opcode is the honest channel for "absent vs zero traffic".
  for (std::int64_t h = *hour_first; h < *hour_last; ++h) {
    const std::ptrdiff_t w = snap.window_for_hour(h);
    const auto at = body.size();
    body.resize(at + services * 8);
    if (w < 0) {
      std::memset(body.data() + at, 0, services * 8);
      continue;
    }
    const auto& cells = snap.windows()[static_cast<std::size_t>(w)].cells;
    const std::size_t base = *row * snap.num_services();
    if (base + snap.num_services() > cells.size()) {
      // A window sized for fewer antennas than the study roster (e.g. a
      // single-probe checkpoint served directly): rows past it read as 0.
      std::memset(body.data() + at, 0, services * 8);
      continue;
    }
    if (*service == kAllServices) {
      std::memcpy(body.data() + at, cells.data() + base, services * 8);
    } else {
      std::memcpy(body.data() + at, cells.data() + base + *service, 8);
    }
  }
  return Status::kOk;
}

// --- kCluster ------------------------------------------------------------

Status run_cluster(const ServedSnapshot& snap, BodyReader& in,
                   std::vector<std::uint8_t>& body) {
  const auto row = in.take_u32();
  if (!in.done()) return Status::kBadBody;
  if (!snap.analytics()) return Status::kNoSection;
  if (*row >= snap.num_antennas()) return Status::kOutOfRange;
  put_i32(body, snap.label_of_row(*row));
  return Status::kOk;
}

// --- kShap ---------------------------------------------------------------

Status run_shap(const ServedSnapshot& snap, BodyReader& in,
                std::vector<std::uint8_t>& body) {
  const auto cluster = in.take_u32();
  const auto max_services = in.take_u32();
  if (!in.done()) return Status::kBadBody;
  if (!snap.analytics()) return Status::kNoSection;
  const auto& analytics = *snap.analytics();
  if (*cluster >= analytics.num_clusters) return Status::kOutOfRange;
  const auto& ranked = analytics.shap[*cluster];
  const std::size_t count =
      *max_services == 0 ? ranked.size()
                         : std::min<std::size_t>(*max_services, ranked.size());
  put_u32(body, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    put_u32(body, ranked[i].service);
    put_f64(body, ranked[i].mean_abs_shap);
    put_f64(body, ranked[i].value_shap_correlation);
    put_f64(body, ranked[i].mean_value_in_cluster);
  }
  return Status::kOk;
}

// --- kCoverage -----------------------------------------------------------

Status run_coverage(const ServedSnapshot& snap, BodyReader& in,
                    std::vector<std::uint8_t>& body) {
  const auto row = in.take_u32();
  if (!in.done()) return Status::kBadBody;

  const std::size_t rows = snap.num_antennas();
  const std::int64_t hours = snap.num_hours();
  const auto total_cells =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(hours);

  if (*row == kAllRows) {
    // Summary. A snapshot without a kCoverage section is fully covered by
    // construction (the writer only seals one when coverage is incomplete).
    std::uint64_t covered = total_cells;
    if (snap.coverage()) {
      const auto& cov = *snap.coverage();
      covered = 0;
      for (const std::uint8_t bit : cov.covered) covered += bit;
      if (cov.rows == 1 && rows > 1) {
        // Probe-level bitmap: every antenna shares the hour coverage.
        covered *= rows;
      }
      // A section carrying more hours than the meta claims could otherwise
      // report covered > total.
      covered = std::min(covered, total_cells);
    }
    put_u32(body, static_cast<std::uint32_t>(rows));
    put_i64(body, hours);
    put_u64(body, covered);
    put_u64(body, total_cells);
    return Status::kOk;
  }

  if (*row >= rows) return Status::kOutOfRange;
  double fraction = 1.0;
  std::vector<std::pair<std::int64_t, std::int64_t>> gaps;
  if (snap.coverage() && hours > 0) {
    const auto& cov = *snap.coverage();
    const std::size_t cov_row = cov.rows == 1 ? 0 : *row;
    if (cov_row < cov.rows && cov.num_hours > 0) {
      // Stride and scan bound come from the section's own header, not the
      // kStreamMeta hour count: the two are each only self-validated and can
      // disagree, and a meta-derived stride would walk past the bitmap.
      // Meta hours beyond the bitmap read as uncovered.
      const std::uint8_t* bits =
          cov.covered.data() +
          cov_row * static_cast<std::size_t>(cov.num_hours);
      const std::int64_t scan = std::min<std::int64_t>(cov.num_hours, hours);
      std::int64_t covered = 0;
      std::int64_t gap_start = -1;
      for (std::int64_t h = 0; h < scan; ++h) {
        if (bits[h] != 0) {
          covered += 1;
          if (gap_start >= 0) {
            gaps.emplace_back(gap_start, h);
            gap_start = -1;
          }
        } else if (gap_start < 0) {
          gap_start = h;
        }
      }
      if (gap_start < 0 && scan < hours) gap_start = scan;
      if (gap_start >= 0) gaps.emplace_back(gap_start, hours);
      fraction = static_cast<double>(covered) / static_cast<double>(hours);
    }
  }
  put_f64(body, fraction);
  put_u32(body, static_cast<std::uint32_t>(gaps.size()));
  for (const auto& [first, last] : gaps) {
    put_i64(body, first);
    put_i64(body, last);
  }
  return Status::kOk;
}

// --- kQuarantine ---------------------------------------------------------

Status run_quarantine(const ServedSnapshot& snap, BodyReader&,
                      std::vector<std::uint8_t>& body) {
  // No section is a valid answer — a clean study quarantined nothing.
  if (!snap.quarantine()) {
    put_u32(body, 0);
    put_u64(body, 0);
    put_u64(body, 0);
    return Status::kOk;
  }
  const auto& q = *snap.quarantine();
  const auto hours = static_cast<std::size_t>(q.num_hours);
  std::uint64_t rejected = 0, repaired = 0;
  for (const std::uint32_t v : q.rejected) rejected += v;
  for (const std::uint32_t v : q.repaired) repaired += v;
  put_u32(body, static_cast<std::uint32_t>(hours));
  put_u64(body, rejected);
  put_u64(body, repaired);
  const auto at = body.size();
  body.resize(at + hours * 8);
  std::memcpy(body.data() + at, q.rejected.data(), hours * 4);
  std::memcpy(body.data() + at + hours * 4, q.repaired.data(), hours * 4);
  return Status::kOk;
}

// --- kRepin --------------------------------------------------------------

Status run_repin(const ServedSnapshot&, BodyReader&,
                 std::vector<std::uint8_t>&) {
  // The pin swap itself happens in the session (it owns the pin); at the
  // dispatch layer a repin is just an empty kOk reply stamped with the
  // generation it ends up serving.
  return Status::kOk;
}

// --- kHealth -------------------------------------------------------------

Status run_health(const ServedSnapshot&, BodyReader&,
                  std::vector<std::uint8_t>& body) {
  // Dispatch is a pure function of (snapshot, request); live reactor
  // counters are session state, so the deterministic path answers with a
  // zeroed HealthInfo and Session::serve_frame overrides it with the real
  // numbers. kHealth is therefore excluded from the byte-exactness oracle.
  append_health_body(body, HealthInfo{});
  return Status::kOk;
}

constexpr std::array<CommandHandler, 9> kCommandTable{{
    {Opcode::kPing, "ping", 0, run_ping},
    {Opcode::kInfo, "info", 0, run_info},
    {Opcode::kSlice, "slice", 24, run_slice},
    {Opcode::kCluster, "cluster", 4, run_cluster},
    {Opcode::kShap, "shap", 8, run_shap},
    {Opcode::kCoverage, "coverage", 4, run_coverage},
    {Opcode::kQuarantine, "quarantine", 0, run_quarantine},
    {Opcode::kRepin, "repin", 0, run_repin},
    {Opcode::kHealth, "health", 0, run_health},
}};

/// Worst-case kOk body bytes a handler may append, so the dispatcher can
/// reject an over-large answer *before* building it.
std::size_t reply_body_bound(const ServedSnapshot& snap, Opcode opcode,
                             std::span<const std::uint8_t> request_body) {
  switch (opcode) {
    case Opcode::kSlice: {
      BodyReader in(request_body);
      (void)in.take_u32();
      const auto service = in.take_u32();
      const auto hour_first = in.take_i64();
      const auto hour_last = in.take_i64();
      if (!in.done()) return 0;  // Will fail kBadBody anyway.
      const std::size_t services =
          (service && *service == kAllServices) ? snap.num_services() : 1;
      // Only a non-negative, ordered range sizes a multi-hour body; that
      // keeps the subtraction away from signed overflow on wire-controlled
      // extremes (e.g. hour_first == INT64_MIN). Everything else — totals
      // mode, reversed or negative ranges the handler rejects — bounds to
      // one hour's worth.
      std::size_t hours = 1;
      if (hour_first && hour_last && *hour_first >= 0 &&
          *hour_last >= *hour_first) {
        hours = static_cast<std::size_t>(*hour_last) -
                static_cast<std::size_t>(*hour_first);
        if (hours == 0) hours = 1;
      }
      // Saturating product: a wrapped size would sneak a huge reply past
      // the oversized pre-check.
      constexpr std::size_t kSaturated =
          std::numeric_limits<std::size_t>::max();
      std::size_t bytes = hours;
      for (const std::size_t factor : {services, std::size_t{8}}) {
        if (factor != 0 && bytes > kSaturated / factor) return kSaturated;
        bytes *= factor;
      }
      return bytes >= kSaturated - 8 ? kSaturated : 8 + bytes;
    }
    case Opcode::kQuarantine:
      return 20 + (snap.quarantine()
                       ? static_cast<std::size_t>(
                             snap.quarantine()->num_hours) *
                             8
                       : 0);
    case Opcode::kCoverage:
      // fraction + gap count + worst case ceil(hours / 2) gaps of 16 bytes
      // (an alternating bitmap): 12 + 8 * hours + 8, rounded up.
      return 20 + static_cast<std::size_t>(std::max<std::int64_t>(
                      0, snap.num_hours())) *
                      8;
    case Opcode::kShap: {
      std::size_t max_rank = 0;
      if (snap.analytics()) {
        for (const auto& ranked : snap.analytics()->shap) {
          max_rank = std::max(max_rank, ranked.size());
        }
      }
      return 4 + max_rank * 28;
    }
    case Opcode::kHealth:
      return kHealthBodySize;
    default:
      return 64;  // Fixed-size replies.
  }
}

}  // namespace

std::span<const CommandHandler> command_table() { return kCommandTable; }

void dispatch_request(const ServedSnapshot* snap,
                      std::span<const std::uint8_t> payload,
                      std::vector<std::uint8_t>& out,
                      std::size_t max_reply_frame) {
  const std::uint64_t generation = snap ? snap->generation() : 0;
  const DecodedRequest decoded = decode_request(payload);
  if (!decoded.request) {
    append_error_reply(out, decoded.request_id, Opcode::kPing, decoded.status,
                       generation, to_string(decoded.status));
    return;
  }
  const Request& req = *decoded.request;
  const auto index = static_cast<std::size_t>(req.opcode) -
                     static_cast<std::size_t>(Opcode::kPing);
  const CommandHandler& handler = kCommandTable[index];

  if (handler.body_size >= 0 &&
      req.body.size() != static_cast<std::size_t>(handler.body_size)) {
    append_error_reply(out, req.request_id, req.opcode, Status::kBadBody,
                       generation,
                       std::string(handler.name) + ": bad body size");
    return;
  }
  if (snap == nullptr) {
    if (req.opcode == Opcode::kPing || req.opcode == Opcode::kRepin ||
        req.opcode == Opcode::kHealth) {
      std::vector<std::uint8_t> body;
      if (req.opcode == Opcode::kPing) put_u32(body, kProtocolVersion);
      if (req.opcode == Opcode::kHealth) append_health_body(body, HealthInfo{});
      append_reply(out, req.request_id, req.opcode, Status::kOk, 0, body);
    } else {
      append_error_reply(out, req.request_id, req.opcode, Status::kNoSnapshot,
                         0, to_string(Status::kNoSnapshot));
    }
    return;
  }

  // Subtract, never add: a saturated bound plus the header would wrap.
  if (reply_body_bound(*snap, req.opcode, req.body) >
      max_reply_frame - std::min(kReplyHeaderSize, max_reply_frame)) {
    append_error_reply(out, req.request_id, req.opcode, Status::kOversized,
                       generation,
                       std::string(handler.name) +
                           ": reply would exceed the max frame size");
    return;
  }

  std::vector<std::uint8_t> body;
  BodyReader in(req.body);
  const Status status = handler.run(*snap, in, body);
  if (status == Status::kOk) {
    append_reply(out, req.request_id, req.opcode, Status::kOk, generation,
                 body);
  } else {
    append_error_reply(out, req.request_id, req.opcode, status, generation,
                       std::string(handler.name) + ": " + to_string(status));
  }
}

std::vector<std::uint8_t> deterministic_reply(
    const ServedSnapshot* snap, std::span<const std::uint8_t> payload,
    std::size_t max_reply_frame) {
  std::vector<std::uint8_t> out;
  dispatch_request(snap, payload, out, max_reply_frame);
  return out;
}

}  // namespace icn::serve
