// Blocking query client for the snapshot server (DESIGN.md §9.6).
//
// QueryClient is the convenience side of the wire protocol: it connects to a
// loopback port, frames requests, and blocks for the matching reply. It is
// deliberately synchronous — the CLI, the examples, and the byte-exactness
// tests all want "send one request, get one reply" semantics; concurrency in
// tests comes from running many clients on many threads.
//
// Resilience: every failure mode is a typed ClientError (never a hang or a
// garbage decode), connects and reads honor deadlines, and because every
// query opcode is an idempotent read, call_idempotent() may safely tear the
// connection down and re-send after a transport fault — with capped
// exponential backoff and deterministic jitter, so retry storms from many
// clients de-synchronize identically on every run of a seeded test.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "util/error.h"
#include "util/socket.h"

namespace icn::serve {

/// What exactly went wrong at the transport layer. Query-level errors are
/// NOT ClientErrors — they come back as typed Status values in the reply.
enum class ClientErrorKind : std::uint8_t {
  kConnectFailed,   ///< connect() refused / failed with an errno.
  kConnectTimeout,  ///< No handshake within connect_timeout_ms.
  kWriteFailed,     ///< Request bytes could not be sent (peer gone).
  kReadTimeout,     ///< No reply bytes within read_timeout_ms.
  kClosedByServer,  ///< EOF before or inside a reply frame boundary.
  kTruncatedReply,  ///< EOF inside a declared reply payload.
  kMalformedReply,  ///< Reply header undecodable (a server bug).
};

[[nodiscard]] const char* to_string(ClientErrorKind kind);

class ClientError : public icn::util::IoError {
 public:
  ClientError(ClientErrorKind kind, const std::string& what_arg)
      : icn::util::IoError(what_arg), kind_(kind) {}
  [[nodiscard]] ClientErrorKind kind() const { return kind_; }

 private:
  ClientErrorKind kind_;
};

/// Client knobs. The defaults suit tests and tools on loopback; 0 disables
/// a timeout (wait forever).
struct ClientOptions {
  int connect_timeout_ms = 5000;
  int read_timeout_ms = 5000;
  /// Total connect/call attempts for the retrying paths (>= 1).
  std::uint32_t max_attempts = 1;
  std::uint64_t backoff_base_ms = 5;
  std::uint64_t backoff_max_ms = 500;
  /// Seed of the deterministic backoff jitter; give each client its own.
  std::uint64_t jitter_seed = 1;
};

/// Backoff before retry `attempt` (0-based): capped exponential with
/// deterministic jitter in [raw/2, raw), raw = min(max, base << attempt).
/// Pure function of (options, attempt) — seeded tests replay it exactly.
[[nodiscard]] std::uint64_t backoff_delay_ms(const ClientOptions& options,
                                             std::uint32_t attempt);

class QueryClient {
 public:
  /// Connects to 127.0.0.1:port; throws ClientError on failure (after
  /// options.max_attempts tries with backoff in between).
  explicit QueryClient(std::uint16_t port,
                       const ClientOptions& options = ClientOptions{});

  /// Sends one request and blocks for its reply. Returns the decoded reply
  /// (its body span points into last_reply_payload(), valid until the next
  /// call); throws ClientError if the transport fails or the reply frame is
  /// malformed (a server bug, not a query error — query errors come back as
  /// typed Status values).
  Reply call(Opcode opcode, std::span<const std::uint8_t> body,
             std::uint32_t request_id);

  /// Like call(), but on a transport fault tears the connection down,
  /// reconnects with backoff, and re-sends — safe because every query
  /// opcode is an idempotent read. Throws the last ClientError once
  /// options.max_attempts attempts are spent.
  Reply call_idempotent(Opcode opcode, std::span<const std::uint8_t> body,
                        std::uint32_t request_id);

  /// Raw variant: sends pre-built frame bytes and returns the raw reply
  /// payload (no decoding). Used by the byte-exactness and fuzz tests.
  std::vector<std::uint8_t> call_raw(std::span<const std::uint8_t> frame);

  /// Last reply's raw payload bytes (valid until the next call).
  [[nodiscard]] const std::vector<std::uint8_t>& last_reply_payload() const {
    return reply_payload_;
  }

  /// Successful reconnects performed by call_idempotent().
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }

  [[nodiscard]] int fd() const { return fd_.get(); }

 private:
  /// One connect attempt per backoff round; throws ClientError when all
  /// options_.max_attempts fail.
  void connect_with_retries(std::uint16_t port);
  /// Reads exactly buf.size() bytes under the read deadline.
  /// `mid_frame` selects the error kind EOF maps to.
  void read_exact_deadline(std::span<std::uint8_t> buf, bool mid_frame);
  /// Reads one length-prefixed frame into reply_payload_.
  void read_frame();

  icn::util::Fd fd_;
  std::uint16_t port_ = 0;
  ClientOptions options_;
  std::uint64_t reconnects_ = 0;
  std::vector<std::uint8_t> request_scratch_;
  std::vector<std::uint8_t> reply_payload_;
};

/// Body builders for the query opcodes (shared by CLI / tests / bench).
std::vector<std::uint8_t> make_slice_body(std::uint32_t row,
                                          std::uint32_t service,
                                          std::int64_t hour_first,
                                          std::int64_t hour_last);
std::vector<std::uint8_t> make_cluster_body(std::uint32_t row);
std::vector<std::uint8_t> make_shap_body(std::uint32_t cluster,
                                         std::uint32_t max_services);
std::vector<std::uint8_t> make_coverage_body(std::uint32_t row);

}  // namespace icn::serve
