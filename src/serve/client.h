// Blocking query client for the snapshot server (DESIGN.md §9.6).
//
// QueryClient is the convenience side of the wire protocol: it connects to a
// loopback port, frames requests, and blocks for the matching reply. It is
// deliberately synchronous — the CLI, the examples, and the byte-exactness
// tests all want "send one request, get one reply" semantics; concurrency in
// tests comes from running many clients on many threads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serve/protocol.h"
#include "util/socket.h"

namespace icn::serve {

class QueryClient {
 public:
  /// Connects to 127.0.0.1:port; throws icn::util::IoError on failure.
  explicit QueryClient(std::uint16_t port);

  /// Sends one request and blocks for its reply. Returns the decoded reply
  /// (its body span points into last_reply_payload(), valid until the next
  /// call); throws IoError if the server closes the connection or the reply
  /// frame is malformed (a server bug, not a query error — query errors come
  /// back as typed Status values).
  Reply call(Opcode opcode, std::span<const std::uint8_t> body,
             std::uint32_t request_id);

  /// Raw variant: sends pre-built frame bytes and returns the raw reply
  /// payload (no decoding). Used by the byte-exactness and fuzz tests.
  std::vector<std::uint8_t> call_raw(std::span<const std::uint8_t> frame);

  /// Last reply's raw payload bytes (valid until the next call).
  [[nodiscard]] const std::vector<std::uint8_t>& last_reply_payload() const {
    return reply_payload_;
  }

  [[nodiscard]] int fd() const { return fd_.get(); }

 private:
  /// Reads one length-prefixed frame into reply_payload_; throws on EOF.
  void read_frame();

  icn::util::Fd fd_;
  std::vector<std::uint8_t> request_scratch_;
  std::vector<std::uint8_t> reply_payload_;
};

/// Body builders for the query opcodes (shared by CLI / tests / bench).
std::vector<std::uint8_t> make_slice_body(std::uint32_t row,
                                          std::uint32_t service,
                                          std::int64_t hour_first,
                                          std::int64_t hour_last);
std::vector<std::uint8_t> make_cluster_body(std::uint32_t row);
std::vector<std::uint8_t> make_shap_body(std::uint32_t cluster,
                                         std::uint32_t max_services);
std::vector<std::uint8_t> make_coverage_body(std::uint32_t row);

}  // namespace icn::serve
