// Behavioural archetypes: the generative counterpart of the paper's nine
// clusters (Sec. 4.2 / 5.1.2 / 5.2.2).
//
// Each archetype is a vector of per-service utilization multipliers applied
// on top of the global popularity mix; the multipliers encode exactly the
// over-/under-utilization signatures the paper's SHAP analysis surfaces:
//
//   orange group (0, 4, 7)  — commuter profiles: music + navigation heavy;
//                             0 also entertainment-heavy, 4 utilitarian,
//                             7 (provincial metros) under-uses Mappy /
//                             transport websites;
//   green group  (5, 6, 8)  — event venues: 5 near-uniform low-intensity use,
//                             6/8 Snapchat + Twitter + sports sites, 8 with a
//                             broader app diversity (Giphy, WhatsApp, Canal+);
//   red group    (1, 2, 3)  — 1 general use (streaming, Waze, mail),
//                             2 retail/hospitality (Play Store, shopping),
//                             3 workspaces (Teams, LinkedIn, mail).
//
// The archetype mix per (environment, city) reproduces the correspondences of
// Figs. 6-8, e.g. metros/trains -> orange only, >70% of cluster 3 being
// workspaces, airports/tunnels -> cluster 1, hospitals/hotels -> cluster 2.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "net/city.h"
#include "net/environment.h"
#include "traffic/services.h"

namespace icn::traffic {

/// The dendrogram branch colour groups of Fig. 3.
enum class ClusterGroup : int { kOrange = 0, kGreen = 1, kRed = 2 };

/// Number of behavioural archetypes (the paper's k = 9).
inline constexpr std::size_t kNumArchetypes = 9;

/// Static description of one archetype.
struct Archetype {
  int id = 0;                  ///< Paper cluster number, 0..8.
  std::string_view label;      ///< Short description.
  ClusterGroup group = ClusterGroup::kRed;
};

/// Group colour name ("orange"/"green"/"red").
[[nodiscard]] const char* group_name(ClusterGroup g);

/// Info for archetype id in [0, 9).
[[nodiscard]] const Archetype& archetype_info(int id);

/// Dendrogram group of archetype id.
[[nodiscard]] ClusterGroup archetype_group(int id);

/// Per-service multipliers and expected service mixes of all 9 archetypes.
class ArchetypeModel {
 public:
  /// Builds the multiplier table against the given catalogue.
  explicit ArchetypeModel(const ServiceCatalog& catalog);

  /// Multiplier of each service for the archetype (size M).
  [[nodiscard]] std::span<const double> multipliers(int archetype) const;

  /// Noise-free expected service share vector (popularity x multiplier,
  /// normalized to sum 1; size M).
  [[nodiscard]] std::span<const double> expected_shares(int archetype) const;

  /// Distribution over archetypes for an antenna in the given environment
  /// and city (weights sum to 1). This is the generative inverse of the
  /// cluster -> environment flows of Fig. 6.
  [[nodiscard]] static std::array<double, kNumArchetypes> archetype_mix(
      net::Environment env, net::City city);

  [[nodiscard]] const ServiceCatalog& catalog() const { return *catalog_; }

 private:
  const ServiceCatalog* catalog_;
  std::vector<std::vector<double>> multipliers_;
  std::vector<std::vector<double>> expected_shares_;
};

}  // namespace icn::traffic
