// Per-antenna service-demand model: draws, for every indoor antenna, a
// behavioural archetype (conditioned on environment and city), a two-month
// total traffic volume (heavy-tailed, environment-dependent), and a noisy
// per-service share vector around the archetype's expected mix.
//
// The resulting N x M matrix is the synthetic stand-in for the paper's
// aggregated measurement matrix T (Sec. 4.1): per-service downlink+uplink
// megabytes per antenna over 21 Nov 2022 -> 24 Jan 2023.
//
// Outdoor macro antennas get a separate, deliberately homogeneous
// "general-purpose" mix (Sec. 5.3's premise), so the indoor diversity is a
// property of the indoor population, not of the generator plumbing.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/matrix.h"
#include "net/topology.h"
#include "traffic/archetypes.h"
#include "traffic/services.h"

namespace icn::traffic {

/// Generation parameters of the demand model.
struct DemandParams {
  std::uint64_t seed = 99;
  /// Dirichlet concentration of per-antenna share noise around the archetype
  /// mix; higher = antennas of an archetype look more alike.
  double concentration = 2200.0;
  /// Same for outdoor antennas (outdoor BSs serve broad populations, so
  /// their mixes are tighter around the global average).
  double outdoor_concentration = 700.0;
  /// Log-normal sigma of the per-antenna total volume.
  double volume_sigma = 0.9;
};

/// Generated demand profile of one indoor antenna.
struct AntennaProfile {
  int archetype = 0;        ///< Ground-truth behavioural archetype (0..8).
  double total_mb = 0.0;    ///< Two-month total traffic (MB, all services).
  std::vector<double> shares;  ///< Per-service traffic shares (sum = 1).
};

/// Demand generator for a topology.
class DemandModel {
 public:
  /// Draws all indoor profiles and outdoor mixes deterministically from
  /// params.seed. References must outlive the model.
  DemandModel(const net::Topology& topology, const ArchetypeModel& archetypes,
              const DemandParams& params);

  /// Indoor antenna profiles, aligned with topology.indoor().
  [[nodiscard]] const std::vector<AntennaProfile>& profiles() const {
    return profiles_;
  }

  /// Ground-truth archetype per indoor antenna.
  [[nodiscard]] const std::vector<int>& archetype_labels() const {
    return labels_;
  }

  /// The T matrix (Sec. 4.1): N x M two-month service totals in MB.
  [[nodiscard]] const ml::Matrix& traffic_matrix() const { return traffic_; }

  /// Outdoor counterpart: one row per outdoor antenna of the topology.
  [[nodiscard]] const ml::Matrix& outdoor_traffic_matrix() const {
    return outdoor_traffic_;
  }

  [[nodiscard]] const net::Topology& topology() const { return *topology_; }
  [[nodiscard]] const ArchetypeModel& archetypes() const {
    return *archetypes_;
  }
  [[nodiscard]] const DemandParams& params() const { return params_; }

  /// Mean two-month total volume (MB) for an environment; exposed for tests.
  [[nodiscard]] static double mean_total_mb(net::Environment e);

 private:
  const net::Topology* topology_;
  const ArchetypeModel* archetypes_;
  DemandParams params_;
  std::vector<AntennaProfile> profiles_;
  std::vector<int> labels_;
  ml::Matrix traffic_;
  ml::Matrix outdoor_traffic_;
};

}  // namespace icn::traffic
