#include "traffic/temporal.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace icn::traffic {
namespace {

using icn::util::DateRange;
using icn::util::Rng;
using icn::util::Weekday;

constexpr std::uint64_t kEventStream = 0x0E0E'0001ULL;
constexpr std::uint64_t kNoiseStream = 0x0E0E'0002ULL;

double gauss(double h, double mu, double sigma) {
  const double d = (h - mu) / sigma;
  return std::exp(-0.5 * d * d);
}

/// Smooth plateau between `rise` and `fall` hours.
double plateau(double h, double rise, double fall, double steepness = 1.5) {
  const double up = 1.0 / (1.0 + std::exp(-steepness * (h - rise)));
  const double down = 1.0 / (1.0 + std::exp(steepness * (h - fall)));
  return up * down;
}

/// All diurnal profile kinds, used to enumerate weight grids.
constexpr std::array<DiurnalProfile, 8> kAllProfiles = {
    DiurnalProfile::kFlat,     DiurnalProfile::kMorning,
    DiurnalProfile::kCommute,  DiurnalProfile::kWorkHours,
    DiurnalProfile::kDaytime,  DiurnalProfile::kEvening,
    DiurnalProfile::kNight,    DiurnalProfile::kPostEvent,
};

bool is_green(int archetype) {
  return archetype_group(archetype) == ClusterGroup::kGreen;
}

}  // namespace

double TemporalModel::day_shape(int archetype, Weekday wd, bool strike_day,
                                double hour) {
  ICN_REQUIRE(archetype >= 0 &&
                  archetype < static_cast<int>(kNumArchetypes),
              "archetype id");
  const bool weekend = icn::util::is_weekend(wd);
  double shape = 0.0;
  switch (archetype) {
    case 0:
    case 4:
    case 7: {
      // Commuter double peak (7:30-9:30 and 17:30-19:30), quiet weekends.
      if (!weekend) {
        shape = 0.05 + 1.0 * gauss(hour, 8.5, 1.0) +
                0.9 * gauss(hour, 18.5, 1.1);
      } else {
        shape = 0.04 + 0.18 * gauss(hour, 14.0, 3.5);
      }
      if (strike_day) {
        // 19 Jan 2023 general strike: transit collapse, milder outside Paris.
        shape *= archetype == 7 ? 0.5 : 0.08;
      }
      break;
    }
    case 5:
    case 6:
    case 8: {
      // Event venues: low ambient level; events are added separately.
      shape = 0.06 + 0.08 * plateau(hour, 10.0, 21.0);
      if (strike_day) shape *= 0.9;
      break;
    }
    case 1: {
      // General use: broad diurnal plateau with an evening shoulder,
      // weekends as active as weekdays.
      shape = 0.08 + 0.8 * plateau(hour, 9.5, 20.0) +
              0.35 * gauss(hour, 21.0, 1.5);
      if (strike_day) shape *= 0.85;
      break;
    }
    case 2: {
      // Retail & hospitality: shopping-hours plateau, higher night floor
      // (hotels, hospitals), Sunday dip (small MNO stores closed).
      shape = 0.20 + 0.8 * plateau(hour, 9.5, 19.5) +
              0.25 * gauss(hour, 22.0, 2.0);
      if (wd == Weekday::kSunday) shape *= 0.75;
      if (strike_day) shape *= 0.9;
      break;
    }
    case 3: {
      // Workspaces: office plateau, idle weekends and evenings.
      if (!weekend) {
        shape = 0.04 + 1.0 * plateau(hour, 8.7, 17.6, 2.0) *
                           (1.0 - 0.12 * gauss(hour, 13.0, 0.8));
      } else {
        shape = 0.04;
      }
      if (strike_day) shape *= 0.75;
      break;
    }
    default:
      break;
  }
  return shape;
}

double TemporalModel::profile_shape(DiurnalProfile p, Weekday wd,
                                    double hour) {
  const bool weekend = icn::util::is_weekend(wd);
  switch (p) {
    case DiurnalProfile::kFlat:
      return 1.0;
    case DiurnalProfile::kMorning:
      return 0.25 + 1.0 * gauss(hour, 8.0, 1.6);
    case DiurnalProfile::kCommute:
      if (weekend) return 0.3 + 0.3 * plateau(hour, 10.0, 20.0);
      return 0.2 + 1.0 * gauss(hour, 8.5, 1.1) + 0.9 * gauss(hour, 18.5, 1.2);
    case DiurnalProfile::kWorkHours:
      if (weekend) return 0.15;
      return 0.15 + 1.0 * plateau(hour, 8.8, 17.7, 2.0);
    case DiurnalProfile::kDaytime:
      return 0.25 + 1.0 * plateau(hour, 9.8, 20.2);
    case DiurnalProfile::kEvening:
      return 0.2 + 1.0 * gauss(hour, 20.5, 2.2);
    case DiurnalProfile::kNight:
      return 0.15 + 1.0 * gauss(hour, 22.0, 2.2) + 0.5 * gauss(hour, 1.0, 1.6);
    case DiurnalProfile::kPostEvent:
      // Driving navigation: evening commute + weekend daytime; the post-event
      // surge is added by the event machinery.
      return 0.25 + 0.8 * gauss(hour, 18.0, 1.6) +
             (weekend ? 0.5 * plateau(hour, 10.0, 19.0) : 0.0);
  }
  return 1.0;
}

TemporalModel::TemporalModel(const DemandModel& demand,
                             const TemporalParams& params)
    : demand_(&demand), params_(params), period_(icn::util::study_period()) {
  ICN_REQUIRE(params.noise_shape >= 0.0, "noise shape");
}

std::vector<VenueEvent> TemporalModel::site_events(
    std::size_t antenna) const {
  const auto& topo = demand_->topology();
  ICN_REQUIRE(antenna < topo.indoor().size(), "antenna index");
  const net::Antenna& ant = topo.indoor()[antenna];
  const int archetype = demand_->archetype_labels()[antenna];
  std::vector<VenueEvent> events;
  if (!is_green(archetype)) return events;
  const bool venue_env = ant.environment == net::Environment::kStadium ||
                         ant.environment == net::Environment::kExpo;
  if (!venue_env) return events;

  Rng rng(icn::util::derive_seed(params_.seed, kEventStream, ant.site_id));
  const std::int64_t days = period_.num_days();

  if (ant.environment == net::Environment::kStadium) {
    // Synchronized match evenings: every Saturday, plus every other
    // Wednesday; each site hosts ~75% of them. Paris arenas (archetype 8)
    // also host Friday-night shows and the 19 Jan NBA Paris Game.
    for (std::int64_t d = 0; d < days; ++d) {
      const Weekday wd = period_.weekday_at(d);
      const bool match_day =
          wd == Weekday::kSaturday ||
          (wd == Weekday::kWednesday && (d / 7) % 2 == 0);
      if (match_day && rng.bernoulli(0.75)) {
        events.push_back(VenueEvent{d, 20.0, 22.5, 14.0, "match"});
      }
      if (archetype == 8 && wd == Weekday::kFriday && rng.bernoulli(0.6)) {
        events.push_back(VenueEvent{d, 19.5, 23.0, 12.0, "arena show"});
      }
    }
    if (net::is_paris(ant.city)) {
      const std::int64_t nba = period_.index_of(icn::util::Date{2023, 1, 19});
      events.push_back(VenueEvent{nba, 19.0, 23.0, 18.0, "NBA Paris Game"});
    }
  } else {
    // Expo centres: one multi-day trade fair for ~60% of the sites; the Lyon
    // sites host the Sirha fair on 19-24 Jan 2023 (Sec. 6.0.1).
    if (ant.city == net::City::kLyon) {
      const std::int64_t first =
          period_.index_of(icn::util::Date{2023, 1, 19});
      for (std::int64_t d = first; d < days; ++d) {
        events.push_back(VenueEvent{d, 9.0, 19.0, 8.0, "Sirha Lyon"});
      }
    } else if (rng.bernoulli(0.6)) {
      const std::int64_t duration = rng.uniform_int(3, 5);
      const std::int64_t start = rng.uniform_int(0, days - duration);
      for (std::int64_t d = start; d < start + duration; ++d) {
        events.push_back(VenueEvent{d, 9.0, 19.0, 7.0, "trade fair"});
      }
    }
  }
  return events;
}

double TemporalModel::event_participation(ServiceCategory c) {
  using enum ServiceCategory;
  switch (c) {
    case kSocial:
    case kMessaging:
    case kSports:
      return 1.0;
    case kNews:
    case kNavigation:
      return 0.6;
    case kVideoStreaming:
    case kMusic:
    case kCloud:
    case kGaming:
      return 0.12;
    case kWork:
    case kMail:
      return 0.3;
    case kShopping:
    case kAppStore:
    case kEntertainment:
      return 0.5;
  }
  return 0.5;
}

std::vector<double> TemporalModel::profile_grid(std::size_t antenna,
                                                DiurnalProfile p,
                                                double participation) const {
  const auto& topo = demand_->topology();
  ICN_REQUIRE(antenna < topo.indoor().size(), "antenna index");
  ICN_REQUIRE(participation >= 0.0 && participation <= 1.0,
              "event participation");
  const int archetype = demand_->archetype_labels()[antenna];
  const auto events = site_events(antenna);
  const icn::util::Date strike = icn::util::strike_day();

  const std::int64_t hours = period_.num_hours();
  std::vector<double> grid(static_cast<std::size_t>(hours));
  Rng noise_rng(icn::util::derive_seed(
      params_.seed, kNoiseStream,
      icn::util::derive_seed(antenna, static_cast<std::uint64_t>(p),
                             static_cast<std::uint64_t>(
                                 participation * 1000.0))));

  for (std::int64_t t = 0; t < hours; ++t) {
    const std::int64_t d = t / 24;
    const double hour = static_cast<double>(t % 24) + 0.5;
    const icn::util::Date date = period_.date_at(d);
    const Weekday wd = date.weekday();
    double w = day_shape(archetype, wd, date == strike, hour) *
               profile_shape(p, wd, hour);
    // Event boosts: crowd-driven services surge during the event (scaled by
    // their participation); the kPostEvent profile (vehicular navigation)
    // surges in the ~3h after it instead.
    for (const auto& ev : events) {
      if (p == DiurnalProfile::kPostEvent) {
        if (ev.day == d && hour >= ev.end_hour &&
            hour < ev.end_hour + 3.0) {
          w += 0.12 * ev.boost;  // ambient * boost, shifted
        }
      } else if (ev.day == d && hour >= ev.start_hour &&
                 hour < ev.end_hour) {
        w += 0.14 * ev.boost * participation;
      }
    }
    if (params_.noise_shape > 0.0) {
      w *= noise_rng.gamma(params_.noise_shape, 1.0 / params_.noise_shape);
    }
    grid[static_cast<std::size_t>(t)] = w;
  }
  return grid;
}

std::vector<double> TemporalModel::hourly_service_series(
    std::size_t antenna, std::size_t service) const {
  const auto& catalog = demand_->archetypes().catalog();
  ICN_REQUIRE(service < catalog.size(), "service index");
  const Service& svc = catalog.at(service);
  const double total = demand_->traffic_matrix()(antenna, service);
  auto grid = profile_grid(antenna, svc.diurnal,
                           event_participation(svc.category));
  double sum = 0.0;
  for (const double w : grid) sum += w;
  ICN_REQUIRE(sum > 0.0, "degenerate temporal grid");
  for (auto& w : grid) w = total * w / sum;
  return grid;
}

std::vector<double> TemporalModel::hourly_total_series(
    std::size_t antenna) const {
  const auto& catalog = demand_->archetypes().catalog();
  const auto& traffic = demand_->traffic_matrix();
  const std::size_t hours = static_cast<std::size_t>(period_.num_hours());
  std::vector<double> out(hours, 0.0);
  // Group services by (diurnal profile, event participation) so each grid
  // is computed once per distinct combination.
  for (const DiurnalProfile p : kAllProfiles) {
    for (std::size_t c = 0; c < kNumServiceCategories; ++c) {
      const auto category = static_cast<ServiceCategory>(c);
      double group_total = 0.0;
      for (std::size_t j = 0; j < catalog.size(); ++j) {
        if (catalog.at(j).diurnal == p &&
            catalog.at(j).category == category) {
          group_total += traffic(antenna, j);
        }
      }
      if (group_total == 0.0) continue;
      auto grid = profile_grid(antenna, p, event_participation(category));
      double sum = 0.0;
      for (const double w : grid) sum += w;
      ICN_REQUIRE(sum > 0.0, "degenerate temporal grid");
      const double scale = group_total / sum;
      for (std::size_t t = 0; t < hours; ++t) out[t] += scale * grid[t];
    }
  }
  return out;
}

}  // namespace icn::traffic
