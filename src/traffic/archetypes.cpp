#include "traffic/archetypes.h"

#include <cmath>

#include "util/error.h"

namespace icn::traffic {
namespace {

const std::array<Archetype, kNumArchetypes>& archetype_table() {
  static const std::array<Archetype, kNumArchetypes> kTable = {{
      {0, "Paris commuters, entertainment-leaning", ClusterGroup::kOrange},
      {1, "General use (airports, tunnels, mixed)", ClusterGroup::kRed},
      {2, "Retail & hospitality", ClusterGroup::kRed},
      {3, "Workspaces", ClusterGroup::kRed},
      {4, "Paris commuters, utilitarian", ClusterGroup::kOrange},
      {5, "Uniform low-intensity venues", ClusterGroup::kGreen},
      {6, "Provincial stadiums", ClusterGroup::kGreen},
      {7, "Provincial metro commuters", ClusterGroup::kOrange},
      {8, "Paris arenas, diverse event crowd", ClusterGroup::kGreen},
  }};
  return kTable;
}

}  // namespace

const char* group_name(ClusterGroup g) {
  switch (g) {
    case ClusterGroup::kOrange:
      return "orange";
    case ClusterGroup::kGreen:
      return "green";
    case ClusterGroup::kRed:
      return "red";
  }
  return "?";
}

const Archetype& archetype_info(int id) {
  ICN_REQUIRE(id >= 0 && id < static_cast<int>(kNumArchetypes),
              "archetype id");
  return archetype_table()[static_cast<std::size_t>(id)];
}

ClusterGroup archetype_group(int id) { return archetype_info(id).group; }

ArchetypeModel::ArchetypeModel(const ServiceCatalog& catalog)
    : catalog_(&catalog) {
  const std::size_t m = catalog.size();
  multipliers_.assign(kNumArchetypes, std::vector<double>(m, 1.0));

  auto set_cat = [&](int a, ServiceCategory c, double v) {
    for (const std::size_t j : catalog.of_category(c)) {
      multipliers_[static_cast<std::size_t>(a)][j] = v;
    }
  };
  auto set_svc = [&](int a, std::string_view name, double v) {
    const auto j = catalog.index_of(name);
    ICN_REQUIRE(j.has_value(), std::string("unknown service ") +
                                   std::string(name));
    multipliers_[static_cast<std::size_t>(a)][*j] = v;
  };
  using enum ServiceCategory;

  // --- Archetype 0: Paris metro/train commuters, entertainment-leaning.
  set_cat(0, kMusic, 3.5);
  set_cat(0, kNavigation, 2.2);
  set_cat(0, kNews, 1.8);
  set_cat(0, kEntertainment, 2.2);
  set_cat(0, kSports, 1.3);
  set_cat(0, kWork, 0.5);
  set_cat(0, kVideoStreaming, 0.7);
  set_svc(0, "Mappy", 3.0);
  set_svc(0, "Transportation Websites", 3.2);
  set_svc(0, "RATP", 3.2);
  set_svc(0, "Yahoo", 2.2);
  set_svc(0, "Twitter", 1.6);
  set_svc(0, "Webtoon", 2.0);
  set_svc(0, "Netflix", 0.55);

  // --- Archetype 4: Paris metro/train commuters, utilitarian (no
  // entertainment, Twitter mitigated).
  set_cat(4, kMusic, 3.5);
  set_cat(4, kNavigation, 2.6);
  set_cat(4, kEntertainment, 0.35);
  set_cat(4, kNews, 0.6);
  set_cat(4, kSports, 0.7);
  set_cat(4, kWork, 0.5);
  set_cat(4, kVideoStreaming, 0.7);
  set_svc(4, "Mappy", 3.4);
  set_svc(4, "Transportation Websites", 3.6);
  set_svc(4, "RATP", 3.4);
  set_svc(4, "Yahoo", 0.35);
  set_svc(4, "Twitter", 0.5);
  set_svc(4, "Netflix", 0.55);

  // --- Archetype 7: provincial metros (Lille/Lyon/Rennes/Toulouse):
  // music-heavy but transport/navigation helpers under-used (simpler
  // networks, resident riders).
  set_cat(7, kMusic, 3.5);
  // Mainstream navigation stays commuter-high; only the niche helpers
  // (Mappy, transportation websites, RATP) fall into under-utilization —
  // simpler provincial networks need no dedicated routing apps (Sec. 5.2.2).
  set_cat(7, kNavigation, 2.1);
  set_cat(7, kEntertainment, 1.1);
  set_cat(7, kNews, 1.1);
  set_cat(7, kSports, 0.9);
  set_cat(7, kWork, 0.5);
  set_cat(7, kVideoStreaming, 0.7);
  set_svc(7, "Spotify", 3.2);
  set_svc(7, "Deezer", 3.0);
  set_svc(7, "Mappy", 0.45);
  set_svc(7, "Transportation Websites", 0.5);
  set_svc(7, "RATP", 0.4);
  set_svc(7, "SNCF Connect", 0.6);
  set_svc(7, "Netflix", 0.55);
  set_svc(7, "Twitter", 1.15);

  // --- Archetype 5: uniform low-intensity (flattened mix; handled below).

  // --- Archetype 6: provincial stadiums: content-sharing + sports during
  // events, long-form streaming suppressed.
  set_cat(6, kSports, 4.0);
  set_cat(6, kSocial, 1.6);
  set_cat(6, kVideoStreaming, 0.45);
  set_cat(6, kMusic, 0.6);
  set_cat(6, kWork, 0.5);
  set_cat(6, kShopping, 0.7);
  set_cat(6, kMail, 0.7);
  set_svc(6, "Snapchat", 3.2);
  set_svc(6, "Twitter", 3.0);
  set_svc(6, "Waze", 1.6);
  set_svc(6, "Netflix", 0.35);
  set_svc(6, "Canal+", 0.3);
  set_svc(6, "Giphy", 0.4);
  set_svc(6, "WhatsApp", 0.75);

  // --- Archetype 8: Paris arenas: like 6 but with a larger app diversity
  // (Giphy, WhatsApp, Canal+ present).
  set_cat(8, kSports, 3.2);
  set_cat(8, kSocial, 1.7);
  set_cat(8, kMessaging, 1.5);
  set_cat(8, kVideoStreaming, 0.6);
  set_cat(8, kMusic, 0.8);
  set_cat(8, kWork, 0.6);
  set_cat(8, kMail, 0.8);
  set_svc(8, "Snapchat", 3.2);
  set_svc(8, "Twitter", 2.6);
  set_svc(8, "Giphy", 2.6);
  set_svc(8, "WhatsApp", 1.9);
  set_svc(8, "Canal+", 1.7);
  set_svc(8, "Netflix", 0.45);

  // --- Archetype 1: general use: streaming + vehicular navigation + mail
  // over-used, commuter services under-used.
  set_cat(1, kMail, 1.9);
  set_cat(1, kMessaging, 1.25);
  set_cat(1, kMusic, 0.55);
  set_cat(1, kShopping, 0.75);
  set_cat(1, kAppStore, 0.7);
  set_cat(1, kWork, 0.8);
  set_cat(1, kVideoStreaming, 1.3);
  set_svc(1, "Netflix", 1.9);
  set_svc(1, "Disney+", 1.9);
  set_svc(1, "Amazon Prime Video", 1.9);
  set_svc(1, "Waze", 2.6);
  set_svc(1, "Spotify", 0.5);
  set_svc(1, "SoundCloud", 0.45);
  set_svc(1, "Mappy", 0.35);
  set_svc(1, "Transportation Websites", 0.45);
  set_svc(1, "RATP", 0.4);

  // --- Archetype 2: retail & hospitality: app downloads + shopping; hotels
  // stream at night.
  set_cat(2, kShopping, 2.8);
  set_cat(2, kMusic, 0.5);
  set_cat(2, kMail, 0.7);
  set_cat(2, kMessaging, 0.9);
  set_cat(2, kNavigation, 0.6);
  set_cat(2, kWork, 0.55);
  set_cat(2, kSports, 0.7);
  set_svc(2, "Google Play Store", 3.2);
  set_svc(2, "Apple App Store", 2.0);
  set_svc(2, "Shopping Websites", 2.8);
  set_svc(2, "Netflix", 1.5);
  set_svc(2, "Microsoft Teams", 0.4);

  // --- Archetype 3: workspaces: collaboration, professional networking,
  // mail, cloud; leisure services suppressed.
  set_cat(3, kWork, 3.0);
  set_cat(3, kMail, 2.6);
  set_cat(3, kCloud, 1.9);
  set_cat(3, kMusic, 0.5);
  set_cat(3, kNavigation, 0.5);
  set_cat(3, kSocial, 0.6);
  set_cat(3, kVideoStreaming, 0.4);
  set_cat(3, kGaming, 0.4);
  set_cat(3, kShopping, 0.7);
  set_svc(3, "Microsoft Teams", 4.2);
  set_svc(3, "LinkedIn", 3.6);
  set_svc(3, "Snapchat", 0.35);
  set_svc(3, "Netflix", 0.35);

  // Archetype 5: flatten the global mix so every service gets a near-equal
  // share of a venue's modest traffic. Under Eq. (1) this under-utilizes the
  // popular services (most of the catalogue's traffic mass), matching the
  // paper's "under-utilization of most mobile services" signature.
  {
    const auto& shares = catalog.popularity_shares();
    const double mean_share = 1.0 / static_cast<double>(m);
    for (std::size_t j = 0; j < m; ++j) {
      multipliers_[5][j] = std::pow(mean_share / shares[j], 0.57);
    }
    // ... with the mild content-sharing tilt of an event venue, which keeps
    // cluster 5 inside the green branch of the dendrogram (Fig. 3).
    for (const char* svc : {"Snapchat", "Twitter"}) {
      multipliers_[5][*catalog.index_of(svc)] *= 2.2;
    }
    for (const std::size_t j : catalog.of_category(kSports)) {
      multipliers_[5][j] *= 2.2;
    }
    for (const std::size_t j : catalog.of_category(kVideoStreaming)) {
      multipliers_[5][j] *= 0.6;
    }
  }

  // Derive the noise-free expected shares.
  expected_shares_.assign(kNumArchetypes, std::vector<double>(m, 0.0));
  for (std::size_t a = 0; a < kNumArchetypes; ++a) {
    double total = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      expected_shares_[a][j] =
          catalog.popularity_shares()[j] * multipliers_[a][j];
      total += expected_shares_[a][j];
    }
    for (std::size_t j = 0; j < m; ++j) expected_shares_[a][j] /= total;
  }
}

std::span<const double> ArchetypeModel::multipliers(int archetype) const {
  ICN_REQUIRE(archetype >= 0 && archetype < static_cast<int>(kNumArchetypes),
              "archetype id");
  return multipliers_[static_cast<std::size_t>(archetype)];
}

std::span<const double> ArchetypeModel::expected_shares(int archetype) const {
  ICN_REQUIRE(archetype >= 0 && archetype < static_cast<int>(kNumArchetypes),
              "archetype id");
  return expected_shares_[static_cast<std::size_t>(archetype)];
}

std::array<double, kNumArchetypes> ArchetypeModel::archetype_mix(
    net::Environment env, net::City city) {
  using net::Environment;
  std::array<double, kNumArchetypes> w{};  // zero-initialized
  const bool paris = net::is_paris(city);
  const bool provincial_metro = net::has_provincial_metro(city);
  switch (env) {
    case Environment::kMetro:
      if (paris) {
        w[0] = 0.52; w[4] = 0.44; w[1] = 0.02; w[5] = 0.02;
      } else {
        w[7] = 0.96; w[1] = 0.02; w[5] = 0.02;
      }
      break;
    case Environment::kTrain:
      if (paris) {
        w[0] = 0.50; w[4] = 0.42; w[1] = 0.05; w[2] = 0.03;
      } else if (provincial_metro) {
        w[0] = 0.22; w[4] = 0.22; w[7] = 0.20; w[1] = 0.20; w[2] = 0.16;
      } else {
        w[0] = 0.22; w[4] = 0.22; w[1] = 0.32; w[2] = 0.24;
      }
      break;
    case Environment::kAirport:
      w[1] = 0.90; w[2] = 0.05; w[5] = 0.05;
      break;
    case Environment::kWorkspace:
      w[3] = 0.70; w[5] = 0.06; w[1] = 0.12; w[2] = 0.12;
      break;
    case Environment::kCommercial:
      w[2] = 0.50; w[1] = 0.40; w[5] = 0.05; w[3] = 0.05;
      break;
    case Environment::kStadium:
      if (paris) {
        w[8] = 0.58; w[5] = 0.20; w[6] = 0.08; w[1] = 0.14;
      } else {
        w[6] = 0.62; w[5] = 0.22; w[8] = 0.08; w[1] = 0.08;
      }
      break;
    case Environment::kExpo:
      w[3] = 0.52; w[5] = 0.25; w[1] = 0.15; w[8] = 0.08;
      break;
    case Environment::kHotel:
      w[2] = 0.70; w[1] = 0.30;
      break;
    case Environment::kHospital:
      w[2] = 0.90; w[1] = 0.10;
      break;
    case Environment::kTunnel:
      w[1] = 0.92; w[2] = 0.08;
      break;
    case Environment::kPublicBuilding:
      w[2] = 0.55; w[1] = 0.35; w[3] = 0.10;
      break;
  }
  return w;
}

}  // namespace icn::traffic
