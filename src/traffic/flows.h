// Session-level traffic synthesis: expands the hourly (antenna, service)
// volumes of the TemporalModel into individual IP flows, the input of the
// passive-probe measurement path (src/probe).
//
// Each flow carries a 5-tuple, an SNI-style host name (what the DPI
// classifier sees), a GTP-C ULI cell identity (how the probe geo-references
// the session to a BTS, Sec. 3), byte volumes split between downlink and
// uplink, and a start timestamp. The flows of one (antenna, service, hour)
// cell partition that cell's volume exactly, so probe-side aggregation must
// reproduce the TemporalModel tensor bit-for-bit — an end-to-end invariant
// the integration tests check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "traffic/temporal.h"

namespace icn::traffic {

/// Transport protocol of a flow.
enum class Protocol : std::uint8_t { kTcp = 6, kUdp = 17 };

/// One synthesized IP flow as a probe on the Gi/SGi interface would see it.
struct FlowRecord {
  std::uint32_t ecgi = 0;       ///< E-UTRAN cell id from the GTP-C ULI.
  std::int64_t start_hour = 0;  ///< Hour index into the study period.
  std::uint32_t src_ip = 0;     ///< UE address (private range).
  std::uint32_t dst_ip = 0;     ///< Service endpoint address.
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 443;
  Protocol protocol = Protocol::kTcp;
  std::string sni;              ///< TLS SNI / QUIC host seen by the DPI.
  double down_bytes = 0.0;      ///< Downlink volume in bytes.
  double up_bytes = 0.0;        ///< Uplink volume in bytes.
  std::uint32_t duration_s = 0;
};

/// Deterministic flow synthesizer on top of a TemporalModel.
class FlowGenerator {
 public:
  /// The temporal model must outlive the generator. `ecgi_base` is the cell
  /// identity offset used when encoding antenna ids into ULIs.
  /// `unknown_sni_fraction` injects measurement-reality failures: that
  /// fraction of flows carries a host the DPI has no signature for (ESNI,
  /// new apps, raw-IP traffic) and must be dropped by the probe.
  FlowGenerator(const TemporalModel& temporal, std::uint64_t seed,
                std::uint32_t ecgi_base = 0x0010'0000,
                double unknown_sni_fraction = 0.0);

  /// ECGI encoding of an indoor antenna id (must match the probe's decoder).
  [[nodiscard]] std::uint32_t ecgi_of(std::uint32_t antenna_id) const {
    return ecgi_base_ + antenna_id;
  }

  /// All flows of one (antenna, service) pair within one hour of the study
  /// period. Flow volumes sum exactly to the temporal model's MB for that
  /// cell (converted to bytes). Deterministic per (seed, antenna, service,
  /// hour).
  [[nodiscard]] std::vector<FlowRecord> flows_for_hour(
      std::size_t antenna, std::size_t service, std::int64_t hour) const;

  /// Convenience: every flow of an antenna across all services for hours
  /// [first_hour, last_hour).
  [[nodiscard]] std::vector<FlowRecord> flows_for_antenna(
      std::size_t antenna, std::int64_t first_hour,
      std::int64_t last_hour) const;

  [[nodiscard]] const TemporalModel& temporal() const { return *temporal_; }

 private:
  const TemporalModel* temporal_;
  std::uint64_t seed_;
  std::uint32_t ecgi_base_;
  double unknown_sni_fraction_;

  [[nodiscard]] std::vector<FlowRecord> make_flows(
      std::size_t antenna, std::size_t service, std::int64_t hour,
      double mb) const;
};

/// Mean flow size in MB for a service category (video flows are large,
/// messaging flows tiny). Exposed for tests.
[[nodiscard]] double mean_flow_mb(ServiceCategory c);

/// Downlink fraction of a service category's volume (video ~0.95,
/// messaging ~0.6, cloud uploads lower).
[[nodiscard]] double downlink_fraction(ServiceCategory c);

}  // namespace icn::traffic
