#include "traffic/services.h"

#include "util/error.h"

namespace icn::traffic {
namespace {

using enum ServiceCategory;
using enum DiurnalProfile;

/// The fixed catalogue. Popularity weights are relative (normalized at
/// construction) and heavy-tailed: a handful of video services dominate
/// nationwide traffic, as in the real network.
constexpr Service kCatalog[] = {
    // --- Video streaming (11)
    {"YouTube", kVideoStreaming, 10.0, "youtube.com", kEvening},
    {"Netflix", kVideoStreaming, 8.0, "netflix.com", kNight},
    {"TikTok", kVideoStreaming, 7.0, "tiktok.com", kEvening},
    {"Amazon Prime Video", kVideoStreaming, 2.5, "primevideo.com", kNight},
    {"Disney+", kVideoStreaming, 2.0, "disneyplus.com", kEvening},
    {"Twitch", kVideoStreaming, 1.5, "twitch.tv", kEvening},
    {"Canal+", kVideoStreaming, 1.0, "canalplus.com", kEvening},
    {"MyTF1", kVideoStreaming, 0.8, "tf1.fr", kEvening},
    {"France TV", kVideoStreaming, 0.6, "francetelevisions.fr", kEvening},
    {"Molotov TV", kVideoStreaming, 0.4, "molotov.tv", kEvening},
    {"Dailymotion", kVideoStreaming, 0.3, "dailymotion.com", kEvening},
    // --- Music (5)
    {"Spotify", kMusic, 2.5, "spotify.com", kCommute},
    {"Deezer", kMusic, 1.2, "deezer.com", kCommute},
    {"Apple Music", kMusic, 0.8, "music.apple.com", kCommute},
    {"SoundCloud", kMusic, 0.5, "soundcloud.com", kCommute},
    {"Amazon Music", kMusic, 0.3, "music.amazon.com", kCommute},
    // --- Social (8)
    {"Facebook", kSocial, 4.0, "facebook.com", kDaytime},
    {"Instagram", kSocial, 5.0, "instagram.com", kDaytime},
    {"Snapchat", kSocial, 3.0, "snapchat.com", kDaytime},
    {"Twitter", kSocial, 2.0, "twitter.com", kDaytime},
    {"Pinterest", kSocial, 0.6, "pinterest.com", kDaytime},
    {"LinkedIn", kSocial, 0.7, "linkedin.com", kWorkHours},
    {"Giphy", kSocial, 0.3, "giphy.com", kDaytime},
    {"Reddit", kSocial, 0.5, "reddit.com", kEvening},
    // --- Messaging (7)
    {"WhatsApp", kMessaging, 2.0, "whatsapp.net", kDaytime},
    {"Facebook Messenger", kMessaging, 1.2, "messenger.com", kDaytime},
    {"Telegram", kMessaging, 0.8, "telegram.org", kDaytime},
    {"Signal", kMessaging, 0.3, "signal.org", kDaytime},
    {"iMessage", kMessaging, 0.5, "imessage.apple.com", kDaytime},
    {"Discord", kMessaging, 0.7, "discord.gg", kEvening},
    {"Skype", kMessaging, 0.3, "skype.com", kWorkHours},
    // --- Navigation & transportation (7)
    {"Google Maps", kNavigation, 1.2, "maps.google.com", kCommute},
    {"Waze", kNavigation, 0.8, "waze.com", kPostEvent},
    {"Mappy", kNavigation, 0.15, "mappy.com", kCommute},
    {"Transportation Websites", kNavigation, 0.25, "transport.example.fr",
     kCommute},
    {"SNCF Connect", kNavigation, 0.3, "sncf-connect.com", kCommute},
    {"RATP", kNavigation, 0.25, "ratp.fr", kCommute},
    {"Uber", kNavigation, 0.4, "uber.com", kEvening},
    // --- Work & collaboration (6)
    {"Microsoft Teams", kWork, 1.0, "teams.microsoft.com", kWorkHours},
    {"Zoom", kWork, 0.6, "zoom.us", kWorkHours},
    {"Slack", kWork, 0.4, "slack.com", kWorkHours},
    {"Webex", kWork, 0.2, "webex.com", kWorkHours},
    {"Microsoft 365", kWork, 0.9, "office.com", kWorkHours},
    {"Google Workspace", kWork, 0.7, "workspace.google.com", kWorkHours},
    // --- Mail (4)
    {"Gmail", kMail, 0.9, "mail.google.com", kWorkHours},
    {"Outlook", kMail, 0.7, "outlook.com", kWorkHours},
    {"Yahoo Mail", kMail, 0.3, "mail.yahoo.com", kDaytime},
    {"Orange Mail", kMail, 0.4, "mail.orange.fr", kDaytime},
    // --- Shopping (6)
    {"Amazon Shopping", kShopping, 1.2, "amazon.fr", kDaytime},
    {"Shopping Websites", kShopping, 0.8, "shopping.example.fr", kDaytime},
    {"Vinted", kShopping, 0.5, "vinted.fr", kDaytime},
    {"Leboncoin", kShopping, 0.6, "leboncoin.fr", kDaytime},
    {"AliExpress", kShopping, 0.4, "aliexpress.com", kDaytime},
    {"eBay", kShopping, 0.2, "ebay.fr", kDaytime},
    // --- App stores / digital distribution (2)
    {"Google Play Store", kAppStore, 1.5, "play.google.com", kDaytime},
    {"Apple App Store", kAppStore, 1.0, "apps.apple.com", kDaytime},
    // --- Cloud storage (4)
    {"iCloud", kCloud, 0.8, "icloud.com", kNight},
    {"Google Drive", kCloud, 0.6, "drive.google.com", kWorkHours},
    {"Dropbox", kCloud, 0.3, "dropbox.com", kWorkHours},
    {"OneDrive", kCloud, 0.4, "onedrive.live.com", kWorkHours},
    // --- Gaming (6)
    {"Fortnite", kGaming, 0.6, "epicgames.com", kEvening},
    {"Roblox", kGaming, 0.5, "roblox.com", kEvening},
    {"Candy Crush", kGaming, 0.3, "king.com", kDaytime},
    {"Clash of Clans", kGaming, 0.3, "supercell.com", kEvening},
    {"PlayStation Network", kGaming, 0.4, "playstation.net", kEvening},
    {"Pokemon GO", kGaming, 0.3, "pokemongolive.com", kDaytime},
    // --- News (2)
    {"News Websites", kNews, 0.8, "news.example.fr", kMorning},
    {"Yahoo", kNews, 0.4, "yahoo.com", kMorning},
    // --- Sports (3)
    {"Sports Websites", kSports, 0.6, "sports.example.fr", kEvening},
    {"L'Equipe", kSports, 0.4, "lequipe.fr", kEvening},
    {"beIN Sports", kSports, 0.3, "beinsports.com", kEvening},
    // --- Entertainment (2)
    {"Entertainment Websites", kEntertainment, 0.5,
     "entertainment.example.fr", kDaytime},
    {"Webtoon", kEntertainment, 0.2, "webtoons.com", kCommute},
};

}  // namespace

const char* category_name(ServiceCategory c) {
  switch (c) {
    case kVideoStreaming:
      return "VideoStreaming";
    case kMusic:
      return "Music";
    case kSocial:
      return "Social";
    case kMessaging:
      return "Messaging";
    case kNavigation:
      return "Navigation";
    case kWork:
      return "Work";
    case kMail:
      return "Mail";
    case kShopping:
      return "Shopping";
    case kAppStore:
      return "AppStore";
    case kCloud:
      return "Cloud";
    case kGaming:
      return "Gaming";
    case kNews:
      return "News";
    case kSports:
      return "Sports";
    case kEntertainment:
      return "Entertainment";
  }
  return "?";
}

ServiceCatalog::ServiceCatalog()
    : services_(std::begin(kCatalog), std::end(kCatalog)) {
  double total = 0.0;
  for (const auto& s : services_) {
    ICN_REQUIRE(s.popularity > 0.0, "service popularity > 0");
    total += s.popularity;
  }
  popularity_shares_.reserve(services_.size());
  for (const auto& s : services_) {
    popularity_shares_.push_back(s.popularity / total);
  }
}

const Service& ServiceCatalog::at(std::size_t j) const {
  ICN_REQUIRE(j < services_.size(), "service index");
  return services_[j];
}

std::optional<std::size_t> ServiceCatalog::index_of(
    std::string_view name) const {
  for (std::size_t j = 0; j < services_.size(); ++j) {
    if (services_[j].name == name) return j;
  }
  return std::nullopt;
}

std::optional<std::size_t> ServiceCatalog::classify_sni(
    std::string_view host) const {
  for (std::size_t j = 0; j < services_.size(); ++j) {
    const std::string_view sig = services_[j].signature;
    if (host == sig) return j;
    // Suffix match on a label boundary: "api.spotify.com" ~ "spotify.com".
    if (host.size() > sig.size() && host.ends_with(sig) &&
        host[host.size() - sig.size() - 1] == '.') {
      return j;
    }
  }
  return std::nullopt;
}

std::vector<std::size_t> ServiceCatalog::of_category(
    ServiceCategory c) const {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < services_.size(); ++j) {
    if (services_[j].category == c) out.push_back(j);
  }
  return out;
}

}  // namespace icn::traffic
