#include "traffic/demand.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace icn::traffic {
namespace {

using icn::util::Rng;

/// Stream tags for seed derivation (stable across versions).
constexpr std::uint64_t kIndoorStream = 0x1D00'0001ULL;
constexpr std::uint64_t kOutdoorStream = 0x0D00'0002ULL;

/// Draws a share vector ~ Dirichlet(concentration * expected).
std::vector<double> noisy_shares(std::span<const double> expected,
                                 double concentration, Rng& rng) {
  std::vector<double> alphas(expected.size());
  for (std::size_t j = 0; j < expected.size(); ++j) {
    // Floor keeps rarely-used services from degenerating to exact zero.
    alphas[j] = std::max(concentration * expected[j], 0.05);
  }
  return rng.dirichlet(alphas);
}

}  // namespace

double DemandModel::mean_total_mb(net::Environment e) {
  using net::Environment;
  switch (e) {
    case Environment::kMetro:
      return 5.0e4;
    case Environment::kTrain:
      return 8.0e4;
    case Environment::kAirport:
      return 1.2e5;
    case Environment::kWorkspace:
      return 1.5e4;
    case Environment::kCommercial:
      return 4.0e4;
    case Environment::kStadium:
      return 6.0e4;
    case Environment::kExpo:
      return 3.0e4;
    case Environment::kHotel:
      return 8.0e3;
    case Environment::kHospital:
      return 6.0e3;
    case Environment::kTunnel:
      return 2.0e4;
    case Environment::kPublicBuilding:
      return 1.0e4;
  }
  return 2.0e4;
}

DemandModel::DemandModel(const net::Topology& topology,
                         const ArchetypeModel& archetypes,
                         const DemandParams& params)
    : topology_(&topology), archetypes_(&archetypes), params_(params) {
  ICN_REQUIRE(params.concentration > 0.0, "demand concentration");
  ICN_REQUIRE(params.outdoor_concentration > 0.0,
              "outdoor demand concentration");
  const auto& indoor = topology.indoor();
  const std::size_t n = indoor.size();
  const std::size_t m = archetypes.catalog().size();
  ICN_REQUIRE(n > 0, "topology has no indoor antennas");

  // Every antenna draws from its own seed stream keyed by its id, so the
  // rows can be generated on any number of threads (each iteration writes
  // only row i of the tensor and slot i of the profile/label vectors) and
  // the tensor is bit-identical to a serial fill.
  profiles_.resize(n);
  labels_.resize(n);
  traffic_ = ml::Matrix(n, m);
  icn::util::parallel_for(0, n, 16, [&](std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    const net::Antenna& ant = indoor[i];
    Rng rng(icn::util::derive_seed(params.seed, kIndoorStream, ant.id));
    const auto mix =
        ArchetypeModel::archetype_mix(ant.environment, ant.city);
    const int archetype = static_cast<int>(rng.categorical(mix));

    AntennaProfile profile;
    profile.archetype = archetype;
    const double mu =
        std::log(mean_total_mb(ant.environment)) -
        0.5 * params.volume_sigma * params.volume_sigma;
    profile.total_mb = rng.lognormal(mu, params.volume_sigma);
    // Local specialities: one or two *niche* services are idiosyncratically
    // popular at this particular antenna (the venue's own app, a local
    // habit). Niche services have tiny global shares, so this produces the
    // heavy RCA over-utilization tail of Fig. 1 (the paper observes RCA up
    // to ~76) that the RSCA transform then bounds away — while leaving the
    // cluster-defining popular services untouched.
    std::vector<double> expected(
        archetypes.expected_shares(archetype).begin(),
        archetypes.expected_shares(archetype).end());
    const auto& popularity = archetypes.catalog().popularity_shares();
    const std::size_t num_spec = 1 + rng.poisson(0.6);
    for (std::size_t spec = 0; spec < num_spec; ++spec) {
      std::size_t j = rng.uniform_index(m);
      for (int tries = 0; popularity[j] > 0.01 && tries < 16; ++tries) {
        j = rng.uniform_index(m);
      }
      expected[j] *= rng.lognormal(1.2, 0.8);
    }
    {
      double total = 0.0;
      for (const double v : expected) total += v;
      for (double& v : expected) v /= total;
    }
    profile.shares = noisy_shares(expected, params.concentration, rng);
    for (std::size_t j = 0; j < m; ++j) {
      traffic_(i, j) = profile.total_mb * profile.shares[j];
    }
    labels_[i] = archetype;
    profiles_[i] = std::move(profile);
  }
  });

  // Outdoor antennas: general-purpose mix around the global popularity
  // shares, mildly tilted towards outdoor-typical services (vehicular
  // navigation, long-form streaming, mail) but far more homogeneous than
  // any indoor archetype.
  const auto& outdoor = topology.outdoor();
  const auto& catalog = archetypes.catalog();
  std::vector<double> outdoor_mix(catalog.popularity_shares());
  auto tilt = [&](std::string_view name, double factor) {
    const auto j = catalog.index_of(name);
    ICN_REQUIRE(j.has_value(), "outdoor tilt service");
    outdoor_mix[*j] *= factor;
  };
  tilt("Waze", 1.6);
  tilt("Google Maps", 1.3);
  tilt("Netflix", 1.15);
  tilt("YouTube", 1.1);
  tilt("Gmail", 1.15);
  tilt("Outlook", 1.1);
  {
    double total = 0.0;
    for (const double v : outdoor_mix) total += v;
    for (double& v : outdoor_mix) v /= total;
  }
  outdoor_traffic_ = ml::Matrix(outdoor.size(), m);
  icn::util::parallel_for(
      0, outdoor.size(), 32, [&](std::size_t lo, std::size_t hi) {
  std::vector<double> blended(m);
  for (std::size_t i = lo; i < hi; ++i) {
    Rng rng(icn::util::derive_seed(params.seed, kOutdoorStream,
                                   outdoor[i].id));
    const double mu = std::log(2.0e5) -
                      0.5 * params.volume_sigma * params.volume_sigma;
    const double total_mb = rng.lognormal(mu, params.volume_sigma);
    // "Outside-in" spillover: an outdoor macro within 1 km of an ICN site
    // serves some of the same population, so its mix leans slightly (weight
    // drawn around 0.28) towards the dominant archetype of that site.
    // Transit (orange) flavours do not spill over: commuter usage happens
    // underground, out of reach of the street-level macro.
    const auto mix = ArchetypeModel::archetype_mix(outdoor[i].environment,
                                                   outdoor[i].city);
    std::size_t dominant = 0;
    for (std::size_t a = 1; a < mix.size(); ++a) {
      if (mix[a] > mix[dominant]) dominant = a;
    }
    const auto flavour =
        archetypes.multipliers(static_cast<int>(dominant));
    const bool transit = archetype_group(static_cast<int>(dominant)) ==
                         ClusterGroup::kOrange;
    const double w =
        transit ? 0.0 : std::clamp(rng.normal(0.28, 0.14), 0.0, 0.6);
    double blended_total = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      blended[j] = outdoor_mix[j] * ((1.0 - w) + w * flavour[j]);
      blended_total += blended[j];
    }
    for (std::size_t j = 0; j < m; ++j) blended[j] /= blended_total;
    const auto shares =
        noisy_shares(blended, params.outdoor_concentration, rng);
    for (std::size_t j = 0; j < m; ++j) {
      outdoor_traffic_(i, j) = total_mb * shares[j];
    }
  }
      });
}

}  // namespace icn::traffic
