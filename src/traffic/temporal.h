// Hourly traffic dynamics (Sec. 6 of the paper).
//
// Every (antenna, service) pair gets an hourly weight curve over the study
// period, combining:
//  * an archetype day shape — commute double-peaks for the orange clusters,
//    office hours for cluster 3, retail/diurnal plateaus for clusters 1-2
//    (with cluster 2's Sunday dip and higher night floor), a low ambient
//    level for the event-driven green clusters;
//  * a per-service diurnal modulator (music peaks while commuting, Teams in
//    working hours, Netflix in the evening/night, Waze ~2h after events);
//  * calendar effects — weekends, the 19 Jan 2023 national strike (traffic
//    collapse for Paris commuter clusters, milder for provincial cluster 7);
//  * venue events for the green clusters: synchronized provincial match
//    evenings (cluster 6), Paris arena event nights incl. the 19 Jan NBA
//    game (cluster 8), multi-day trade fairs incl. Sirha Lyon 19-24 Jan
//    (cluster 5 venues);
//  * multiplicative gamma noise.
//
// Weights are normalized so each (antenna, service) hourly series sums to
// exactly the antenna's two-month total for that service from the demand
// model — the tensor is consistent with the T matrix by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "traffic/demand.h"
#include "util/calendar.h"

namespace icn::traffic {

/// Temporal model parameters.
struct TemporalParams {
  std::uint64_t seed = 77;
  /// Gamma noise shape (mean-1 multiplicative noise); 0 disables noise.
  double noise_shape = 25.0;
};

/// One venue event resolved for a site.
struct VenueEvent {
  std::int64_t day = 0;       ///< Day index into the study period.
  double start_hour = 0.0;    ///< Start hour of day [0, 24).
  double end_hour = 0.0;      ///< End hour of day (exclusive).
  double boost = 1.0;         ///< Multiplicative traffic boost while active.
  std::string label;          ///< e.g. "match", "NBA Paris Game", "Sirha Lyon".
};

/// Hourly traffic series generator on top of a DemandModel.
class TemporalModel {
 public:
  /// The demand model must outlive the temporal model.
  TemporalModel(const DemandModel& demand, const TemporalParams& params);

  /// How strongly a service category takes part in venue events: social,
  /// messaging and sports traffic surges with the crowd, long-form video /
  /// music / cloud traffic does not (the paper observes Netflix staying
  /// under-utilized in venues even at event peaks, Fig. 11d).
  [[nodiscard]] static double event_participation(ServiceCategory c);

  /// The modeled period (the paper's 21 Nov 2022 -> 24 Jan 2023).
  [[nodiscard]] const icn::util::DateRange& period() const { return period_; }

  /// Hourly MB of one service at one indoor antenna over the whole period;
  /// sums to the demand model's T(antenna, service).
  [[nodiscard]] std::vector<double> hourly_service_series(
      std::size_t antenna, std::size_t service) const;

  /// Hourly MB of all services combined at one indoor antenna; sums to the
  /// antenna's total volume.
  [[nodiscard]] std::vector<double> hourly_total_series(
      std::size_t antenna) const;

  /// The event schedule of the antenna's site (empty for non-venue
  /// environments or non-green archetypes).
  [[nodiscard]] std::vector<VenueEvent> site_events(std::size_t antenna) const;

  /// Archetype day shape at hour-of-day `hour` (continuous, [0, 24)).
  /// Exposed for tests and benches.
  [[nodiscard]] static double day_shape(int archetype, icn::util::Weekday wd,
                                        bool strike_day, double hour);

  /// Service diurnal modulator (kPostEvent handled via events; here it
  /// falls back to an evening-driving shape). Exposed for tests.
  [[nodiscard]] static double profile_shape(DiurnalProfile p,
                                            icn::util::Weekday wd,
                                            double hour);

  [[nodiscard]] const DemandModel& demand() const { return *demand_; }

 private:
  const DemandModel* demand_;
  TemporalParams params_;
  icn::util::DateRange period_;

  /// Unnormalized weight grid of one diurnal profile at one antenna
  /// (length = period().num_hours()); `participation` scales the venue-event
  /// boost for the services using this grid.
  [[nodiscard]] std::vector<double> profile_grid(std::size_t antenna,
                                                 DiurnalProfile p,
                                                 double participation) const;
};

}  // namespace icn::traffic
