#include "traffic/flows.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace icn::traffic {
namespace {

using icn::util::Rng;

constexpr std::uint64_t kFlowStream = 0xF10F'0001ULL;

/// FNV-1a hash for deterministic endpoint addresses from signatures.
std::uint32_t fnv1a(std::string_view s) {
  std::uint32_t h = 2166136261U;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619U;
  }
  return h;
}

}  // namespace

double mean_flow_mb(ServiceCategory c) {
  using enum ServiceCategory;
  switch (c) {
    case kVideoStreaming:
      return 40.0;
    case kMusic:
      return 8.0;
    case kSocial:
      return 5.0;
    case kMessaging:
      return 0.8;
    case kNavigation:
      return 1.5;
    case kWork:
      return 6.0;
    case kMail:
      return 1.0;
    case kShopping:
      return 3.0;
    case kAppStore:
      return 25.0;
    case kCloud:
      return 15.0;
    case kGaming:
      return 4.0;
    case kNews:
      return 2.0;
    case kSports:
      return 3.0;
    case kEntertainment:
      return 3.0;
  }
  return 3.0;
}

double downlink_fraction(ServiceCategory c) {
  using enum ServiceCategory;
  switch (c) {
    case kVideoStreaming:
      return 0.96;
    case kMusic:
      return 0.95;
    case kSocial:
      return 0.85;
    case kMessaging:
      return 0.60;
    case kNavigation:
      return 0.80;
    case kWork:
      return 0.70;
    case kMail:
      return 0.65;
    case kShopping:
      return 0.90;
    case kAppStore:
      return 0.97;
    case kCloud:
      return 0.45;  // uploads dominate backups
    case kGaming:
      return 0.80;
    case kNews:
      return 0.92;
    case kSports:
      return 0.92;
    case kEntertainment:
      return 0.90;
  }
  return 0.85;
}

FlowGenerator::FlowGenerator(const TemporalModel& temporal,
                             std::uint64_t seed, std::uint32_t ecgi_base,
                             double unknown_sni_fraction)
    : temporal_(&temporal),
      seed_(seed),
      ecgi_base_(ecgi_base),
      unknown_sni_fraction_(unknown_sni_fraction) {
  ICN_REQUIRE(unknown_sni_fraction >= 0.0 && unknown_sni_fraction <= 1.0,
              "unknown SNI fraction");
}

std::vector<FlowRecord> FlowGenerator::make_flows(std::size_t antenna,
                                                  std::size_t service,
                                                  std::int64_t hour,
                                                  double mb) const {
  std::vector<FlowRecord> flows;
  if (mb <= 0.0) return flows;
  const auto& catalog = temporal_->demand().archetypes().catalog();
  const Service& svc = catalog.at(service);
  Rng rng(icn::util::derive_seed(
      seed_, kFlowStream,
      icn::util::derive_seed(antenna, service,
                             static_cast<std::uint64_t>(hour))));

  // Number of sessions: at least 1, Poisson around volume / mean flow size.
  const double mean_mb = mean_flow_mb(svc.category);
  const std::size_t n =
      1 + static_cast<std::size_t>(rng.poisson(mb / mean_mb));
  // Random positive session weights, then scale so volumes sum to mb exactly.
  std::vector<double> weights(n);
  double total_w = 0.0;
  for (auto& w : weights) {
    w = rng.gamma(1.2, 1.0);
    total_w += w;
  }

  const std::uint32_t antenna_id =
      temporal_->demand().topology().indoor()[antenna].id;
  const std::uint32_t dst_base = fnv1a(svc.signature);
  const double down_frac = downlink_fraction(svc.category);
  static constexpr const char* kPrefixes[] = {"", "api.", "cdn.", "edge."};

  flows.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    FlowRecord f;
    f.ecgi = ecgi_of(antenna_id);
    f.start_hour = hour;
    f.src_ip = 0x0A000000U |
               static_cast<std::uint32_t>(rng.uniform_index(1U << 24));
    f.dst_ip = dst_base ^ static_cast<std::uint32_t>(rng.uniform_index(16));
    f.src_port = static_cast<std::uint16_t>(49152 + rng.uniform_index(16384));
    f.dst_port = 443;
    f.protocol = rng.bernoulli(0.3) ? Protocol::kUdp : Protocol::kTcp;
    if (rng.bernoulli(unknown_sni_fraction_)) {
      // ESNI / unsignatured traffic: the probe will fail to classify it.
      f.sni = "opaque-" + std::to_string(rng.uniform_index(100000)) +
              ".invalid";
    } else {
      f.sni = std::string(kPrefixes[rng.uniform_index(4)]) +
              std::string(svc.signature);
    }
    const double volume_mb = mb * weights[s] / total_w;
    const double bytes = volume_mb * 1.0e6;
    f.down_bytes = bytes * down_frac;
    f.up_bytes = bytes * (1.0 - down_frac);
    f.duration_s = static_cast<std::uint32_t>(
        1 + rng.uniform_index(3599));
    flows.push_back(std::move(f));
  }
  return flows;
}

std::vector<FlowRecord> FlowGenerator::flows_for_hour(
    std::size_t antenna, std::size_t service, std::int64_t hour) const {
  ICN_REQUIRE(hour >= 0 && hour < temporal_->period().num_hours(),
              "hour index");
  const auto series = temporal_->hourly_service_series(antenna, service);
  return make_flows(antenna, service, hour,
                    series[static_cast<std::size_t>(hour)]);
}

std::vector<FlowRecord> FlowGenerator::flows_for_antenna(
    std::size_t antenna, std::int64_t first_hour,
    std::int64_t last_hour) const {
  ICN_REQUIRE(first_hour >= 0 && first_hour <= last_hour &&
                  last_hour <= temporal_->period().num_hours(),
              "hour range");
  std::vector<FlowRecord> flows;
  const auto& catalog = temporal_->demand().archetypes().catalog();
  for (std::size_t j = 0; j < catalog.size(); ++j) {
    const auto series = temporal_->hourly_service_series(antenna, j);
    for (std::int64_t t = first_hour; t < last_hour; ++t) {
      auto batch =
          make_flows(antenna, j, t, series[static_cast<std::size_t>(t)]);
      flows.insert(flows.end(), std::make_move_iterator(batch.begin()),
                   std::make_move_iterator(batch.end()));
    }
  }
  return flows;
}

}  // namespace icn::traffic
