// The mobile-service catalogue: M = 73 services spanning the activity range
// the paper describes (social networking, messaging, audio/video streaming,
// transportation, professional activities, well-being, ...).
//
// Each service carries:
//  * a category (used by the behavioural archetypes to shape service mixes),
//  * a global popularity weight (heavy-tailed, video-dominated, as in any
//    national mobile network),
//  * a DPI signature (an SNI-style domain the probe's classifier matches),
//  * a diurnal profile (hour-of-day modulation used by the temporal models).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace icn::traffic {

/// Functional category of a mobile service.
enum class ServiceCategory : int {
  kVideoStreaming = 0,
  kMusic,
  kSocial,
  kMessaging,
  kNavigation,
  kWork,
  kMail,
  kShopping,
  kAppStore,
  kCloud,
  kGaming,
  kNews,
  kSports,
  kEntertainment,
};

/// Number of service categories.
inline constexpr std::size_t kNumServiceCategories = 14;

/// Human-readable category name.
[[nodiscard]] const char* category_name(ServiceCategory c);

/// Hour-of-day usage shape of a service (before environment effects).
enum class DiurnalProfile : int {
  kFlat = 0,     ///< No hour preference.
  kMorning,      ///< Morning-heavy (news).
  kCommute,      ///< Peaks at 7:30-9:30 and 17:30-19:30 (music, transport).
  kWorkHours,    ///< 9:00-17:30 plateau (collaboration, mail).
  kDaytime,      ///< 10:00-20:00 plateau (shopping, social).
  kEvening,      ///< 18:00-23:00 peak (video streaming, gaming).
  kNight,        ///< Late evening into the night (long-form streaming).
  kPostEvent,    ///< Shifted ~2h after venue events (vehicular navigation).
};

/// One catalogued mobile service.
struct Service {
  std::string_view name;       ///< Display name, e.g. "Spotify".
  ServiceCategory category = ServiceCategory::kEntertainment;
  double popularity = 0.0;     ///< Relative share of nationwide traffic.
  std::string_view signature;  ///< SNI-style DPI signature, e.g. "spotify.com".
  DiurnalProfile diurnal = DiurnalProfile::kFlat;
};

/// The full 73-service catalogue used throughout the workbench.
class ServiceCatalog {
 public:
  /// Builds the fixed catalogue (M = 73).
  ServiceCatalog();

  /// Number of services (73).
  [[nodiscard]] std::size_t size() const { return services_.size(); }

  /// Service at index j. Requires j < size().
  [[nodiscard]] const Service& at(std::size_t j) const;

  /// All services in index order.
  [[nodiscard]] std::span<const Service> all() const { return services_; }

  /// Index of the service with the given display name (exact match).
  [[nodiscard]] std::optional<std::size_t> index_of(
      std::string_view name) const;

  /// Index of the service whose DPI signature matches the given SNI host
  /// (suffix match: "api.spotify.com" matches "spotify.com").
  [[nodiscard]] std::optional<std::size_t> classify_sni(
      std::string_view host) const;

  /// Popularity weights normalized to sum to 1.
  [[nodiscard]] const std::vector<double>& popularity_shares() const {
    return popularity_shares_;
  }

  /// Indices of all services in a category.
  [[nodiscard]] std::vector<std::size_t> of_category(
      ServiceCategory c) const;

 private:
  std::vector<Service> services_;
  std::vector<double> popularity_shares_;
};

}  // namespace icn::traffic
