#include "util/calendar.h"

#include <array>
#include <cstdio>

#include "util/error.h"

namespace icn::util {
namespace {

bool is_leap(int y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

int days_in_month(int y, int m) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (m == 2 && is_leap(y)) return 29;
  return kDays[static_cast<std::size_t>(m - 1)];
}

}  // namespace

bool is_weekend(Weekday d) {
  return d == Weekday::kSaturday || d == Weekday::kSunday;
}

const char* weekday_name(Weekday d) {
  static constexpr std::array<const char*, 7> kNames = {
      "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  return kNames[static_cast<std::size_t>(d)];
}

std::int64_t Date::days_since_epoch() const {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  const int y = year - (month <= 2 ? 1 : 0);
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - static_cast<int>(era) * 400);
  const unsigned doy = static_cast<unsigned>(
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

Date Date::from_days_since_epoch(std::int64_t days) {
  const std::int64_t z = days + 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const auto doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  return Date{static_cast<int>(y + (m <= 2 ? 1 : 0)), static_cast<int>(m),
              static_cast<int>(d)};
}

Weekday Date::weekday() const {
  // 1970-01-01 is a Thursday (index 3 from Monday).
  const std::int64_t d = days_since_epoch() + 3;
  const std::int64_t w = ((d % 7) + 7) % 7;
  return static_cast<Weekday>(w);
}

Date Date::plus_days(std::int64_t n) const {
  return from_days_since_epoch(days_since_epoch() + n);
}

std::string Date::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

bool Date::is_valid() const {
  if (month < 1 || month > 12) return false;
  if (day < 1 || day > days_in_month(year, month)) return false;
  return true;
}

std::int64_t days_between(const Date& from, const Date& to) {
  return to.days_since_epoch() - from.days_since_epoch();
}

DateRange::DateRange(Date first, Date last)
    : first_(first), last_(last), num_days_(days_between(first, last) + 1) {
  ICN_REQUIRE(first.is_valid() && last.is_valid(), "DateRange valid dates");
  ICN_REQUIRE(num_days_ >= 1, "DateRange first <= last");
}

Date DateRange::date_at(std::int64_t d) const {
  ICN_REQUIRE(d >= 0 && d < num_days_, "DateRange day index");
  return first_.plus_days(d);
}

Weekday DateRange::weekday_at(std::int64_t d) const {
  return date_at(d).weekday();
}

std::int64_t DateRange::day_of_hour(std::int64_t h) const {
  ICN_REQUIRE(h >= 0 && h < num_hours(), "DateRange hour index");
  return h / 24;
}

int DateRange::hour_of_day(std::int64_t h) const {
  ICN_REQUIRE(h >= 0 && h < num_hours(), "DateRange hour index");
  return static_cast<int>(h % 24);
}

bool DateRange::contains(const Date& d) const {
  return d >= first_ && d <= last_;
}

std::int64_t DateRange::index_of(const Date& d) const {
  ICN_REQUIRE(contains(d), "date outside range");
  return days_between(first_, d);
}

DateRange study_period() {
  return DateRange(Date{2022, 11, 21}, Date{2023, 1, 24});
}

DateRange temporal_window() {
  return DateRange(Date{2023, 1, 4}, Date{2023, 1, 24});
}

Date strike_day() { return Date{2023, 1, 19}; }

}  // namespace icn::util
