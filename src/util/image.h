// Minimal grayscale image output (binary PGM, P5): lets the benches and
// examples dump the paper's heatmaps as actual images viewable with any
// image tool, in addition to the ASCII renderings.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>

namespace icn::util {

/// Writes a row-major matrix as an 8-bit binary PGM, mapping [lo, hi] to
/// [0, 255] (values outside the range are clamped). Requires
/// values.size() == rows * cols, rows/cols > 0 and lo < hi.
void write_pgm(std::ostream& out, std::span<const double> values,
               std::size_t rows, std::size_t cols, double lo, double hi);

/// Convenience: writes the PGM to a file path; returns false on I/O error.
[[nodiscard]] bool write_pgm_file(const std::string& path,
                                  std::span<const double> values,
                                  std::size_t rows, std::size_t cols,
                                  double lo, double hi);

}  // namespace icn::util
