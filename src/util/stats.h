// Descriptive statistics used across the analysis pipeline.
//
// All functions operate on spans of double and are pure. Quantile uses the
// linear-interpolation convention (type 7 in the Hyndman–Fan taxonomy), which
// matches what the paper's (Python) tooling would have produced.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace icn::util {

/// Arithmetic mean. Requires non-empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population variance (divides by n). Requires non-empty input.
[[nodiscard]] double variance(std::span<const double> xs);

/// Sample standard deviation (divides by n-1); returns 0 for n < 2.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Median (linear interpolation between middle elements). Requires non-empty.
[[nodiscard]] double median(std::span<const double> xs);

/// q-quantile, q in [0,1], linear interpolation. Requires non-empty input.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// In-place variants for hot paths: sort the caller's buffer instead of
/// copying it, so batch loops can reuse arena scratch with zero allocations.
/// Same value as quantile()/median() on the same data.
[[nodiscard]] double quantile_inplace(std::span<double> xs, double q);
[[nodiscard]] double median_inplace(std::span<double> xs);

/// Minimum / maximum. Require non-empty input.
[[nodiscard]] double min_value(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);

/// Sum (Kahan-compensated, stable for long traffic series).
[[nodiscard]] double sum(std::span<const double> xs);

/// Pearson correlation coefficient; returns 0 when either side is constant.
/// Requires xs.size() == ys.size() and non-empty.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Fixed-width histogram.
struct Histogram {
  double lo = 0.0;               ///< Left edge of the first bin.
  double hi = 0.0;               ///< Right edge of the last bin.
  std::vector<std::size_t> counts;  ///< counts[i] covers [edge_i, edge_{i+1}).

  /// Left edge of bin i.
  [[nodiscard]] double bin_left(std::size_t i) const;
  /// Width of each bin.
  [[nodiscard]] double bin_width() const;
  /// Total number of samples.
  [[nodiscard]] std::size_t total() const;
};

/// Builds a histogram with `bins` equal-width bins over [lo, hi]; samples
/// outside the range are clamped into the first/last bin. Requires bins > 0
/// and lo < hi.
[[nodiscard]] Histogram make_histogram(std::span<const double> xs, double lo,
                                       double hi, std::size_t bins);

/// Normalizes values by their maximum (all zero stays zero).
[[nodiscard]] std::vector<double> normalize_by_max(std::span<const double> xs);

/// Adjusted Rand Index between two labelings of the same points, in
/// [-1, 1] with 1 = identical partitions. Requires equal non-zero sizes.
[[nodiscard]] double adjusted_rand_index(std::span<const int> a,
                                         std::span<const int> b);

}  // namespace icn::util
