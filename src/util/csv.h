// Small CSV reader/writer used to export the processed datasets
// (the paper promises releasing its processed service-consumption data;
// examples/export_dataset reproduces that deliverable).
//
// Supports RFC-4180-style quoting: fields containing comma, quote or newline
// are quoted, embedded quotes are doubled.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace icn::util {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Writes CSV rows with proper quoting.
class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out);

  /// Writes one row (quoting fields as needed) followed by '\n'.
  void write_row(const CsvRow& fields);

  /// Convenience: formats doubles with max_digits10 precision.
  void write_numeric_row(const std::vector<double>& values);

 private:
  std::ostream* out_;
};

/// Escapes a single CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Parses a full CSV document (handles quoted fields and embedded newlines).
/// Throws PreconditionError on unterminated quotes.
[[nodiscard]] std::vector<CsvRow> parse_csv(const std::string& text);

/// Parses one CSV line without embedded newlines (fast path for tests).
[[nodiscard]] CsvRow parse_csv_line(const std::string& line);

}  // namespace icn::util
