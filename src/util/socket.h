// Thin POSIX socket helpers shared by the serving layer, its tools, and the
// tests: loopback TCP listeners with ephemeral-port support, non-blocking
// mode, and EINTR-safe read/write wrappers. Everything here is mechanism —
// policy (framing, backpressure, rate limits) lives in src/serve.
//
// All failures throw icn::util::IoError naming the operation, consistent
// with the store/stream I/O boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace icn::util {

/// RAII file descriptor. Closes on destruction; movable, not copyable.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  [[nodiscard]] int release();
  void close();

 private:
  int fd_ = -1;
};

/// Puts a descriptor in non-blocking mode. Throws IoError on failure.
void set_nonblocking(int fd);

/// Disables Nagle batching on a TCP socket (request/reply traffic sends
/// small frames that must not wait for an ACK). Best-effort: failure is
/// ignored, e.g. for non-TCP descriptors in tests.
void set_tcp_nodelay(int fd);

/// A non-blocking loopback (127.0.0.1) TCP listener. `port` 0 binds an
/// ephemeral port; the bound port is available as port().
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port, int backlog = 128);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_.get(); }

  /// Accepts one pending connection as a non-blocking descriptor. Returns an
  /// invalid Fd when no connection is pending (EAGAIN). Throws IoError on
  /// other failures.
  [[nodiscard]] Fd accept_nonblocking();

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Blocking loopback connect, for clients (tools, tests, benches).
[[nodiscard]] Fd connect_loopback(std::uint16_t port);

/// Loopback connect with a deadline. Returns an invalid Fd on timeout or
/// connection failure, with the failing errno in *error_out (0 = timeout);
/// throws IoError only on local setup failures (socket/fcntl). The returned
/// descriptor is in blocking mode with TCP_NODELAY set. timeout_ms < 0
/// means wait indefinitely.
[[nodiscard]] Fd try_connect_loopback(std::uint16_t port, int timeout_ms,
                                      int* error_out);

/// EINTR-safe poll() on one descriptor: waits up to timeout_ms for any of
/// `events`, recomputing the remaining time across signal interruptions.
/// Returns the ready revents mask, or 0 on timeout. timeout_ms < 0 waits
/// indefinitely. Throws IoError on hard poll failures.
short poll_fd(int fd, short events, int timeout_ms);

/// One non-blocking read. Returns the byte count (> 0), 0 on EAGAIN, and -1
/// on orderly EOF. Throws IoError on hard errors (connection reset is
/// reported as EOF, not an error: a vanished client is normal server load).
std::ptrdiff_t read_some(int fd, std::span<std::uint8_t> buf);

/// One non-blocking write. Returns bytes written (>= 0; 0 on EAGAIN).
/// Throws IoError on hard errors other than EPIPE/ECONNRESET, which are
/// reported as -1 (peer is gone).
std::ptrdiff_t write_some(int fd, std::span<const std::uint8_t> buf);

/// Blocking helpers for client-side request/reply exchanges.
void write_all(int fd, std::span<const std::uint8_t> buf);
/// Reads exactly buf.size() bytes. Returns false on clean EOF before the
/// first byte; throws IoError on EOF mid-message or hard errors.
bool read_exact(int fd, std::span<std::uint8_t> buf);

}  // namespace icn::util
