// Minimal proleptic-Gregorian calendar, sufficient for the study period of
// the paper (21 Nov 2022 -> 24 Jan 2023) and the temporal analysis window
// (04 Jan -> 24 Jan 2023).
//
// Conversions use Howard Hinnant's civil-days algorithms; day 0 of the epoch
// is 1970-01-01 (a Thursday).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace icn::util {

/// Day of week, ISO numbering semantics but 0-based from Monday.
enum class Weekday : int {
  kMonday = 0,
  kTuesday = 1,
  kWednesday = 2,
  kThursday = 3,
  kFriday = 4,
  kSaturday = 5,
  kSunday = 6,
};

/// True for Saturday / Sunday.
[[nodiscard]] bool is_weekend(Weekday d);

/// Short English name, e.g. "Mon".
[[nodiscard]] const char* weekday_name(Weekday d);

/// A civil (proleptic Gregorian) date.
struct Date {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31, must be valid for the month

  /// Days since 1970-01-01 (can be negative).
  [[nodiscard]] std::int64_t days_since_epoch() const;

  /// Inverse of days_since_epoch.
  [[nodiscard]] static Date from_days_since_epoch(std::int64_t days);

  /// Day of week of this date.
  [[nodiscard]] Weekday weekday() const;

  /// This date shifted by n days (n may be negative).
  [[nodiscard]] Date plus_days(std::int64_t n) const;

  /// "YYYY-MM-DD".
  [[nodiscard]] std::string to_string() const;

  /// True when year/month/day form a real calendar date.
  [[nodiscard]] bool is_valid() const;

  friend auto operator<=>(const Date&, const Date&) = default;
};

/// Number of days from `from` to `to` (to - from; negative if to < from).
[[nodiscard]] std::int64_t days_between(const Date& from, const Date& to);

/// A contiguous range of whole days, with hour indexing helpers.
/// Hour index h in [0, num_hours()) corresponds to day h/24, hour-of-day h%24.
class DateRange {
 public:
  /// Inclusive range [first, last]. Requires first <= last and valid dates.
  DateRange(Date first, Date last);

  [[nodiscard]] const Date& first() const { return first_; }
  [[nodiscard]] const Date& last() const { return last_; }
  [[nodiscard]] std::int64_t num_days() const { return num_days_; }
  [[nodiscard]] std::int64_t num_hours() const { return num_days_ * 24; }

  /// Date of day index d in [0, num_days()).
  [[nodiscard]] Date date_at(std::int64_t d) const;
  /// Weekday of day index d.
  [[nodiscard]] Weekday weekday_at(std::int64_t d) const;
  /// Day index of an hour index.
  [[nodiscard]] std::int64_t day_of_hour(std::int64_t h) const;
  /// Hour-of-day (0..23) of an hour index.
  [[nodiscard]] int hour_of_day(std::int64_t h) const;
  /// True when the given date falls inside the range.
  [[nodiscard]] bool contains(const Date& d) const;
  /// Day index of a date inside the range. Requires contains(d).
  [[nodiscard]] std::int64_t index_of(const Date& d) const;

 private:
  Date first_;
  Date last_;
  std::int64_t num_days_;
};

/// The paper's full measurement window: 21 Nov 2022 -> 24 Jan 2023 (65 days).
[[nodiscard]] DateRange study_period();

/// The temporal-analysis window of Figs. 10-11: 04 Jan -> 24 Jan 2023.
[[nodiscard]] DateRange temporal_window();

/// The French national general-strike day called out in Sec. 6: 19 Jan 2023.
[[nodiscard]] Date strike_day();

}  // namespace icn::util
