// ASCII renderers for the paper's figures.
//
// The benches print every figure both as numeric rows (for comparison with
// the paper) and as an ASCII rendering (heatmap / histogram / bar chart /
// Sankey) so the qualitative shape is visible directly in terminal output.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/stats.h"

namespace icn::util {

/// Renders a histogram as horizontal bars, one line per bin:
///   [lo, hi)  count  ########
[[nodiscard]] std::string render_histogram(const Histogram& h,
                                           std::size_t max_bar = 50);

/// Renders one horizontal bar scaled so that `value == max_value` gives
/// `width` filled cells.
[[nodiscard]] std::string render_bar(double value, double max_value,
                                     std::size_t width = 40);

/// Renders a matrix as an ASCII heatmap using a 10-level grey ramp
/// " .:-=+*#%@", mapping [lo, hi] -> ramp. One text row per matrix row.
/// `values` is row-major with `cols` columns.
[[nodiscard]] std::string render_heatmap(std::span<const double> values,
                                         std::size_t rows, std::size_t cols,
                                         double lo, double hi);

/// Like render_heatmap but for signed data in [-1, 1]: negative values render
/// with 'o.- ' shades and positive with ' +*#@' shades, matching the paper's
/// red/blue RSCA colormap semantics (blue = over-utilization = '#'-like).
[[nodiscard]] std::string render_signed_heatmap(std::span<const double> values,
                                                std::size_t rows,
                                                std::size_t cols);

/// One flow of a Sankey diagram (Fig. 6): source -> target with weight.
struct SankeyFlow {
  std::string source;
  std::string target;
  double weight = 0.0;
};

/// Renders Sankey flows as "source =====> target (weight)" lines, bar width
/// proportional to weight; flows below min_fraction of the total are merged
/// into an "(other)" line per source.
[[nodiscard]] std::string render_sankey(std::vector<SankeyFlow> flows,
                                        double min_fraction = 0.01);

/// Renders a time series (e.g. one day of traffic) as a sparkline using
/// the 8-level block ramp. Empty input renders empty.
[[nodiscard]] std::string render_sparkline(std::span<const double> values);

}  // namespace icn::util
