#include "util/rng.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace icn::util {
namespace {

constexpr std::uint64_t kSplitMixGamma = 0x9e3779b97f4a7c15ULL;

std::uint64_t splitmix64(std::uint64_t& x) {
  x += kSplitMixGamma;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t seed) {
  std::uint64_t x = seed;
  return splitmix64(x);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a) {
  std::uint64_t x = seed;
  std::uint64_t h = splitmix64(x);
  x = h ^ a;
  return splitmix64(x);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a,
                          std::uint64_t b) {
  return derive_seed(derive_seed(seed, a), b);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) {
  return derive_seed(derive_seed(seed, a, b), c);
}

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through SplitMix64 as recommended by the xoshiro authors.
  std::uint64_t x = seed;
  for (auto& s : state_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ICN_REQUIRE(lo <= hi, "uniform range");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  ICN_REQUIRE(n > 0, "uniform_index requires n > 0");
  // Lemire-style rejection-free-enough bounded draw; bias is negligible for
  // the n used here, but we still reject the unfair zone for exactness.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ICN_REQUIRE(lo <= hi, "uniform_int range");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  // Box–Muller without caching the second variate: reproducibility across
  // call sites matters more than saving one log/sqrt.
  double u1 = uniform();
  while (u1 <= std::numeric_limits<double>::min()) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double sigma) {
  ICN_REQUIRE(sigma >= 0.0, "normal sigma");
  return mean + sigma * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) {
  ICN_REQUIRE(lambda > 0.0, "exponential rate");
  double u = uniform();
  while (u <= std::numeric_limits<double>::min()) u = uniform();
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double lambda) {
  ICN_REQUIRE(lambda >= 0.0, "poisson mean");
  if (lambda == 0.0) return 0;
  if (lambda > 256.0) {
    // Normal approximation, adequate for traffic volumes at this scale.
    const double draw = normal(lambda, std::sqrt(lambda));
    return draw <= 0.5 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
  }
  // Knuth's product method.
  const double limit = std::exp(-lambda);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

double Rng::gamma(double shape, double scale) {
  ICN_REQUIRE(shape > 0.0 && scale > 0.0, "gamma parameters");
  if (shape < 1.0) {
    // Boost to shape+1 and correct (Marsaglia–Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = uniform();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v * scale;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

std::vector<double> Rng::dirichlet(std::span<const double> alphas) {
  ICN_REQUIRE(!alphas.empty(), "dirichlet alphas");
  std::vector<double> out(alphas.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    ICN_REQUIRE(alphas[i] > 0.0, "dirichlet alpha > 0");
    out[i] = gamma(alphas[i], 1.0);
    sum += out[i];
  }
  ICN_REQUIRE(sum > 0.0, "dirichlet degenerate draw");
  for (auto& v : out) v /= sum;
  return out;
}

std::size_t Rng::categorical(std::span<const double> weights) {
  ICN_REQUIRE(!weights.empty(), "categorical weights");
  double total = 0.0;
  for (const double w : weights) {
    ICN_REQUIRE(w >= 0.0, "categorical weight >= 0");
    total += w;
  }
  ICN_REQUIRE(total > 0.0, "categorical weight sum > 0");
  const double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // numerical edge: target == total
}

}  // namespace icn::util
