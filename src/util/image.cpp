#include "util/image.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "util/error.h"

namespace icn::util {

void write_pgm(std::ostream& out, std::span<const double> values,
               std::size_t rows, std::size_t cols, double lo, double hi) {
  ICN_REQUIRE(rows > 0 && cols > 0, "pgm dimensions");
  ICN_REQUIRE(values.size() == rows * cols, "pgm shape");
  ICN_REQUIRE(lo < hi, "pgm range");
  out << "P5\n" << cols << " " << rows << "\n255\n";
  const double scale = 255.0 / (hi - lo);
  std::string row(cols, '\0');
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double t =
          std::clamp((values[r * cols + c] - lo) * scale, 0.0, 255.0);
      row[c] = static_cast<char>(static_cast<unsigned char>(t + 0.5));
    }
    out.write(row.data(), static_cast<std::streamsize>(cols));
  }
}

bool write_pgm_file(const std::string& path, std::span<const double> values,
                    std::size_t rows, std::size_t cols, double lo,
                    double hi) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_pgm(out, values, rows, cols, lo, hi);
  return static_cast<bool>(out);
}

}  // namespace icn::util
