#include "util/arena.h"

#include <algorithm>

#include "util/error.h"

namespace icn::util {

namespace {

std::size_t align_up(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t initial_block_bytes)
    : initial_block_bytes_(std::max<std::size_t>(initial_block_bytes, 64)) {}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  ICN_REQUIRE(align != 0 && (align & (align - 1)) == 0,
              "Arena: alignment must be a power of two");
  if (!blocks_.empty()) {
    Block& b = blocks_[current_];
    // Align on the absolute address: block bases are only max_align_t-aligned,
    // so over-aligned (e.g. 64-byte) requests cannot use a relative offset.
    const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::size_t offset = align_up(base + b.used, align) - base;
    if (offset + bytes <= b.capacity) {
      b.used = offset + bytes;
      return b.data.get() + offset;
    }
  }
  return allocate_slow(bytes, align);
}

void* Arena::allocate_slow(std::size_t bytes, std::size_t align) {
  // Advance through already-reserved blocks (left over from a rewind) before
  // growing. Skipped blocks stay at used == their rewound value; the next
  // rewind puts the cursor back anyway.
  while (current_ + 1 < blocks_.size()) {
    ++current_;
    Block& b = blocks_[current_];
    b.used = 0;
    const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::size_t offset = align_up(base, align) - base;
    if (offset + bytes <= b.capacity) {
      b.used = offset + bytes;
      return b.data.get() + offset;
    }
  }
  std::size_t cap = blocks_.empty() ? initial_block_bytes_
                                    : blocks_.back().capacity * 2;
  // `align - 1` headroom guarantees the aligned offset fits whatever the
  // block base alignment turns out to be.
  cap = std::max(cap, bytes + align - 1);
  Block b;
  b.data = std::make_unique<std::byte[]>(cap);
  b.capacity = cap;
  blocks_.push_back(std::move(b));
  current_ = blocks_.size() - 1;
  Block& nb = blocks_[current_];
  const std::size_t offset =
      align_up(reinterpret_cast<std::uintptr_t>(nb.data.get()), align) -
      reinterpret_cast<std::uintptr_t>(nb.data.get());
  nb.used = offset + bytes;
  return nb.data.get() + offset;
}

void Arena::rewind(Mark m) {
  if (blocks_.empty()) return;
  ICN_REQUIRE(m.block < blocks_.size(), "Arena: rewind past reserved blocks");
  current_ = m.block;
  blocks_[current_].used = m.used;
  for (std::size_t i = current_ + 1; i < blocks_.size(); ++i) {
    blocks_[i].used = 0;
  }
}

std::size_t Arena::bytes_reserved() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.capacity;
  return total;
}

std::size_t Arena::bytes_used() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i <= current_ && i < blocks_.size(); ++i) {
    total += blocks_[i].used;
  }
  return total;
}

Arena& scratch_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace icn::util
