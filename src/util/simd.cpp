#include "util/simd.h"

#include <cstdlib>
#include <string>

#include "util/error.h"

#if defined(__x86_64__) || defined(__i386__)
#define ICN_SIMD_X86 1
#endif

namespace icn::util {

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "?";
}

SimdLevel max_supported_simd_level() {
#if defined(ICN_SIMD_X86)
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
#endif
  return SimdLevel::kScalar;
}

std::optional<SimdLevel> parse_simd_level(const char* value) {
  if (value == nullptr) return std::nullopt;
  std::string v;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p == ' ' || *p == '\t') continue;
    v += (*p >= 'A' && *p <= 'Z') ? static_cast<char>(*p - 'A' + 'a') : *p;
  }
  if (v.empty()) return std::nullopt;
  if (v == "scalar") return SimdLevel::kScalar;
  if (v == "sse2") return SimdLevel::kSse2;
  if (v == "avx2") return SimdLevel::kAvx2;
  if (v == "avx512") return SimdLevel::kAvx512;
  throw EnvConfigError(std::string("ICN_SIMD=\"") + value +
                       "\" is not a SIMD level (expected scalar, sse2, avx2, "
                       "or avx512; unset = auto-detect)");
}

SimdLevel simd_level() {
  // Resolved once; a throwing resolution (garbage or unsupported ICN_SIMD)
  // is retried — and rethrown — on every call, so the error cannot be lost.
  static const SimdLevel level = [] {
    const auto requested = parse_simd_level(std::getenv("ICN_SIMD"));
    const SimdLevel supported = max_supported_simd_level();
    if (!requested.has_value()) return supported;
    if (*requested > supported) {
      throw EnvConfigError(
          std::string("ICN_SIMD=") + simd_level_name(*requested) +
          " requested but this CPU only supports " +
          simd_level_name(supported));
    }
    return *requested;
  }();
  return level;
}

bool cpu_supports_crc32c() {
#if defined(ICN_SIMD_X86)
  return __builtin_cpu_supports("sse4.2");
#else
  return false;
#endif
}

}  // namespace icn::util
