#include "util/simd.h"

#include <cstdlib>
#include <string>

#include "util/error.h"

#if defined(__x86_64__) || defined(__i386__)
#define ICN_SIMD_X86 1
#endif

namespace icn::util {

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2Fma:
      return "avx2fma";
  }
  return "?";
}

SimdLevel max_supported_simd_level() {
#if defined(ICN_SIMD_X86)
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
#endif
  return SimdLevel::kScalar;
}

bool cpu_supports_fma() {
#if defined(ICN_SIMD_X86)
  return __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

std::optional<SimdLevel> parse_simd_level(const char* value) {
  if (value == nullptr) return std::nullopt;
  std::string v;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p == ' ' || *p == '\t') continue;
    v += (*p >= 'A' && *p <= 'Z') ? static_cast<char>(*p - 'A' + 'a') : *p;
  }
  if (v.empty()) return std::nullopt;
  if (v == "scalar") return SimdLevel::kScalar;
  if (v == "sse2") return SimdLevel::kSse2;
  if (v == "avx2") return SimdLevel::kAvx2;
  if (v == "avx512") return SimdLevel::kAvx512;
  if (v == "avx2fma") return SimdLevel::kAvx2Fma;
  throw EnvConfigError(std::string("ICN_SIMD=\"") + value +
                       "\" is not a SIMD level (expected scalar, sse2, avx2, "
                       "avx512, or avx2fma; unset = auto-detect)");
}

SimdLevel resolve_simd_level(std::optional<SimdLevel> requested,
                             SimdLevel supported, bool has_fma) {
  if (!requested.has_value()) return supported;
  if (*requested == SimdLevel::kAvx2Fma) {
    // The FMA lane sits outside the scalar..avx512 total order: it needs
    // AVX2-class vectors plus the FMA3 cpuid bit, checked independently of
    // which non-FMA level is widest.
    if (supported < SimdLevel::kAvx2 || !has_fma) {
      throw EnvConfigError(
          "ICN_SIMD=avx2fma requested but this CPU lacks AVX2+FMA (widest "
          "supported non-FMA level: " +
          std::string(simd_level_name(supported)) + ")");
    }
    return SimdLevel::kAvx2Fma;
  }
  if (*requested > supported) {
    throw EnvConfigError(std::string("ICN_SIMD=") +
                         simd_level_name(*requested) +
                         " requested but this CPU only supports " +
                         simd_level_name(supported));
  }
  return *requested;
}

SimdLevel simd_level() {
  // Resolved once; a throwing resolution (garbage or unsupported ICN_SIMD)
  // is retried — and rethrown — on every call, so the error cannot be lost.
  static const SimdLevel level =
      resolve_simd_level(parse_simd_level(std::getenv("ICN_SIMD")),
                         max_supported_simd_level(), cpu_supports_fma());
  return level;
}

bool cpu_supports_crc32c() {
#if defined(ICN_SIMD_X86)
  return __builtin_cpu_supports("sse4.2");
#else
  return false;
#endif
}

}  // namespace icn::util
