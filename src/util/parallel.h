// Deterministic chunked thread-pool parallelism for the hot analysis paths.
//
// The pipeline runs over thousands of antennas x 73 services x ~1,560 hours,
// so the dominant kernels (pairwise distances, NN-chain scans, silhouette,
// forest training, SHAP batches, demand-tensor fill) are embarrassingly
// parallel — but every output of this workbench must stay exactly
// reproducible from a single seed. The contract here is therefore stronger
// than "a thread pool":
//
//  * Work is split into chunks whose boundaries depend ONLY on the problem
//    size and the caller-chosen grain, never on the number of threads. Which
//    thread executes a chunk is scheduling noise; what each chunk computes is
//    fixed.
//  * parallel_for chunks write to disjoint outputs (caller's obligation), so
//    results are bit-identical to a serial run.
//  * parallel_reduce stores one partial per chunk and folds the partials
//    left-to-right on the calling thread, so floating-point results are
//    identical for 1 thread and N threads.
//
// Scheduling: chunks are dealt into per-lane ranges (one lane per thread,
// contiguous blocks in chunk order) and executed work-stealing style — each
// lane pops from the bottom of its own range and, when empty, steals from
// the top of another lane's range. Skewed workloads (shrinking upper-triangle
// rows, non-uniform antenna shards) therefore no longer strand idle lanes:
// a straggler's unstarted chunks migrate to whoever is free. Stealing moves
// chunks between threads but never changes what a chunk computes, so the
// bit-exactness contract is untouched. ThreadPool::Schedule::kStatic disables
// stealing (each lane runs only its own block) — kept as the measurable
// baseline for the scheduler benches and as a determinism cross-check.
//
// Sizing: the process-wide pool uses ICN_THREADS when set (>= 1), otherwise
// std::thread::hardware_concurrency(). A malformed ICN_THREADS value throws
// icn::util::EnvConfigError at first use instead of silently falling back.
// ThreadPool::ScopedOverride swaps in a differently-sized pool for tests and
// thread-scaling benches.
//
// Semantics:
//  * The calling thread participates in the work, so a "1-thread" pool runs
//    entirely inline and spawns nothing.
//  * Nested parallel_for/parallel_reduce from inside a pool task runs inline
//    serially (no deadlock, no oversubscription).
//  * An exception thrown by a chunk cancels the unstarted chunks; once every
//    in-flight chunk finished, the exception of the LOWEST-INDEXED chunk that
//    threw is rethrown on the calling thread (deterministic by chunk index,
//    not by wall-clock race order).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/error.h"

namespace icn::util {

/// Fixed-size pool of worker threads executing chunked jobs. One job runs at
/// a time per pool; submitting threads are serialized and participate in
/// their own job's chunks.
class ThreadPool {
 public:
  /// How chunks move between lanes. kSteal is the default everywhere;
  /// kStatic pins each lane to its dealt block (bench baseline only).
  enum class Schedule { kStatic, kSteal };

  /// Creates a pool with `num_threads` total lanes of execution (the caller
  /// counts as one, so `num_threads - 1` worker threads are spawned).
  /// Requires num_threads >= 1.
  explicit ThreadPool(std::size_t num_threads,
                      Schedule schedule = Schedule::kSteal);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes of execution (workers + the submitting thread).
  [[nodiscard]] std::size_t num_threads() const { return num_threads_; }

  /// Chunk scheduling policy of this pool.
  [[nodiscard]] Schedule schedule() const { return schedule_; }

  /// The process-wide pool used by parallel_for/parallel_reduce, created on
  /// first use with configured_threads() lanes.
  static ThreadPool& instance();

  /// The pool parallel_for/parallel_reduce would use right now: the innermost
  /// ScopedOverride when one is installed, else instance().
  static ThreadPool& active();

  /// Thread count the global pool is created with: ICN_THREADS when set to a
  /// positive integer, else hardware_concurrency() (at least 1). Throws
  /// EnvConfigError when ICN_THREADS holds garbage.
  [[nodiscard]] static std::size_t configured_threads();

  /// Parses an ICN_THREADS-style value. Returns 0 when the value is unset,
  /// empty, or the explicit "0" (all meaning "use the hardware default");
  /// returns the count (capped at 512) for a plain digit string. Any other
  /// value — negative, non-numeric, trailing junk — throws EnvConfigError:
  /// a typo must not silently hand the pool a default the operator did not
  /// choose.
  [[nodiscard]] static std::size_t parse_thread_count(const char* value);

  /// RAII override of the pool used by parallel_for/parallel_reduce, for
  /// determinism tests and thread-scaling benches. Install and remove from a
  /// single thread only; overrides nest (last installed wins).
  class ScopedOverride {
   public:
    explicit ScopedOverride(std::size_t num_threads,
                            Schedule schedule = Schedule::kSteal);
    ~ScopedOverride();
    ScopedOverride(const ScopedOverride&) = delete;
    ScopedOverride& operator=(const ScopedOverride&) = delete;

   private:
    std::unique_ptr<ThreadPool> pool_;
    ThreadPool* previous_;
  };

  /// Runs fn(0) ... fn(num_chunks - 1), dealing the chunk indices into
  /// per-lane ranges and (under kSteal) rebalancing them by stealing. Blocks
  /// until every started chunk finished; rethrows the exception of the
  /// lowest-indexed chunk that threw. Calls from inside a pool task run
  /// inline.
  void run_chunks(std::size_t num_chunks,
                  const std::function<void(std::size_t)>& fn);

 private:
  struct Job;

  void worker_loop(std::size_t lane);
  static void work_on(Job& job, std::size_t lane, Schedule schedule);
  static void record_error(Job& job, std::size_t chunk);

  std::size_t num_threads_ = 1;
  Schedule schedule_ = Schedule::kSteal;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_cv_;  // workers wait for a new job
  std::condition_variable done_cv_;  // submitter waits for drain
  Job* job_ = nullptr;               // guarded by mu_
  std::uint64_t generation_ = 0;     // guarded by mu_
  bool stop_ = false;                // guarded by mu_
  std::mutex submit_mu_;             // serializes concurrent submitters
};

namespace detail {

/// Splits [begin, end) into ceil((end-begin)/grain) fixed chunks and runs
/// chunk(chunk_index, chunk_begin, chunk_end) for each on the active pool.
/// Chunk boundaries depend only on (begin, end, grain) — never on threads.
void run_chunked(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& chunk);

/// Number of chunks run_chunked will produce. Requires grain > 0, begin <= end.
[[nodiscard]] inline std::size_t num_chunks(std::size_t begin, std::size_t end,
                                            std::size_t grain) {
  return (end - begin + grain - 1) / grain;
}

}  // namespace detail

/// Picks a grain for [begin, end) from the problem size and the active pool's
/// lane count, aiming for enough chunks per lane that stealing can rebalance
/// a skewed workload, and never below `min_grain`.
///
/// ONLY for disjoint-write parallel_for loops: their outputs are bit-identical
/// under ANY chunk decomposition, so a thread-count-dependent grain is safe.
/// Order-sensitive parallel_reduce folds must keep an explicit fixed grain —
/// their result depends on the chunk boundaries.
/// Requires min_grain > 0 and begin <= end.
[[nodiscard]] std::size_t adaptive_grain(std::size_t begin, std::size_t end,
                                         std::size_t min_grain = 1);

/// Runs body(lo, hi) over consecutive sub-ranges of [begin, end) of at most
/// `grain` indices each. The body must only write state owned by its range;
/// under that contract results are bit-identical to the serial loop.
/// Requires grain > 0 and begin <= end.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Chunked deterministic reduction: partial[c] = map_chunk(lo_c, hi_c) for
/// each fixed chunk, then identity `combine`d with the partials left-to-right
/// in chunk order on the calling thread. The result is identical for every
/// thread count (including 1). Requires grain > 0 and begin <= end.
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end,
                                std::size_t grain, T identity, MapFn&& map_chunk,
                                CombineFn&& combine) {
  ICN_REQUIRE(grain > 0, "parallel_reduce grain must be positive");
  ICN_REQUIRE(begin <= end, "parallel_reduce range");
  if (begin == end) return identity;
  std::vector<T> partials(detail::num_chunks(begin, end, grain), identity);
  detail::run_chunked(begin, end, grain,
                      [&](std::size_t c, std::size_t lo, std::size_t hi) {
                        partials[c] = map_chunk(lo, hi);
                      });
  T acc = std::move(identity);
  for (T& partial : partials) {
    acc = combine(std::move(acc), std::move(partial));
  }
  return acc;
}

}  // namespace icn::util
