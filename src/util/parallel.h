// Deterministic chunked thread-pool parallelism for the hot analysis paths.
//
// The pipeline runs over thousands of antennas x 73 services x ~1,560 hours,
// so the dominant kernels (pairwise distances, NN-chain scans, silhouette,
// forest training, SHAP batches, demand-tensor fill) are embarrassingly
// parallel — but every output of this workbench must stay exactly
// reproducible from a single seed. The contract here is therefore stronger
// than "a thread pool":
//
//  * Work is split into chunks whose boundaries depend ONLY on the problem
//    size and the caller-chosen grain, never on the number of threads. Which
//    thread executes a chunk is scheduling noise; what each chunk computes is
//    fixed.
//  * parallel_for chunks write to disjoint outputs (caller's obligation), so
//    results are bit-identical to a serial run.
//  * parallel_reduce stores one partial per chunk and folds the partials
//    left-to-right on the calling thread, so floating-point results are
//    identical for 1 thread and N threads.
//
// Sizing: the process-wide pool uses ICN_THREADS when set (>= 1), otherwise
// std::thread::hardware_concurrency(). ThreadPool::ScopedOverride swaps in a
// differently-sized pool for tests and thread-scaling benches.
//
// Semantics:
//  * The calling thread participates in the work, so a "1-thread" pool runs
//    entirely inline and spawns nothing.
//  * Nested parallel_for/parallel_reduce from inside a pool task runs inline
//    serially (no deadlock, no oversubscription).
//  * The first exception thrown by a chunk cancels the remaining chunks and
//    is rethrown on the calling thread once all in-flight chunks finished.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/error.h"

namespace icn::util {

/// Fixed-size pool of worker threads executing chunked jobs. One job runs at
/// a time per pool; submitting threads are serialized and participate in
/// their own job's chunks.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` total lanes of execution (the caller
  /// counts as one, so `num_threads - 1` worker threads are spawned).
  /// Requires num_threads >= 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes of execution (workers + the submitting thread).
  [[nodiscard]] std::size_t num_threads() const { return num_threads_; }

  /// The process-wide pool used by parallel_for/parallel_reduce, created on
  /// first use with configured_threads() lanes.
  static ThreadPool& instance();

  /// Thread count the global pool is created with: ICN_THREADS when set to a
  /// positive integer, else hardware_concurrency() (at least 1).
  [[nodiscard]] static std::size_t configured_threads();

  /// Parses an ICN_THREADS-style value; returns 0 when the value is unset,
  /// empty, non-numeric, or zero (meaning "use the hardware default").
  [[nodiscard]] static std::size_t parse_thread_count(const char* value);

  /// RAII override of the pool used by parallel_for/parallel_reduce, for
  /// determinism tests and thread-scaling benches. Install and remove from a
  /// single thread only; overrides nest (last installed wins).
  class ScopedOverride {
   public:
    explicit ScopedOverride(std::size_t num_threads);
    ~ScopedOverride();
    ScopedOverride(const ScopedOverride&) = delete;
    ScopedOverride& operator=(const ScopedOverride&) = delete;

   private:
    std::unique_ptr<ThreadPool> pool_;
    ThreadPool* previous_;
  };

  /// Runs fn(0) ... fn(num_chunks - 1), distributing chunks over the workers
  /// and the calling thread. Blocks until every chunk finished; rethrows the
  /// first chunk exception. Calls from inside a pool task run inline.
  void run_chunks(std::size_t num_chunks,
                  const std::function<void(std::size_t)>& fn);

 private:
  struct Job;

  void worker_loop();
  static void work_on(Job& job);

  std::size_t num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_cv_;  // workers wait for a new job
  std::condition_variable done_cv_;  // submitter waits for drain
  Job* job_ = nullptr;               // guarded by mu_
  std::uint64_t generation_ = 0;     // guarded by mu_
  bool stop_ = false;                // guarded by mu_
  std::mutex submit_mu_;             // serializes concurrent submitters
};

namespace detail {

/// Splits [begin, end) into ceil((end-begin)/grain) fixed chunks and runs
/// chunk(chunk_index, chunk_begin, chunk_end) for each on the active pool.
/// Chunk boundaries depend only on (begin, end, grain) — never on threads.
void run_chunked(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& chunk);

/// Number of chunks run_chunked will produce. Requires grain > 0, begin <= end.
[[nodiscard]] inline std::size_t num_chunks(std::size_t begin, std::size_t end,
                                            std::size_t grain) {
  return (end - begin + grain - 1) / grain;
}

}  // namespace detail

/// Runs body(lo, hi) over consecutive sub-ranges of [begin, end) of at most
/// `grain` indices each. The body must only write state owned by its range;
/// under that contract results are bit-identical to the serial loop.
/// Requires grain > 0 and begin <= end.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Chunked deterministic reduction: partial[c] = map_chunk(lo_c, hi_c) for
/// each fixed chunk, then identity `combine`d with the partials left-to-right
/// in chunk order on the calling thread. The result is identical for every
/// thread count (including 1). Requires grain > 0 and begin <= end.
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end,
                                std::size_t grain, T identity, MapFn&& map_chunk,
                                CombineFn&& combine) {
  ICN_REQUIRE(grain > 0, "parallel_reduce grain must be positive");
  ICN_REQUIRE(begin <= end, "parallel_reduce range");
  if (begin == end) return identity;
  std::vector<T> partials(detail::num_chunks(begin, end, grain), identity);
  detail::run_chunked(begin, end, grain,
                      [&](std::size_t c, std::size_t lo, std::size_t hi) {
                        partials[c] = map_chunk(lo, hi);
                      });
  T acc = std::move(identity);
  for (T& partial : partials) {
    acc = combine(std::move(acc), std::move(partial));
  }
  return acc;
}

}  // namespace icn::util
