// Monotonic per-task scratch arena.
//
// The analysis batch paths (SHAP tree recursion, seasonal-fit buckets,
// silhouette scratch, kernel-SHAP coalition rows) used to heap-allocate small
// short-lived vectors once per item — millions of malloc/free pairs per study
// that dominate the profile once the arithmetic itself is vectorized. An
// Arena replaces those with pointer bumps: allocation is `used += bytes`,
// deallocation is rewinding a mark.
//
// Lifetime rules (see DESIGN.md §6.4):
//   - Allocation never constructs or destroys objects. Only trivially
//     copyable, trivially destructible element types are accepted
//     (`alloc<T>` is constrained accordingly); callers initialise the
//     returned storage themselves.
//   - A `Frame` (RAII) marks the arena on entry and rewinds it on exit.
//     Everything allocated inside the frame dies at once; pointers must not
//     escape the frame that allocated them.
//   - Arenas are single-threaded. `scratch_arena()` hands each thread its
//     own `thread_local` instance, so pool workers never contend; a worker's
//     task body opens a Frame, allocates freely, and the rewind at task exit
//     makes the next task on that worker start from the same high-water
//     block — steady-state tasks do zero mallocs.
//   - Memory is retained across rewinds (monotonic high-water mark) and only
//     returned to the OS when the Arena itself is destroyed, i.e. at thread
//     exit for `scratch_arena()`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace icn::util {

class Arena {
 public:
  /// First block size; subsequent blocks grow geometrically (2x) and at
  /// least large enough for the allocation that triggered them.
  explicit Arena(std::size_t initial_block_bytes = 1u << 16);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw bump allocation. `align` must be a power of two. Never returns
  /// nullptr (zero-byte requests get a valid one-past pointer).
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align);

  /// Typed allocation of `count` elements of uninitialised storage.
  template <typename T>
    requires(std::is_trivially_copyable_v<T> &&
             std::is_trivially_destructible_v<T>)
  [[nodiscard]] T* alloc(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Typed allocation returned as a span over uninitialised storage.
  template <typename T>
    requires(std::is_trivially_copyable_v<T> &&
             std::is_trivially_destructible_v<T>)
  [[nodiscard]] std::span<T> alloc_span(std::size_t count) {
    return {alloc<T>(count), count};
  }

  /// Rewind marker: (block index, bytes used in that block). Rewinding
  /// invalidates every pointer handed out after the mark was taken.
  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] Mark mark() const { return {current_, blocks_.empty() ? 0 : blocks_[current_].used}; }

  void rewind(Mark m);

  /// Rewind to empty. Blocks are kept for reuse.
  void reset() { rewind(Mark{0, 0}); }

  /// Total bytes currently reserved from the OS across all blocks.
  [[nodiscard]] std::size_t bytes_reserved() const;

  /// Bytes handed out since the last full reset (high-water view of the
  /// current position, not a lifetime counter).
  [[nodiscard]] std::size_t bytes_used() const;

  /// RAII frame: rewinds the owning arena to the construction-time mark.
  class Frame {
   public:
    explicit Frame(Arena& arena) : arena_(&arena), mark_(arena.mark()) {}
    ~Frame() { arena_->rewind(mark_); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    Arena* arena_;
    Mark mark_;
  };

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  void* allocate_slow(std::size_t bytes, std::size_t align);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;
  std::size_t initial_block_bytes_;
};

/// This thread's scratch arena. Each pool worker (and the main thread) gets
/// its own instance, so no locking is needed; open a Frame per task.
[[nodiscard]] Arena& scratch_arena();

}  // namespace icn::util
