// Fixed-width text table printing for bench/example output.
//
// Every figure/table bench prints its reproduced rows through TextTable so
// the output is stable, aligned, and diff-able across runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace icn::util {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Accumulates rows of string cells and prints them with aligned columns.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; missing trailing cells render empty, extra cells throw.
  void add_row(std::vector<std::string> cells);

  /// Sets per-column alignment (default: first column left, rest right).
  void set_alignment(std::vector<Align> alignment);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Renders the table (header, separator, rows) to a string.
  [[nodiscard]] std::string to_string() const;

  /// Streams to_string() to `out`.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> alignment_;
};

/// Formats a double with the given number of decimals ("%.*f").
[[nodiscard]] std::string fmt_double(double v, int decimals = 3);

/// Formats a fraction in [0,1] as "12.3%".
[[nodiscard]] std::string fmt_percent(double fraction, int decimals = 1);

/// Formats a byte count as a human readable "12.3 GB" style string (SI).
[[nodiscard]] std::string fmt_bytes(double bytes);

}  // namespace icn::util
