// Deterministic random number generation for the whole workbench.
//
// Everything downstream of the synthetic data generator must be exactly
// reproducible from a single 64-bit seed, including when different antennas /
// services / hours are generated in different orders or in parallel. We
// therefore expose:
//
//  * Rng            — a SplitMix64-seeded xoshiro256** engine with the usual
//                     distribution helpers (uniform, normal, lognormal,
//                     Poisson, gamma, Dirichlet-style share perturbation);
//  * derive_seed    — a stable hash combiner used to derive independent
//                     substreams, e.g. derive_seed(seed, antenna, service).
//
// std::mt19937 + std:: distributions are avoided on purpose: their outputs
// are not guaranteed to be identical across standard library implementations,
// which would make the recorded experiment outputs non-portable.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace icn::util {

/// Stable 64-bit stream-splitting hash (SplitMix64 finalizer chain).
/// derive_seed(s, a, b) != derive_seed(s, b, a) for a != b.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed);
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a);
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a,
                                        std::uint64_t b);
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a,
                                        std::uint64_t b, std::uint64_t c);

/// Deterministic, implementation-independent random engine with the
/// distribution helpers needed by the traffic models.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine; two Rng constructed from the same seed produce the
  /// same sequence on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 uniformly distributed bits (xoshiro256**).
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface (for std::shuffle etc.).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();
  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);
  /// Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Exponential with the given rate lambda > 0.
  double exponential(double lambda);
  /// Poisson count with mean lambda >= 0 (exact for small lambda,
  /// normal-approximation with continuity correction for lambda > 256).
  std::uint64_t poisson(double lambda);
  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia–Tsang.
  double gamma(double shape, double scale);

  /// Dirichlet draw: normalized gamma(alpha_i, 1) vector.
  /// Requires every alpha > 0 and alphas non-empty.
  std::vector<double> dirichlet(std::span<const double> alphas);

  /// Picks an index with probability proportional to weights[i].
  /// Requires non-empty weights, all >= 0, and a positive sum.
  std::size_t categorical(std::span<const double> weights);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace icn::util
