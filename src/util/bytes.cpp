#include "util/bytes.h"

#include <cstring>

#include "util/error.h"

namespace icn::util {

void ByteQueue::consume(std::size_t n) {
  ICN_REQUIRE(n <= size(), "ByteQueue::consume past end");
  head_ += n;
  if (head_ == buf_.size()) {
    buf_.clear();
    head_ = 0;
    return;
  }
  // Compact only when the dead prefix is both large and the majority of the
  // storage, so a half-parsed frame is not memmoved once per read() call.
  if (head_ >= 4096 && head_ * 2 >= buf_.size()) {
    const std::size_t live = size();
    std::memmove(buf_.data(), buf_.data() + head_, live);
    buf_.resize(live);
    head_ = 0;
  }
}

}  // namespace icn::util
