// Error-handling helpers shared by all icn modules.
//
// Preconditions on public API boundaries are checked with ICN_REQUIRE and
// reported as icn::util::PreconditionError (derived from std::invalid_argument)
// so callers can distinguish usage errors from runtime failures.
#pragma once

#include <stdexcept>
#include <string>

namespace icn::util {

/// Thrown when a documented precondition of a public function is violated.
class PreconditionError : public std::invalid_argument {
 public:
  explicit PreconditionError(const std::string& what_arg)
      : std::invalid_argument(what_arg) {}
};

/// Thrown when an ICN_* environment variable holds a value that cannot be
/// interpreted (ICN_THREADS=banana, ICN_SIMD=avx9000). Configuration typos
/// fail loudly at first use instead of silently falling back to a default
/// the operator did not ask for.
class EnvConfigError : public std::runtime_error {
 public:
  explicit EnvConfigError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Thrown on operating-system I/O failures at store/stream boundaries: a
/// missing, empty, or unreadable file, a failed write/fsync/truncate. Distinct
/// from structural errors (e.g. store::SnapshotError, which means the bytes
/// were read fine but are not a valid snapshot) so callers can tell "the file
/// is not there" from "the file is corrupt".
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

[[noreturn]] inline void fail_precondition(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::string full = std::string("precondition failed: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) full += " (" + msg + ")";
  throw PreconditionError(full);
}

}  // namespace icn::util

/// Check a precondition; throws icn::util::PreconditionError on failure.
#define ICN_REQUIRE(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::icn::util::fail_precondition(#expr, __FILE__, __LINE__, msg); \
    }                                                                 \
  } while (false)

/// Debug-only precondition for per-element hot paths (e.g. the O(N^2)
/// condensed-distance accessor), where the branch costs as much as the work
/// it guards. Active in debug builds, compiled out under NDEBUG.
#ifdef NDEBUG
#define ICN_DBG_REQUIRE(expr, msg) ((void)0)
#else
#define ICN_DBG_REQUIRE(expr, msg) ICN_REQUIRE(expr, msg)
#endif
