#include "util/csv.h"

#include <limits>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace icn::util {

CsvWriter::CsvWriter(std::ostream& out) : out_(&out) {}

void CsvWriter::write_row(const CsvRow& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << csv_escape(fields[i]);
  }
  *out_ << '\n';
}

void CsvWriter::write_numeric_row(const std::vector<double>& values) {
  CsvRow row;
  row.reserve(values.size());
  for (const double v : values) {
    std::ostringstream ss;
    ss.precision(std::numeric_limits<double>::max_digits10);
    ss << v;
    row.push_back(ss.str());
  }
  write_row(row);
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::vector<CsvRow> parse_csv(const std::string& text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool row_started = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_started = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_started = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_started || !field.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
        }
        row_started = false;
        break;
      default:
        field += c;
        row_started = true;
        break;
    }
  }
  ICN_REQUIRE(!in_quotes, "unterminated quoted CSV field");
  if (row_started || !field.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

CsvRow parse_csv_line(const std::string& line) {
  const auto rows = parse_csv(line);
  if (rows.empty()) return {};
  ICN_REQUIRE(rows.size() == 1, "parse_csv_line given multiple lines");
  return rows.front();
}

}  // namespace icn::util
