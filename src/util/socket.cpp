#include "util/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/error.h"

namespace icn::util {
namespace {

[[noreturn]] void fail_errno(const char* op) {
  throw IoError(std::string("socket: ") + op + " failed: " +
                std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1) {
    fail_errno("inet_pton");
  }
  return addr;
}

}  // namespace

Fd::~Fd() { close(); }

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail_errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail_errno("fcntl(F_SETFL)");
  }
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0));
  if (!fd.valid()) fail_errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    fail_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    fail_errno("bind");
  }
  if (::listen(fd.get(), backlog) != 0) fail_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    fail_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  fd_ = std::move(fd);
}

Fd TcpListener::accept_nonblocking() {
  const int fd = ::accept4(fd_.get(), nullptr, nullptr,
                           SOCK_CLOEXEC | SOCK_NONBLOCK);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED ||
        errno == EINTR) {
      return Fd();
    }
    fail_errno("accept4");
  }
  Fd out(fd);
  set_tcp_nodelay(out.get());
  return out;
}

short poll_fd(int fd, short events, int timeout_ms) {
  // Recompute the remaining budget across EINTR so a signal storm cannot
  // stretch the deadline.
  const auto started = std::chrono::steady_clock::now();
  int remaining = timeout_ms;
  while (true) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int n = ::poll(&pfd, 1, remaining);
    if (n > 0) return pfd.revents;
    if (n == 0) return 0;  // Timeout.
    if (errno != EINTR) fail_errno("poll");
    if (timeout_ms >= 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started);
      remaining = timeout_ms - static_cast<int>(elapsed.count());
      if (remaining <= 0) return 0;
    }
  }
}

Fd try_connect_loopback(std::uint16_t port, int timeout_ms, int* error_out) {
  if (error_out != nullptr) *error_out = 0;
  // Non-blocking connect + poll: retrying a blocking connect() after EINTR
  // is wrong (the handshake continues asynchronously, so the retry reports
  // EALREADY), and a blocking connect has no deadline at all.
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0));
  if (!fd.valid()) fail_errno("socket");
  const sockaddr_in addr = loopback_addr(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS && errno != EINTR) {
      if (error_out != nullptr) *error_out = errno;
      return Fd();
    }
    const short revents = poll_fd(fd.get(), POLLOUT, timeout_ms);
    if (revents == 0) return Fd();  // Timeout; *error_out stays 0.
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      fail_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      if (error_out != nullptr) *error_out = err;
      return Fd();
    }
  }
  // Restore blocking mode for the synchronous client helpers.
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0) fail_errno("fcntl(F_GETFL)");
  if (::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) < 0) {
    fail_errno("fcntl(F_SETFL)");
  }
  set_tcp_nodelay(fd.get());
  return fd;
}

Fd connect_loopback(std::uint16_t port) {
  int err = 0;
  Fd fd = try_connect_loopback(port, -1, &err);
  if (!fd.valid()) {
    errno = err;
    fail_errno("connect");
  }
  return fd;
}

std::ptrdiff_t read_some(int fd, std::span<std::uint8_t> buf) {
  while (true) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n > 0) return n;
    if (n == 0) return -1;  // Orderly EOF.
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    if (errno == ECONNRESET) return -1;
    fail_errno("read");
  }
}

std::ptrdiff_t write_some(int fd, std::span<const std::uint8_t> buf) {
  while (true) {
    const ssize_t n = ::send(fd, buf.data(), buf.size(), MSG_NOSIGNAL);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    if (errno == EPIPE || errno == ECONNRESET) return -1;
    fail_errno("send");
  }
}

void write_all(int fd, std::span<const std::uint8_t> buf) {
  std::size_t at = 0;
  while (at < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + at, buf.size() - at, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send");
    }
    at += static_cast<std::size_t>(n);
  }
}

bool read_exact(int fd, std::span<std::uint8_t> buf) {
  std::size_t at = 0;
  while (at < buf.size()) {
    const ssize_t n = ::read(fd, buf.data() + at, buf.size() - at);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("read");
    }
    if (n == 0) {
      if (at == 0) return false;
      throw IoError("socket: EOF mid-message (" + std::to_string(at) + "/" +
                    std::to_string(buf.size()) + " bytes)");
    }
    at += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace icn::util
