#include "util/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace icn::util {
namespace {

[[noreturn]] void fail_errno(const char* op) {
  throw IoError(std::string("socket: ") + op + " failed: " +
                std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1) {
    fail_errno("inet_pton");
  }
  return addr;
}

}  // namespace

Fd::~Fd() { close(); }

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail_errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail_errno("fcntl(F_SETFL)");
  }
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0));
  if (!fd.valid()) fail_errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    fail_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    fail_errno("bind");
  }
  if (::listen(fd.get(), backlog) != 0) fail_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    fail_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  fd_ = std::move(fd);
}

Fd TcpListener::accept_nonblocking() {
  const int fd = ::accept4(fd_.get(), nullptr, nullptr,
                           SOCK_CLOEXEC | SOCK_NONBLOCK);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED ||
        errno == EINTR) {
      return Fd();
    }
    fail_errno("accept4");
  }
  Fd out(fd);
  set_tcp_nodelay(out.get());
  return out;
}

Fd connect_loopback(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) fail_errno("socket");
  const sockaddr_in addr = loopback_addr(port);
  while (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    fail_errno("connect");
  }
  set_tcp_nodelay(fd.get());
  return fd;
}

std::ptrdiff_t read_some(int fd, std::span<std::uint8_t> buf) {
  while (true) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n > 0) return n;
    if (n == 0) return -1;  // Orderly EOF.
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    if (errno == ECONNRESET) return -1;
    fail_errno("read");
  }
}

std::ptrdiff_t write_some(int fd, std::span<const std::uint8_t> buf) {
  while (true) {
    const ssize_t n = ::send(fd, buf.data(), buf.size(), MSG_NOSIGNAL);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    if (errno == EPIPE || errno == ECONNRESET) return -1;
    fail_errno("send");
  }
}

void write_all(int fd, std::span<const std::uint8_t> buf) {
  std::size_t at = 0;
  while (at < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + at, buf.size() - at, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send");
    }
    at += static_cast<std::size_t>(n);
  }
}

bool read_exact(int fd, std::span<std::uint8_t> buf) {
  std::size_t at = 0;
  while (at < buf.size()) {
    const ssize_t n = ::read(fd, buf.data() + at, buf.size() - at);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("read");
    }
    if (n == 0) {
      if (at == 0) return false;
      throw IoError("socket: EOF mid-message (" + std::to_string(at) + "/" +
                    std::to_string(buf.size()) + " bytes)");
    }
    at += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace icn::util
