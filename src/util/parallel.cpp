#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace icn::util {
namespace {

/// Set while a thread is executing pool chunks (worker threads permanently,
/// submitters for the duration of their job); nested parallel calls from such
/// threads run inline instead of deadlocking on the busy pool.
thread_local bool t_in_pool = false;

/// Pool swapped in by ThreadPool::ScopedOverride (tests / scaling benches).
ThreadPool* g_override = nullptr;

ThreadPool& active_pool() {
  return g_override != nullptr ? *g_override : ThreadPool::instance();
}

}  // namespace

/// One chunked job: an atomic cursor over the chunk indices plus the
/// bookkeeping the submitter needs to wait for stragglers. Completion is
/// "cursor exhausted and no worker inside": an exception cancels unclaimed
/// chunks by pushing the cursor past the end.
struct ThreadPool::Job {
  std::size_t num_chunks = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};  ///< Next chunk index to claim.
  std::size_t active_workers = 0;    ///< Workers inside the job (pool mu_).
  std::exception_ptr error;          ///< First chunk exception (error_mu).
  std::mutex error_mu;
};

ThreadPool::ThreadPool(std::size_t num_threads) : num_threads_(num_threads) {
  ICN_REQUIRE(num_threads >= 1, "ThreadPool needs >= 1 thread");
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(configured_threads());
  return pool;
}

std::size_t ThreadPool::configured_threads() {
  const std::size_t from_env = parse_thread_count(std::getenv("ICN_THREADS"));
  if (from_env > 0) return from_env;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t ThreadPool::parse_thread_count(const char* value) {
  if (value == nullptr) return 0;
  // strtoull silently accepts a leading minus sign and wraps; only a plain
  // non-empty digit string (optionally space-prefixed) is a valid count.
  const char* p = value;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p < '0' || *p > '9') return 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(p, &end, 10);
  if (end == p || *end != '\0') return 0;
  // Cap at a sane bound: a typo like ICN_THREADS=10000 should not try to
  // spawn ten thousand OS threads.
  constexpr unsigned long long kMaxThreads = 512;
  return static_cast<std::size_t>(std::min(parsed, kMaxThreads));
}

ThreadPool::ScopedOverride::ScopedOverride(std::size_t num_threads)
    : pool_(std::make_unique<ThreadPool>(num_threads)), previous_(g_override) {
  g_override = pool_.get();
}

ThreadPool::ScopedOverride::~ScopedOverride() { g_override = previous_; }

void ThreadPool::work_on(Job& job) {
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) break;
    try {
      (*job.fn)(c);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(job.error_mu);
        if (!job.error) job.error = std::current_exception();
      }
      // Cancel the chunks nobody claimed yet; in-flight ones finish normally.
      job.next.store(job.num_chunks, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop() {
  t_in_pool = true;
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      wake_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      if (job == nullptr) continue;  // job already drained and detached
      ++job->active_workers;
    }
    work_on(*job);
    {
      std::lock_guard<std::mutex> lk(mu_);
      --job->active_workers;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::run_chunks(std::size_t num_chunks,
                            const std::function<void(std::size_t)>& fn) {
  if (num_chunks == 0) return;
  if (workers_.empty() || num_chunks == 1 || t_in_pool) {
    // Serial pool, trivial job, or nested call from inside a pool task: run
    // inline. Chunk outputs are identical either way.
    std::exception_ptr error;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      try {
        fn(c);
      } catch (...) {
        error = std::current_exception();
        break;  // match the pooled path: later chunks are cancelled
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  std::lock_guard<std::mutex> submit_lk(submit_mu_);
  Job job;
  job.num_chunks = num_chunks;
  job.fn = &fn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    ++generation_;
  }
  wake_cv_.notify_all();

  // The submitting thread is one of the lanes; mark it as in-pool so nested
  // parallel calls from the body run inline.
  t_in_pool = true;
  work_on(job);
  t_in_pool = false;

  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return job.next.load(std::memory_order_relaxed) >= job.num_chunks &&
             job.active_workers == 0;
    });
    job_ = nullptr;  // detach before the stack Job dies
  }
  if (job.error) std::rethrow_exception(job.error);
}

namespace detail {

void run_chunked(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& chunk) {
  ICN_REQUIRE(grain > 0, "parallel grain must be positive");
  ICN_REQUIRE(begin <= end, "parallel range");
  if (begin == end) return;
  const std::size_t chunks = num_chunks(begin, end, grain);
  active_pool().run_chunks(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = std::min(lo + grain, end);
    chunk(c, lo, hi);
  });
}

}  // namespace detail

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  ICN_REQUIRE(grain > 0, "parallel_for grain must be positive");
  ICN_REQUIRE(begin <= end, "parallel_for range");
  detail::run_chunked(begin, end, grain,
                      [&](std::size_t, std::size_t lo, std::size_t hi) {
                        body(lo, hi);
                      });
}

}  // namespace icn::util
