#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <string>

namespace icn::util {
namespace {

/// Set while a thread is executing pool chunks (worker threads permanently,
/// submitters for the duration of their job); nested parallel calls from such
/// threads run inline instead of deadlocking on the busy pool.
thread_local bool t_in_pool = false;

/// Pool swapped in by ThreadPool::ScopedOverride (tests / scaling benches).
ThreadPool* g_override = nullptr;

/// A lane's chunk range packed into one atomic word: the owner pops from the
/// lo side, thieves pop from the hi side, both with a CAS on the same word.
/// Ranges only ever shrink, so there is no ABA hazard.
constexpr std::uint64_t pack_range(std::uint32_t lo, std::uint32_t hi) {
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// Owner side: claims the lowest unclaimed chunk of the lane.
bool claim_bottom(std::atomic<std::uint64_t>& range, std::uint32_t& chunk) {
  std::uint64_t cur = range.load(std::memory_order_relaxed);
  for (;;) {
    const auto lo = static_cast<std::uint32_t>(cur >> 32);
    const auto hi = static_cast<std::uint32_t>(cur);
    if (lo >= hi) return false;
    if (range.compare_exchange_weak(cur, pack_range(lo + 1, hi),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      chunk = lo;
      return true;
    }
  }
}

/// Thief side: claims the highest unclaimed chunk of a victim lane.
bool steal_top(std::atomic<std::uint64_t>& range, std::uint32_t& chunk) {
  std::uint64_t cur = range.load(std::memory_order_relaxed);
  for (;;) {
    const auto lo = static_cast<std::uint32_t>(cur >> 32);
    const auto hi = static_cast<std::uint32_t>(cur);
    if (lo >= hi) return false;
    if (range.compare_exchange_weak(cur, pack_range(lo, hi - 1),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      chunk = hi - 1;
      return true;
    }
  }
}

}  // namespace

/// One chunked job: the chunk indices dealt into per-lane ranges plus the
/// bookkeeping the submitter needs to wait for stragglers. An exception
/// cancels the unstarted chunks via `cancelled`; the exception kept (and
/// later rethrown) is the one from the lowest-indexed chunk that threw, so
/// concurrent failures resolve deterministically instead of by wall order.
struct ThreadPool::Job {
  explicit Job(std::size_t num_lanes) : lanes(num_lanes) {}

  std::size_t num_chunks = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::vector<std::atomic<std::uint64_t>> lanes;  ///< Packed (lo, hi) ranges.
  std::atomic<bool> cancelled{false};
  std::size_t active_workers = 0;  ///< Workers inside the job (pool mu_).
  std::size_t error_chunk =
      std::numeric_limits<std::size_t>::max();  ///< Lowest chunk that threw.
  std::exception_ptr error;                     ///< Its exception (error_mu).
  std::mutex error_mu;
};

ThreadPool::ThreadPool(std::size_t num_threads, Schedule schedule)
    : num_threads_(num_threads), schedule_(schedule) {
  ICN_REQUIRE(num_threads >= 1, "ThreadPool needs >= 1 thread");
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    // Worker i owns lane i + 1; the submitting thread is lane 0.
    workers_.emplace_back([this, lane = i + 1] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(configured_threads());
  return pool;
}

ThreadPool& ThreadPool::active() {
  return g_override != nullptr ? *g_override : ThreadPool::instance();
}

std::size_t ThreadPool::configured_threads() {
  const std::size_t from_env = parse_thread_count(std::getenv("ICN_THREADS"));
  if (from_env > 0) return from_env;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t ThreadPool::parse_thread_count(const char* value) {
  if (value == nullptr) return 0;
  const char* p = value;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p == '\0') return 0;  // blank, same as unset
  // strtoull silently accepts a leading minus sign and wraps; only a plain
  // digit string is a valid count. Anything else is a configuration typo and
  // must fail loudly, not fall back to a default the operator did not pick.
  char* end = nullptr;
  const unsigned long long parsed =
      (*p >= '0' && *p <= '9') ? std::strtoull(p, &end, 10) : 0;
  bool valid = end != nullptr && end != p;
  if (valid) {
    while (*end == ' ' || *end == '\t') ++end;
    valid = *end == '\0';
  }
  if (!valid) {
    throw EnvConfigError(std::string("ICN_THREADS=\"") + value +
                         "\" is not a thread count (expected a plain "
                         "non-negative integer; 0 or unset = hardware "
                         "default)");
  }
  // Cap at a sane bound: a typo like ICN_THREADS=10000 should not try to
  // spawn ten thousand OS threads.
  constexpr unsigned long long kMaxThreads = 512;
  return static_cast<std::size_t>(std::min(parsed, kMaxThreads));
}

ThreadPool::ScopedOverride::ScopedOverride(std::size_t num_threads,
                                           Schedule schedule)
    : pool_(std::make_unique<ThreadPool>(num_threads, schedule)),
      previous_(g_override) {
  g_override = pool_.get();
}

ThreadPool::ScopedOverride::~ScopedOverride() { g_override = previous_; }

void ThreadPool::record_error(Job& job, std::size_t chunk) {
  {
    std::lock_guard<std::mutex> lk(job.error_mu);
    if (chunk < job.error_chunk) {
      job.error_chunk = chunk;
      job.error = std::current_exception();
    }
  }
  // Cancel the chunks nobody claimed yet; in-flight ones finish normally.
  job.cancelled.store(true, std::memory_order_relaxed);
}

void ThreadPool::work_on(Job& job, std::size_t lane, Schedule schedule) {
  for (;;) {
    if (job.cancelled.load(std::memory_order_relaxed)) return;
    std::uint32_t c = 0;
    if (!claim_bottom(job.lanes[lane], c)) {
      if (schedule != Schedule::kSteal) return;
      // Own block drained: steal from the top of the first non-empty victim,
      // scanning the lanes round-robin from our right-hand neighbour.
      bool stolen = false;
      for (std::size_t k = 1; k < job.lanes.size() && !stolen; ++k) {
        stolen = steal_top(job.lanes[(lane + k) % job.lanes.size()], c);
      }
      if (!stolen) return;  // every lane drained
    }
    try {
      (*job.fn)(c);
    } catch (...) {
      record_error(job, c);
    }
  }
}

void ThreadPool::worker_loop(std::size_t lane) {
  t_in_pool = true;
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      wake_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      if (job == nullptr) continue;  // job already drained and detached
      ++job->active_workers;
    }
    work_on(*job, lane, schedule_);
    {
      std::lock_guard<std::mutex> lk(mu_);
      --job->active_workers;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::run_chunks(std::size_t num_chunks,
                            const std::function<void(std::size_t)>& fn) {
  if (num_chunks == 0) return;
  if (workers_.empty() || num_chunks == 1 || t_in_pool) {
    // Serial pool, trivial job, or nested call from inside a pool task: run
    // inline, in chunk order. Chunk outputs are identical either way, and the
    // first exception is by construction the lowest-indexed one.
    std::exception_ptr error;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      try {
        fn(c);
      } catch (...) {
        error = std::current_exception();
        break;  // match the pooled path: later chunks are cancelled
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  ICN_REQUIRE(num_chunks <= std::numeric_limits<std::uint32_t>::max(),
              "chunk count exceeds the scheduler's 32-bit chunk ids");

  std::lock_guard<std::mutex> submit_lk(submit_mu_);
  Job job(num_threads_);
  job.num_chunks = num_chunks;
  job.fn = &fn;
  // Deal the chunks into contiguous per-lane blocks, in chunk order. The
  // partition depends on the lane count but chunk CONTENTS never do, so this
  // is pure scheduling: any lane may end up executing any chunk via stealing.
  for (std::size_t l = 0; l < num_threads_; ++l) {
    const auto lo = static_cast<std::uint32_t>(l * num_chunks / num_threads_);
    const auto hi =
        static_cast<std::uint32_t>((l + 1) * num_chunks / num_threads_);
    job.lanes[l].store(pack_range(lo, hi), std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    ++generation_;
  }
  wake_cv_.notify_all();

  // The submitting thread is lane 0; mark it as in-pool so nested parallel
  // calls from the body run inline.
  t_in_pool = true;
  work_on(job, 0, schedule_);
  t_in_pool = false;

  {
    std::unique_lock<std::mutex> lk(mu_);
    // Completion = every chunk claimed (or the job cancelled) AND nobody
    // still inside. The drained check matters for workers that have not yet
    // woken up to claim their dealt block: "no worker inside" alone would
    // detach the job under their feet.
    const auto drained = [&] {
      if (job.cancelled.load(std::memory_order_relaxed)) return true;
      for (const auto& lane : job.lanes) {
        const std::uint64_t r = lane.load(std::memory_order_relaxed);
        if (static_cast<std::uint32_t>(r >> 32) < static_cast<std::uint32_t>(r))
          return false;
      }
      return true;
    };
    done_cv_.wait(lk, [&] { return job.active_workers == 0 && drained(); });
    job_ = nullptr;  // detach before the stack Job dies
  }
  if (job.error) std::rethrow_exception(job.error);
}

std::size_t adaptive_grain(std::size_t begin, std::size_t end,
                           std::size_t min_grain) {
  ICN_REQUIRE(min_grain > 0, "adaptive_grain min_grain must be positive");
  ICN_REQUIRE(begin <= end, "adaptive_grain range");
  const std::size_t n = end - begin;
  if (n == 0) return min_grain;
  // Enough chunks per lane that stealing can even out a skewed workload,
  // few enough that per-chunk dispatch stays negligible.
  constexpr std::size_t kChunksPerLane = 16;
  const std::size_t target = ThreadPool::active().num_threads() * kChunksPerLane;
  return std::max(min_grain, (n + target - 1) / target);
}

namespace detail {

void run_chunked(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& chunk) {
  ICN_REQUIRE(grain > 0, "parallel grain must be positive");
  ICN_REQUIRE(begin <= end, "parallel range");
  if (begin == end) return;
  const std::size_t chunks = num_chunks(begin, end, grain);
  ThreadPool::active().run_chunks(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = std::min(lo + grain, end);
    chunk(c, lo, hi);
  });
}

}  // namespace detail

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  ICN_REQUIRE(grain > 0, "parallel_for grain must be positive");
  ICN_REQUIRE(begin <= end, "parallel_for range");
  detail::run_chunked(begin, end, grain,
                      [&](std::size_t, std::size_t lo, std::size_t hi) {
                        body(lo, hi);
                      });
}

}  // namespace icn::util
