// Runtime SIMD dispatch policy for the vectorized kernels (squared-Euclidean
// distances, canonical-order accumulation, hardware CRC32C).
//
// The widest instruction set is probed once via cpuid at first use and every
// kernel dispatches through a function pointer picked from that probe, so one
// binary runs correctly from a scalar-only container to an AVX-512 server.
// The ICN_SIMD environment variable pins the lane width for A/B parity tests
// and benchmarks:
//
//   ICN_SIMD=scalar | sse2 | avx2 | avx512
//
// A garbage value, or a level the CPU cannot execute, throws
// icn::util::EnvConfigError at first use — configuration typos fail loudly
// instead of silently benchmarking the wrong kernel. Every lane preserves the
// same canonical accumulation order (see ml/distance.h), so ICN_SIMD changes
// speed, never bits.
#pragma once

#include <optional>

namespace icn::util {

/// Kernel lanes, orderable: a CPU supporting level L supports all levels
/// below it (AVX-512-capable hardware always has AVX2 and SSE2).
enum class SimdLevel { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx512 = 3 };

/// Lower-case canonical name ("scalar", "sse2", "avx2", "avx512").
[[nodiscard]] const char* simd_level_name(SimdLevel level);

/// Widest level this CPU can execute, probed via cpuid. kScalar on non-x86
/// builds.
[[nodiscard]] SimdLevel max_supported_simd_level();

/// Parses an ICN_SIMD-style value: nullopt when unset/blank (auto-detect),
/// the level for one of the four canonical names (case-insensitive), and
/// EnvConfigError for anything else.
[[nodiscard]] std::optional<SimdLevel> parse_simd_level(const char* value);

/// The level the dispatched kernels run at: ICN_SIMD when set (EnvConfigError
/// if it is garbage or exceeds what the CPU supports), else the probed
/// maximum. Resolved once and cached for the process lifetime.
[[nodiscard]] SimdLevel simd_level();

/// True when the CPU has SSE4.2 (the crc32 instruction). Probed separately
/// from SimdLevel because CRC32C is an integer-lane feature, but the store's
/// dispatch still honours ICN_SIMD=scalar to force the table path.
[[nodiscard]] bool cpu_supports_crc32c();

}  // namespace icn::util
