// Runtime SIMD dispatch policy for the vectorized kernels (squared-Euclidean
// distances, canonical-order accumulation, RSCA/labeled-sum kernels, hardware
// CRC32C).
//
// The widest instruction set is probed once via cpuid at first use and every
// kernel dispatches through a function pointer picked from that probe, so one
// binary runs correctly from a scalar-only container to an AVX-512 server.
// The ICN_SIMD environment variable pins the lane width for A/B parity tests
// and benchmarks:
//
//   ICN_SIMD=scalar | sse2 | avx2 | avx512 | avx2fma
//
// A garbage value, or a level the CPU cannot execute, throws
// icn::util::EnvConfigError at first use — configuration typos fail loudly
// instead of silently benchmarking the wrong kernel. Every non-FMA lane
// preserves the same canonical accumulation order (see ml/distance.h), so
// those ICN_SIMD values change speed, never bits.
//
// `avx2fma` is the exception and is therefore strictly opt-in: it fuses
// multiply+add pairs into FMAs, which rounds once instead of twice and
// produces different (usually slightly more accurate) bits. Auto-detection
// NEVER selects it — an unset ICN_SIMD resolves to the widest non-FMA lane
// even on FMA-capable hardware — and requesting it on hardware without
// AVX2+FMA throws EnvConfigError. The FMA lane has its own re-baselined
// scalar reference (std::fma in the canonical order) that the parity tests
// compare against; see DESIGN.md §6.2.
#pragma once

#include <optional>

namespace icn::util {

/// Kernel lanes. kScalar..kAvx512 are orderable: a CPU supporting level L
/// supports all levels below it (AVX-512-capable hardware always has AVX2 and
/// SSE2). kAvx2Fma sits outside that total order — it is the opt-in fused
/// multiply-add variant of kAvx2 and is gated separately on the FMA cpuid
/// bit, never chosen by auto-detection.
enum class SimdLevel {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
  kAvx2Fma = 4,
};

/// Lower-case canonical name ("scalar", "sse2", "avx2", "avx512", "avx2fma").
[[nodiscard]] const char* simd_level_name(SimdLevel level);

/// Widest *non-FMA* level this CPU can execute, probed via cpuid. kScalar on
/// non-x86 builds. Never returns kAvx2Fma: the FMA lane changes bits and must
/// be requested explicitly.
[[nodiscard]] SimdLevel max_supported_simd_level();

/// True when the CPU has the FMA3 instructions (vfmadd*). Probed separately:
/// the FMA lane additionally requires AVX2.
[[nodiscard]] bool cpu_supports_fma();

/// Parses an ICN_SIMD-style value: nullopt when unset/blank (auto-detect),
/// the level for one of the five canonical names (case-insensitive), and
/// EnvConfigError for anything else.
[[nodiscard]] std::optional<SimdLevel> parse_simd_level(const char* value);

/// Pure resolution policy, exposed so the hardware-dependent rejection paths
/// are testable on any machine: returns `supported` when nothing was
/// requested; throws EnvConfigError (naming ICN_SIMD and the offending value)
/// when the request exceeds `supported`, or when kAvx2Fma is requested and
/// the CPU lacks AVX2 or FMA.
[[nodiscard]] SimdLevel resolve_simd_level(std::optional<SimdLevel> requested,
                                           SimdLevel supported, bool has_fma);

/// The level the dispatched kernels run at: ICN_SIMD when set (EnvConfigError
/// if it is garbage or exceeds what the CPU supports), else the probed
/// non-FMA maximum. Resolved once and cached for the process lifetime.
[[nodiscard]] SimdLevel simd_level();

/// True when the CPU has SSE4.2 (the crc32 instruction). Probed separately
/// from SimdLevel because CRC32C is an integer-lane feature, but the store's
/// dispatch still honours ICN_SIMD=scalar to force the table path.
[[nodiscard]] bool cpu_supports_crc32c();

}  // namespace icn::util
