#include "util/ascii.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "util/error.h"
#include "util/table.h"

namespace icn::util {
namespace {

constexpr const char kGreyRamp[] = " .:-=+*#%@";
constexpr std::size_t kGreyLevels = sizeof(kGreyRamp) - 1;

char grey_cell(double v, double lo, double hi) {
  if (hi <= lo) return kGreyRamp[0];
  double t = (v - lo) / (hi - lo);
  t = std::clamp(t, 0.0, 1.0);
  auto idx = static_cast<std::size_t>(t * static_cast<double>(kGreyLevels));
  if (idx >= kGreyLevels) idx = kGreyLevels - 1;
  return kGreyRamp[idx];
}

}  // namespace

std::string render_histogram(const Histogram& h, std::size_t max_bar) {
  std::size_t max_count = 1;
  for (const std::size_t c : h.counts) max_count = std::max(max_count, c);
  std::string out;
  char buf[96];
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const double left = h.bin_left(i);
    const double right = left + h.bin_width();
    std::snprintf(buf, sizeof(buf), "[%9.3f, %9.3f) %7zu ", left, right,
                  h.counts[i]);
    out += buf;
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(h.counts[i]) /
                     static_cast<double>(max_count) *
                     static_cast<double>(max_bar)));
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

std::string render_bar(double value, double max_value, std::size_t width) {
  if (max_value <= 0.0) return std::string();
  const double t = std::clamp(value / max_value, 0.0, 1.0);
  const auto n = static_cast<std::size_t>(
      std::llround(t * static_cast<double>(width)));
  return std::string(n, '#');
}

std::string render_heatmap(std::span<const double> values, std::size_t rows,
                           std::size_t cols, double lo, double hi) {
  ICN_REQUIRE(values.size() == rows * cols, "heatmap shape");
  std::string out;
  out.reserve(rows * (cols + 1));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out += grey_cell(values[r * cols + c], lo, hi);
    }
    out += '\n';
  }
  return out;
}

std::string render_signed_heatmap(std::span<const double> values,
                                  std::size_t rows, std::size_t cols) {
  ICN_REQUIRE(values.size() == rows * cols, "heatmap shape");
  // index 0..4 for negative magnitudes, 5..8 positive
  static constexpr const char kNeg[] = "@%#*+";  // strong under-utilization
  static constexpr const char kPos[] = "+*#%@";  // strong over-utilization
  std::string out;
  out.reserve(rows * (cols + 1));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = std::clamp(values[r * cols + c], -1.0, 1.0);
      const double mag = std::fabs(v);
      if (mag < 0.1) {
        out += '.';
      } else {
        auto level = static_cast<std::size_t>((mag - 0.1) / 0.9 * 5.0);
        if (level >= 5) level = 4;
        out += (v < 0.0) ? kNeg[4 - level] : kPos[level];
      }
    }
    out += '\n';
  }
  return out;
}

std::string render_sankey(std::vector<SankeyFlow> flows,
                          double min_fraction) {
  double total = 0.0;
  for (const auto& f : flows) {
    ICN_REQUIRE(f.weight >= 0.0, "sankey weight");
    total += f.weight;
  }
  if (total <= 0.0) return std::string();
  // Merge sub-threshold flows per source.
  std::vector<SankeyFlow> kept;
  std::map<std::string, double> other;
  for (auto& f : flows) {
    if (f.weight / total < min_fraction) {
      other[f.source] += f.weight;
    } else {
      kept.push_back(std::move(f));
    }
  }
  for (const auto& [src, w] : other) {
    if (w > 0.0) kept.push_back(SankeyFlow{src, "(other)", w});
  }
  std::stable_sort(kept.begin(), kept.end(),
                   [](const SankeyFlow& a, const SankeyFlow& b) {
                     if (a.source != b.source) return a.source < b.source;
                     return a.weight > b.weight;
                   });
  std::size_t src_w = 0, dst_w = 0;
  double max_weight = 0.0;
  for (const auto& f : kept) {
    src_w = std::max(src_w, f.source.size());
    dst_w = std::max(dst_w, f.target.size());
    max_weight = std::max(max_weight, f.weight);
  }
  std::string out;
  char buf[64];
  for (const auto& f : kept) {
    out += f.source;
    out.append(src_w - f.source.size(), ' ');
    out += ' ';
    const auto n = static_cast<std::size_t>(
        std::llround(f.weight / max_weight * 30.0));
    out.append(std::max<std::size_t>(n, 1), '=');
    out += "> ";
    out += f.target;
    out.append(dst_w - f.target.size(), ' ');
    std::snprintf(buf, sizeof(buf), "  (%.1f%%)", f.weight / total * 100.0);
    out += buf;
    out += '\n';
  }
  return out;
}

std::string render_sparkline(std::span<const double> values) {
  if (values.empty()) return std::string();
  static constexpr const char* kBlocks[] = {"▁", "▂", "▃",
                                            "▄", "▅", "▆",
                                            "▇", "█"};
  const double lo = min_value(values);
  const double hi = max_value(values);
  std::string out;
  for (const double v : values) {
    std::size_t level = 0;
    if (hi > lo) {
      level = static_cast<std::size_t>((v - lo) / (hi - lo) * 7.999);
    }
    out += kBlocks[std::min<std::size_t>(level, 7)];
  }
  return out;
}

}  // namespace icn::util
