#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/error.h"

namespace icn::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ICN_REQUIRE(!headers_.empty(), "table needs at least one column");
  alignment_.assign(headers_.size(), Align::kRight);
  alignment_.front() = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> cells) {
  ICN_REQUIRE(cells.size() <= headers_.size(), "row wider than header");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::set_alignment(std::vector<Align> alignment) {
  ICN_REQUIRE(alignment.size() == headers_.size(), "alignment width");
  alignment_ = std::move(alignment);
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_cell = [&](std::string& out, const std::string& cell,
                       std::size_t c) {
    const std::size_t pad = widths[c] - cell.size();
    if (alignment_[c] == Align::kRight) out.append(pad, ' ');
    out += cell;
    if (alignment_[c] == Align::kLeft) out.append(pad, ' ');
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out += "  ";
    emit_cell(out, headers_[c], c);
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out += "  ";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c != 0) out += "  ";
      emit_cell(out, row[c], c);
    }
    out += '\n';
  }
  return out;
}

void TextTable::print(std::ostream& out) const { out << to_string(); }

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_percent(double fraction, int decimals) {
  return fmt_double(fraction * 100.0, decimals) + "%";
}

std::string fmt_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  double v = bytes;
  while (v >= 1000.0 && unit < 5) {
    v /= 1000.0;
    ++unit;
  }
  return fmt_double(v, 1) + " " + kUnits[unit];
}

}  // namespace icn::util
