// ByteQueue: the contiguous FIFO byte buffer behind every serve-layer
// connection. Reads append to the tail, frame parsing consumes from the
// head; consumed space is reclaimed by sliding the live region to the front
// only when the dead prefix dominates, so steady-state request traffic does
// no per-frame memmove and no per-frame allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace icn::util {

class ByteQueue {
 public:
  /// Bytes currently queued (appended and not yet consumed).
  [[nodiscard]] std::size_t size() const { return buf_.size() - head_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Contiguous view of the queued bytes.
  [[nodiscard]] std::span<const std::uint8_t> data() const {
    return {buf_.data() + head_, size()};
  }

  void append(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Grows the tail by `n` uninitialised bytes and returns a writable view
  /// of them (for readv-style fills); pair with shrink_tail when the fill
  /// came up short.
  [[nodiscard]] std::span<std::uint8_t> grow_tail(std::size_t n) {
    const std::size_t at = buf_.size();
    buf_.resize(at + n);
    return {buf_.data() + at, n};
  }

  void shrink_tail(std::size_t n) { buf_.resize(buf_.size() - n); }

  /// Drops `n` bytes from the head. Requires n <= size().
  void consume(std::size_t n);

  void clear() {
    buf_.clear();
    head_ = 0;
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;
};

}  // namespace icn::util
