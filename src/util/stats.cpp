#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "util/error.h"

namespace icn::util {

double mean(std::span<const double> xs) {
  ICN_REQUIRE(!xs.empty(), "mean of empty range");
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  ICN_REQUIRE(!xs.empty(), "variance of empty range");
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  ICN_REQUIRE(!xs.empty(), "quantile of empty range");
  std::vector<double> sorted(xs.begin(), xs.end());
  return quantile_inplace(sorted, q);
}

double quantile_inplace(std::span<double> xs, double q) {
  ICN_REQUIRE(!xs.empty(), "quantile of empty range");
  ICN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double median_inplace(std::span<double> xs) {
  return quantile_inplace(xs, 0.5);
}

double min_value(std::span<const double> xs) {
  ICN_REQUIRE(!xs.empty(), "min of empty range");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  ICN_REQUIRE(!xs.empty(), "max of empty range");
  return *std::max_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) {
  double acc = 0.0, comp = 0.0;  // Kahan compensation
  for (const double x : xs) {
    const double y = x - comp;
    const double t = acc + y;
    comp = (t - acc) - y;
    acc = t;
  }
  return acc;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  ICN_REQUIRE(xs.size() == ys.size() && !xs.empty(), "pearson sizes");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Histogram::bin_left(std::size_t i) const {
  return lo + static_cast<double>(i) * bin_width();
}

double Histogram::bin_width() const {
  return counts.empty() ? 0.0 : (hi - lo) / static_cast<double>(counts.size());
}

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (const std::size_t c : counts) t += c;
  return t;
}

Histogram make_histogram(std::span<const double> xs, double lo, double hi,
                         std::size_t bins) {
  ICN_REQUIRE(bins > 0, "histogram bins");
  ICN_REQUIRE(lo < hi, "histogram range");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (const double x : xs) {
    double idx = (x - lo) / width;
    if (idx < 0.0) idx = 0.0;
    auto bin = static_cast<std::size_t>(idx);
    if (bin >= bins) bin = bins - 1;
    ++h.counts[bin];
  }
  return h;
}

std::vector<double> normalize_by_max(std::span<const double> xs) {
  std::vector<double> out(xs.begin(), xs.end());
  if (out.empty()) return out;
  const double mx = max_value(xs);
  if (mx > 0.0) {
    for (auto& v : out) v /= mx;
  }
  return out;
}

double adjusted_rand_index(std::span<const int> a, std::span<const int> b) {
  ICN_REQUIRE(a.size() == b.size() && !a.empty(), "ARI sizes");
  std::map<std::pair<int, int>, double> contingency;
  std::map<int, double> rows, cols;
  for (std::size_t i = 0; i < a.size(); ++i) {
    contingency[{a[i], b[i]}] += 1.0;
    rows[a[i]] += 1.0;
    cols[b[i]] += 1.0;
  }
  auto choose2 = [](double n) { return n * (n - 1.0) / 2.0; };
  double sum_ij = 0.0, sum_a = 0.0, sum_b = 0.0;
  for (const auto& [key, n] : contingency) sum_ij += choose2(n);
  for (const auto& [key, n] : rows) sum_a += choose2(n);
  for (const auto& [key, n] : cols) sum_b += choose2(n);
  const double total = choose2(static_cast<double>(a.size()));
  const double expected = sum_a * sum_b / total;
  const double max_index = 0.5 * (sum_a + sum_b);
  if (max_index == expected) return 1.0;  // both partitions trivial
  return (sum_ij - expected) / (max_index - expected);
}

}  // namespace icn::util
