#include "net/environment.h"

#include <algorithm>
#include <cctype>
#include <string>

#include "util/error.h"

namespace icn::net {

const std::array<Environment, kNumEnvironments>& all_environments() {
  static const std::array<Environment, kNumEnvironments> kAll = {
      Environment::kMetro,      Environment::kTrain,
      Environment::kAirport,    Environment::kWorkspace,
      Environment::kCommercial, Environment::kStadium,
      Environment::kExpo,       Environment::kHotel,
      Environment::kHospital,   Environment::kTunnel,
      Environment::kPublicBuilding,
  };
  return kAll;
}

const char* environment_name(Environment e) {
  switch (e) {
    case Environment::kMetro:
      return "Metro";
    case Environment::kTrain:
      return "Train";
    case Environment::kAirport:
      return "Airport";
    case Environment::kWorkspace:
      return "Workspace";
    case Environment::kCommercial:
      return "Commercial";
    case Environment::kStadium:
      return "Stadium";
    case Environment::kExpo:
      return "ExpoCenter";
    case Environment::kHotel:
      return "Hotel";
    case Environment::kHospital:
      return "Hospital";
    case Environment::kTunnel:
      return "Tunnel";
    case Environment::kPublicBuilding:
      return "PublicBuilding";
  }
  return "?";
}

std::size_t paper_antenna_count(Environment e) {
  // Table 1, N_env row.
  switch (e) {
    case Environment::kMetro:
      return 1794;
    case Environment::kTrain:
      return 434;
    case Environment::kAirport:
      return 187;
    case Environment::kWorkspace:
      return 774;
    case Environment::kCommercial:
      return 469;
    case Environment::kStadium:
      return 451;
    case Environment::kExpo:
      return 230;
    case Environment::kHotel:
      return 28;
    case Environment::kHospital:
      return 53;
    case Environment::kTunnel:
      return 220;
    case Environment::kPublicBuilding:
      return 122;
  }
  ICN_REQUIRE(false, "unknown environment");
  return 0;
}

std::size_t paper_total_antennas() {
  std::size_t total = 0;
  for (const Environment e : all_environments()) {
    total += paper_antenna_count(e);
  }
  return total;
}

std::optional<Environment> classify_environment_from_name(
    std::string_view antenna_name) {
  std::string upper(antenna_name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  struct Keyword {
    const char* token;
    Environment env;
  };
  // Order matters: more specific tokens first (e.g. GARE before PARIS).
  static constexpr Keyword kKeywords[] = {
      {"METRO", Environment::kMetro},
      {"RER", Environment::kMetro},
      {"SUBWAY", Environment::kMetro},
      {"GARE", Environment::kTrain},
      {"TRAIN", Environment::kTrain},
      {"TGV", Environment::kTrain},
      {"AEROPORT", Environment::kAirport},
      {"AIRPORT", Environment::kAirport},
      {"TERMINAL", Environment::kAirport},
      {"BUREAU", Environment::kWorkspace},
      {"OFFICE", Environment::kWorkspace},
      {"SIEGE", Environment::kWorkspace},
      {"USINE", Environment::kWorkspace},
      {"CAMPUS_CORP", Environment::kWorkspace},
      {"CENTRE_CIAL", Environment::kCommercial},
      {"MALL", Environment::kCommercial},
      {"MAGASIN", Environment::kCommercial},
      {"BOUTIQUE", Environment::kCommercial},
      {"SHOP", Environment::kCommercial},
      {"STADE", Environment::kStadium},
      {"STADIUM", Environment::kStadium},
      {"ARENA", Environment::kStadium},
      {"EXPO", Environment::kExpo},
      {"CONGRES", Environment::kExpo},
      {"CONVENTION", Environment::kExpo},
      {"HOTEL", Environment::kHotel},
      {"HOPITAL", Environment::kHospital},
      {"HOSPITAL", Environment::kHospital},
      {"CHU", Environment::kHospital},
      {"TUNNEL", Environment::kTunnel},
      {"UNIVERSITE", Environment::kPublicBuilding},
      {"MUSEE", Environment::kPublicBuilding},
      {"MAIRIE", Environment::kPublicBuilding},
      {"PREFECTURE", Environment::kPublicBuilding},
  };
  for (const auto& kw : kKeywords) {
    if (upper.find(kw.token) != std::string::npos) return kw.env;
  }
  return std::nullopt;
}

}  // namespace icn::net
