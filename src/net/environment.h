// The eleven indoor-environment categories of Table 1, plus the name-keyword
// classifier the paper describes in Sec. 5.2.1 ("inspecting the names of the
// antennas, applying simple string manipulation to extract keywords").
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string_view>

namespace icn::net {

/// Indoor environment type of an ICN deployment site (Table 1).
enum class Environment : int {
  kMetro = 0,
  kTrain = 1,
  kAirport = 2,
  kWorkspace = 3,
  kCommercial = 4,
  kStadium = 5,
  kExpo = 6,
  kHotel = 7,
  kHospital = 8,
  kTunnel = 9,
  kPublicBuilding = 10,
};

/// Number of indoor environment categories.
inline constexpr std::size_t kNumEnvironments = 11;

/// All environments in Table 1 order.
[[nodiscard]] const std::array<Environment, kNumEnvironments>&
all_environments();

/// Human-readable name, e.g. "Metro".
[[nodiscard]] const char* environment_name(Environment e);

/// The number of ICN antennas the paper reports for this environment
/// (Table 1, N_env row; the total is 4,762).
[[nodiscard]] std::size_t paper_antenna_count(Environment e);

/// Sum of paper_antenna_count over all environments (= 4,762).
[[nodiscard]] std::size_t paper_total_antennas();

/// Classifies an environment from an MNO-style antenna name by keyword
/// extraction (the Sec. 5.2.1 procedure), e.g.
/// "IDF_METRO_CHATELET_HALL2_A3" -> kMetro. Case-insensitive; returns
/// nullopt when no known keyword occurs.
[[nodiscard]] std::optional<Environment> classify_environment_from_name(
    std::string_view antenna_name);

}  // namespace icn::net
