#include "net/topology.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>

#include "util/error.h"
#include "util/rng.h"

namespace icn::net {
namespace {

using icn::util::Rng;

/// Mean indoor antennas per site for each environment; chosen so the full
/// population groups into >1,000 sites, as the paper reports.
double antennas_per_site(Environment e) {
  switch (e) {
    case Environment::kMetro:
      return 6.0;  // ~300 stations
    case Environment::kTrain:
      return 4.0;
    case Environment::kAirport:
      return 12.0;  // few, large terminals
    case Environment::kWorkspace:
      return 2.0;
    case Environment::kCommercial:
      return 2.5;
    case Environment::kStadium:
      return 15.0;  // dense high-capacity venues
    case Environment::kExpo:
      return 8.0;
    case Environment::kHotel:
      return 1.5;
    case Environment::kHospital:
      return 2.0;
    case Environment::kTunnel:
      return 3.0;
    case Environment::kPublicBuilding:
      return 2.0;
  }
  return 2.0;
}

/// Per-environment city mix (weights over the 6 city classes, Table-1 /
/// Sec. 5.2.2 narrative: metros only exist in the five metro cities, the
/// commercial population is mostly outside Paris, offices concentrate in
/// Paris, etc.).
std::array<double, kNumCities> city_mix(Environment e) {
  switch (e) {
    case Environment::kMetro:
      return {0.75, 0.07, 0.08, 0.05, 0.05, 0.00};
    case Environment::kTrain:
      return {0.35, 0.08, 0.08, 0.08, 0.08, 0.33};
    case Environment::kAirport:
      return {0.55, 0.04, 0.08, 0.03, 0.08, 0.22};
    case Environment::kWorkspace:
      return {0.70, 0.04, 0.04, 0.04, 0.04, 0.14};
    case Environment::kCommercial:
      return {0.08, 0.06, 0.06, 0.06, 0.06, 0.68};
    case Environment::kStadium:
      return {0.40, 0.08, 0.08, 0.08, 0.08, 0.28};
    case Environment::kExpo:
      return {0.55, 0.05, 0.15, 0.05, 0.05, 0.15};
    case Environment::kHotel:
      return {0.40, 0.05, 0.05, 0.05, 0.05, 0.40};
    case Environment::kHospital:
      return {0.25, 0.05, 0.05, 0.05, 0.05, 0.55};
    case Environment::kTunnel:
      return {0.15, 0.05, 0.05, 0.05, 0.05, 0.65};
    case Environment::kPublicBuilding:
      return {0.30, 0.05, 0.05, 0.05, 0.10, 0.45};
  }
  return {0.2, 0.1, 0.1, 0.1, 0.1, 0.4};
}

/// Name token recognized by classify_environment_from_name.
const char* env_token(Environment e) {
  switch (e) {
    case Environment::kMetro:
      return "METRO";
    case Environment::kTrain:
      return "GARE";
    case Environment::kAirport:
      return "TERMINAL";
    case Environment::kWorkspace:
      return "BUREAU";
    case Environment::kCommercial:
      return "CENTRE_CIAL";
    case Environment::kStadium:
      return "STADE";
    case Environment::kExpo:
      return "EXPO";
    case Environment::kHotel:
      return "HOTEL";
    case Environment::kHospital:
      return "HOPITAL";
    case Environment::kTunnel:
      return "TUNNEL";
    case Environment::kPublicBuilding:
      return "UNIVERSITE";
  }
  return "SITE";
}

/// Spatial jitter (degrees) of site placement around the city centre.
double city_sigma_deg(City c) {
  return c == City::kOther ? 1.8 : 0.05;
}

GeoPoint jitter(const GeoPoint& center, double sigma_deg, Rng& rng) {
  return GeoPoint{center.lat_deg + rng.normal(0.0, sigma_deg),
                  center.lon_deg + rng.normal(0.0, sigma_deg)};
}

std::string upper_city(City c) {
  std::string s = city_name(c);
  for (auto& ch : s) ch = static_cast<char>(std::toupper(ch));
  return s;
}

}  // namespace

const char* radio_tech_name(RadioTech t) {
  switch (t) {
    case RadioTech::kLte:
      return "4G LTE";
    case RadioTech::kNr:
      return "5G NR (NSA)";
  }
  return "?";
}

Topology Topology::generate(const TopologyParams& params) {
  ICN_REQUIRE(params.scale > 0.0, "topology scale > 0");
  ICN_REQUIRE(params.outdoor_ratio >= 0.0, "topology outdoor ratio");
  ICN_REQUIRE(params.indoor_nr_fraction >= 0.0 &&
                  params.indoor_nr_fraction <= 1.0,
              "indoor NR fraction");
  ICN_REQUIRE(params.outdoor_nr_fraction >= 0.0 &&
                  params.outdoor_nr_fraction <= 1.0,
              "outdoor NR fraction");
  Topology topo;
  Rng rng(icn::util::derive_seed(params.seed, 0x7069'70CFULL));
  // Radio-technology draws use their own substream so enabling/disabling NR
  // does not perturb the spatial randomization.
  Rng tech_rng(icn::util::derive_seed(params.seed, 0x7EC4'0001ULL));

  std::uint32_t antenna_id = 0;
  std::uint32_t site_id = 0;
  char buf[96];

  for (const Environment env : all_environments()) {
    const auto target = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               params.scale *
               static_cast<double>(paper_antenna_count(env)))));
    const auto mix = city_mix(env);
    std::size_t produced = 0;
    while (produced < target) {
      const auto city = static_cast<City>(rng.categorical(mix));
      // Site size: 1 + Poisson(mean-1), clipped to remaining antennas.
      const double mean = antennas_per_site(env);
      std::size_t site_size =
          1 + static_cast<std::size_t>(rng.poisson(std::max(0.0, mean - 1.0)));
      site_size = std::min(site_size, target - produced);

      Site site;
      site.id = site_id;
      site.environment = env;
      site.city = city;
      site.location = jitter(city_center(city), city_sigma_deg(city), rng);
      std::snprintf(buf, sizeof(buf), "%s_%s_S%04u", upper_city(city).c_str(),
                    env_token(env), site_id);
      site.name = buf;

      for (std::size_t a = 0; a < site_size; ++a) {
        Antenna ant;
        ant.id = antenna_id;
        ant.environment = env;
        ant.city = city;
        ant.site_id = site_id;
        ant.indoor = true;
        ant.tech = tech_rng.bernoulli(params.indoor_nr_fraction)
                       ? RadioTech::kNr
                       : RadioTech::kLte;
        // Antennas sit within ~100 m of the site reference point.
        ant.location = jitter(site.location, 0.001, rng);
        std::snprintf(buf, sizeof(buf), "%s_A%u", site.name.c_str(),
                      static_cast<unsigned>(a + 1));
        ant.name = buf;
        site.antenna_ids.push_back(antenna_id);
        topo.indoor_.push_back(std::move(ant));
        ++antenna_id;
        ++produced;
      }
      topo.sites_.push_back(std::move(site));
      ++site_id;
    }
  }

  // Outdoor macro antennas near the ICN sites (Sec. 5.3: ~22k within 1 km).
  std::uint32_t outdoor_id = antenna_id;
  for (const Site& site : topo.sites_) {
    const double expected =
        params.outdoor_ratio * static_cast<double>(site.antenna_ids.size());
    const auto n = static_cast<std::size_t>(rng.poisson(expected));
    for (std::size_t i = 0; i < n; ++i) {
      Antenna ant;
      ant.id = outdoor_id;
      ant.environment = site.environment;  // nearest-ICN context only
      ant.city = site.city;
      ant.site_id = site.id;
      ant.indoor = false;
      ant.tech = tech_rng.bernoulli(params.outdoor_nr_fraction)
                     ? RadioTech::kNr
                     : RadioTech::kLte;
      // Within ~1 km: 0.009 degrees of latitude ~ 1 km.
      ant.location = jitter(site.location, 0.004, rng);
      std::snprintf(buf, sizeof(buf), "%s_MACRO_O%u", upper_city(site.city).c_str(),
                    static_cast<unsigned>(outdoor_id));
      ant.name = buf;
      topo.outdoor_.push_back(std::move(ant));
      ++outdoor_id;
    }
  }
  return topo;
}

std::size_t Topology::environment_count(Environment e) const {
  std::size_t n = 0;
  for (const auto& a : indoor_) {
    if (a.environment == e) ++n;
  }
  return n;
}

std::size_t Topology::nr_count(bool indoor_side) const {
  const auto& antennas = indoor_side ? indoor_ : outdoor_;
  std::size_t n = 0;
  for (const auto& a : antennas) {
    if (a.tech == RadioTech::kNr) ++n;
  }
  return n;
}

std::vector<std::size_t> Topology::antennas_of_environment(
    Environment e) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < indoor_.size(); ++i) {
    if (indoor_[i].environment == e) out.push_back(i);
  }
  return out;
}

}  // namespace icn::net
