#include "net/city.h"

#include <cmath>

namespace icn::net {

const std::array<City, kNumCities>& all_cities() {
  static const std::array<City, kNumCities> kAll = {
      City::kParis, City::kLille,    City::kLyon,
      City::kRennes, City::kToulouse, City::kOther,
  };
  return kAll;
}

const char* city_name(City c) {
  switch (c) {
    case City::kParis:
      return "Paris";
    case City::kLille:
      return "Lille";
    case City::kLyon:
      return "Lyon";
    case City::kRennes:
      return "Rennes";
    case City::kToulouse:
      return "Toulouse";
    case City::kOther:
      return "Other";
  }
  return "?";
}

bool is_paris(City c) { return c == City::kParis; }

bool has_provincial_metro(City c) {
  return c == City::kLille || c == City::kLyon || c == City::kRennes ||
         c == City::kToulouse;
}

GeoPoint city_center(City c) {
  switch (c) {
    case City::kParis:
      return {48.8566, 2.3522};
    case City::kLille:
      return {50.6292, 3.0573};
    case City::kLyon:
      return {45.7640, 4.8357};
    case City::kRennes:
      return {48.1173, -1.6778};
    case City::kToulouse:
      return {43.6047, 1.4442};
    case City::kOther:
      return {47.0000, 2.0000};  // nominal centre of France
  }
  return {0.0, 0.0};
}

double distance_km(const GeoPoint& a, const GeoPoint& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = M_PI / 180.0;
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(h));
}

}  // namespace icn::net
