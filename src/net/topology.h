// Synthetic nationwide radio-access topology.
//
// Reproduces the antenna population of the paper's dataset: 4,762 indoor
// antennas distributed over the 11 environment types exactly per Table 1,
// grouped into >1,000 sites, placed in Paris / Lille / Lyon / Rennes /
// Toulouse / elsewhere with per-environment city mixes consistent with
// Sec. 5.2.2 (e.g. ~75% of metro antennas in the Paris network), plus
// ~22,000 outdoor macro antennas within 1 km of the ICN sites (Sec. 5.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/city.h"
#include "net/environment.h"

namespace icn::net {

/// Radio access technology of an antenna. The paper's operator runs a 5G
/// non-standalone deployment where "the vast majority of those antennas are
/// 4G, as apparently 5G is scarcely used for ICN at this stage of roll-out"
/// (Sec. 3); both share the 4G EPC, which is why one probe vantage covers
/// both.
enum class RadioTech : std::uint8_t {
  kLte = 0,  ///< 4G eNodeB.
  kNr = 1,   ///< 5G NSA gNodeB (anchored on the 4G core).
};

/// Human-readable name ("4G LTE" / "5G NR (NSA)").
[[nodiscard]] const char* radio_tech_name(RadioTech t);

/// One cellular antenna (a BTS sector carrier in the paper's terminology).
struct Antenna {
  std::uint32_t id = 0;       ///< Dense id; indoor antennas come first.
  std::string name;           ///< MNO-style name embedding an env keyword.
  Environment environment = Environment::kMetro;  ///< Indoor antennas only.
  City city = City::kOther;
  std::uint32_t site_id = 0;  ///< Owning site (outdoor: nearest ICN site).
  GeoPoint location;
  bool indoor = true;
  RadioTech tech = RadioTech::kLte;
};

/// One deployment location (metro station, office building, stadium, ...).
struct Site {
  std::uint32_t id = 0;
  std::string name;
  Environment environment = Environment::kMetro;
  City city = City::kOther;
  GeoPoint location;
  std::vector<std::uint32_t> antenna_ids;  ///< Indoor antennas of this site.
};

/// Topology generation parameters.
struct TopologyParams {
  std::uint64_t seed = 1234;
  /// Scales the Table-1 antenna counts (1.0 = the paper's 4,762 indoor
  /// antennas). Each environment keeps at least one antenna.
  double scale = 1.0;
  /// Mean number of outdoor macro antennas generated within 1 km of each
  /// indoor antenna's site; the paper observes ~22,000 outdoor antennas for
  /// 4,762 indoor ones (ratio ~4.6).
  double outdoor_ratio = 4.62;
  /// Fraction of *indoor* antennas on 5G NR: scarce at the paper's stage of
  /// the French roll-out. Outdoor macros carry more NR (early 5G coverage
  /// is outside-in).
  double indoor_nr_fraction = 0.04;
  double outdoor_nr_fraction = 0.25;
};

/// The generated nationwide topology.
class Topology {
 public:
  /// Deterministically generates a topology from the parameters.
  [[nodiscard]] static Topology generate(const TopologyParams& params);

  [[nodiscard]] const std::vector<Antenna>& indoor() const { return indoor_; }
  [[nodiscard]] const std::vector<Antenna>& outdoor() const {
    return outdoor_;
  }
  [[nodiscard]] const std::vector<Site>& sites() const { return sites_; }

  /// Number of indoor antennas in the given environment.
  [[nodiscard]] std::size_t environment_count(Environment e) const;

  /// Indices (into indoor()) of antennas in the given environment.
  [[nodiscard]] std::vector<std::size_t> antennas_of_environment(
      Environment e) const;

  /// Number of 5G NR antennas among indoor (or outdoor) antennas.
  [[nodiscard]] std::size_t nr_count(bool indoor_side) const;

 private:
  std::vector<Antenna> indoor_;
  std::vector<Antenna> outdoor_;
  std::vector<Site> sites_;
};

}  // namespace icn::net
