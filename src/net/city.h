// City model: the paper distinguishes Paris (and suburbs) from the non-capital
// metro cities (Lille, Lyon, Rennes, Toulouse) and everything else, and uses
// that split to interpret clusters 0/4 vs 7, and 1/2/3 (Sec. 5.2.2).
#pragma once

#include <array>
#include <cstddef>

namespace icn::net {

/// City (or city class) an antenna belongs to.
enum class City : int {
  kParis = 0,     ///< Paris and its suburbs (incl. the RER network).
  kLille = 1,
  kLyon = 2,
  kRennes = 3,
  kToulouse = 4,
  kOther = 5,     ///< Any other French urban/suburban/rural location.
};

/// Number of city classes.
inline constexpr std::size_t kNumCities = 6;

/// All city classes.
[[nodiscard]] const std::array<City, kNumCities>& all_cities();

/// Human-readable name, e.g. "Paris".
[[nodiscard]] const char* city_name(City c);

/// True for Paris and its suburbs.
[[nodiscard]] bool is_paris(City c);

/// True for the non-capital cities that operate their own metro systems
/// (Lille, Lyon, Rennes, Toulouse) — cluster 7's home in the paper.
[[nodiscard]] bool has_provincial_metro(City c);

/// Approximate geographic centre (latitude, longitude) used to place
/// synthetic sites.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// City centre coordinates.
[[nodiscard]] GeoPoint city_center(City c);

/// Great-circle distance between two points in kilometres (haversine).
[[nodiscard]] double distance_km(const GeoPoint& a, const GeoPoint& b);

}  // namespace icn::net
