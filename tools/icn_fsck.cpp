// icn_fsck — offline integrity checker for ICNSNAP1 snapshot/checkpoint
// files. Section-scans the file, reports per-section CRC validity and the
// longest-valid-prefix offset (where recover_snapshot would truncate), and
// exits with a typed code so scripts can branch on the verdict without
// parsing output:
//
//   0  clean: header + every section valid, no trailing bytes
//   1  torn: valid prefix followed by garbage — recoverable by truncation
//   2  unusable: the file header itself is missing or corrupt
//   3  I/O error: file missing or unreadable
//   4  usage error
//
// Usage: icn_fsck [-q] <snapshot>...
//   -q  quiet: verdict line only, no per-section table.
//
// With several files the exit code is the worst (highest) verdict.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "store/snapshot.h"
#include "util/error.h"

namespace {

const char* section_name(icn::store::SectionType type) {
  using icn::store::SectionType;
  switch (type) {
    case SectionType::kMatrix:
      return "matrix";
    case SectionType::kStreamMeta:
      return "streammeta";
    case SectionType::kWindow:
      return "window";
    case SectionType::kCoverage:
      return "coverage";
    case SectionType::kQuarantine:
      return "quarantine";
  }
  return "?";
}

int check_one(const std::string& path, bool quiet) {
  icn::store::ScanReport report;
  try {
    report = icn::store::scan_snapshot(path);
  } catch (const icn::store::SnapshotError& err) {
    std::printf("%s: UNUSABLE: %s\n", path.c_str(), err.what());
    return 2;
  } catch (const icn::util::IoError& err) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), err.what());
    return 3;
  }

  if (!quiet) {
    for (const auto& info : report.sections) {
      std::printf("  %-10s header @%-10" PRIu64 " payload @%-10" PRIu64
                  " %" PRIu64 " byte(s)  crc ok\n",
                  section_name(info.type), info.header_offset,
                  info.payload_offset, info.payload_size);
    }
  }
  if (report.clean) {
    std::printf("%s: CLEAN: %zu section(s), %" PRIu64 " byte(s)\n",
                path.c_str(), report.sections.size(), report.file_size);
    return 0;
  }
  std::printf("%s: TORN: %zu valid section(s), valid prefix %" PRIu64
              " of %" PRIu64 " byte(s) (%s)\n",
              path.c_str(), report.sections.size(), report.valid_bytes,
              report.file_size, report.error.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "-q") == 0) {
      quiet = true;
      ++arg;
    } else {
      std::fprintf(stderr, "icn_fsck: unknown option %s\n", argv[arg]);
      return 4;
    }
  }
  if (arg >= argc) {
    std::fprintf(stderr,
                 "usage: icn_fsck [-q] <snapshot>...\n"
                 "exit: 0 clean, 1 torn (recoverable), 2 unusable header,\n"
                 "      3 I/O error, 4 usage\n");
    return 4;
  }
  int worst = 0;
  for (; arg < argc; ++arg) {
    const int code = check_one(argv[arg], quiet);
    if (code > worst) worst = code;
  }
  return worst;
}
