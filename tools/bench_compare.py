#!/usr/bin/env python3
"""Compares two icn-bench-v1 trajectory files and fails on wall-time regressions.

Usage:
  tools/bench_compare.py BASELINE.json CURRENT.json
      [--rtol 0.25] [--ops Op1,Op2,...] [--normalize-op OpName]

Runs are matched by full benchmark name. Any matched run whose op is in the
pinned set and whose wall_ns exceeds the baseline by more than --rtol
(default 0.25, the 25% gate) is a regression and the script exits nonzero.

With --normalize-op, each file's wall times are first divided by the mean
wall_ns of the named op *in that same file*. That cancels host-speed
differences, so a baseline recorded on one machine can gate runs on another:
what is compared is "how many units of the reference op does this op cost",
not raw nanoseconds. Pick a single-threaded, CPU-bound reference
(Crc32cTable works well) so the unit itself is stable.

Runs present in only one file are reported but tolerated — SIMD-lane benches
skip (and drop out of the JSON) on hardware without the lane. A pinned op
losing *all* of its runs is fatal, so an op cannot silently vanish from the
suite.
"""
import argparse
import json
import sys

# Ops gated by default: the analysis hot paths this repo optimizes, restricted
# to shapes the smoke preset keeps (see the smoke filters in bench/*.cpp).
DEFAULT_PINNED = [
    "WardNnChain",
    "SilhouetteScore",
    "CondensedDistances",
    "RscaRowSimd",
    "SquaredEuclideanSimd",
    "TreeShapPerSample",
]


def load_runs(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: {path}: unreadable or invalid JSON: {e}")
    if doc.get("schema") != "icn-bench-v1":
        sys.exit(f"error: {path}: not an icn-bench-v1 file")
    runs = {}
    for run in doc.get("runs", []):
        name = run.get("name")
        wall = run.get("wall_ns")
        if isinstance(name, str) and isinstance(wall, (int, float)) and wall > 0:
            runs[name] = float(wall)
    if not runs:
        sys.exit(f"error: {path}: no usable runs")
    return doc, runs


def op_of(name):
    """Mirrors bench/report.cpp: 'Fixture/BM_Name/123' -> 'Name'."""
    op = name.split("/")[0]
    at = name.find("BM_")
    if at != -1:
        op = name[at + 3:].split("/")[0]
    elif op.startswith("BM_"):
        op = op[3:]
    return op


def normalizer(path, runs, norm_op):
    ticks = [w for name, w in runs.items() if op_of(name) == norm_op]
    if not ticks:
        sys.exit(f"error: {path}: --normalize-op {norm_op!r} has no runs")
    return sum(ticks) / len(ticks)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--rtol", type=float, default=0.25,
                        help="allowed relative slowdown (default 0.25 = +25%%)")
    parser.add_argument("--ops", default=",".join(DEFAULT_PINNED),
                        help="comma-separated pinned op names to gate")
    parser.add_argument("--normalize-op", default=None, metavar="OP",
                        help="divide each file's wall times by the mean "
                             "wall_ns of OP in that file before comparing")
    args = parser.parse_args()
    pinned = {op.strip() for op in args.ops.split(",") if op.strip()}
    if not pinned:
        sys.exit("error: empty pinned op set")

    _, base_runs = load_runs(args.baseline)
    _, cur_runs = load_runs(args.current)
    base_scale = cur_scale = 1.0
    if args.normalize_op:
        base_scale = normalizer(args.baseline, base_runs, args.normalize_op)
        cur_scale = normalizer(args.current, cur_runs, args.normalize_op)
        print(f"normalizing by {args.normalize_op}: baseline unit "
              f"{base_scale:.1f} ns, current unit {cur_scale:.1f} ns")

    regressions = []
    matched_ops = set()
    limit = 1.0 + args.rtol
    for name in sorted(base_runs):
        op = op_of(name)
        if op not in pinned:
            continue
        if name not in cur_runs:
            print(f"  [only-baseline] {name}")
            continue
        matched_ops.add(op)
        ratio = (cur_runs[name] / cur_scale) / (base_runs[name] / base_scale)
        verdict = "REGRESSION" if ratio > limit else "ok"
        print(f"  [{verdict:>10}] {name}: {base_runs[name]:.1f} ns -> "
              f"{cur_runs[name]:.1f} ns (x{ratio:.3f}, limit x{limit:.2f})")
        if ratio > limit:
            regressions.append(name)
    for name in sorted(set(cur_runs) - set(base_runs)):
        if op_of(name) in pinned:
            print(f"  [only-current] {name}")

    missing = sorted(op for op in pinned
                     if op in {op_of(n) for n in base_runs}
                     and op not in matched_ops)
    if missing:
        print(f"error: pinned op(s) lost every run: {', '.join(missing)}",
              file=sys.stderr)
        return 1
    if regressions:
        print(f"error: {len(regressions)} run(s) regressed beyond "
              f"+{args.rtol:.0%}: {', '.join(regressions)}", file=sys.stderr)
        return 1
    print(f"ok: {len(matched_ops)} pinned op(s) within +{args.rtol:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
