// icn_query — one-shot CLI client for the snapshot query server.
//
// Usage:
//   icn_query [--retries <n>] [--timeout-ms <ms>] <port> <command> [args...]
//
// Commands:
//   icn_query <port> ping
//   icn_query <port> info
//   icn_query <port> slice <row> <service|all> [<hour_first> <hour_last>]
//   icn_query <port> cluster <row>
//   icn_query <port> shap <cluster> [<max_services>]
//   icn_query <port> coverage [<row>]
//   icn_query <port> quarantine
//   icn_query <port> health
//   icn_query <port> repin
//
// Connects to 127.0.0.1:<port>, issues exactly one query, prints the reply
// in a human-readable form, and exits 0 on a kOk reply, 1 on a typed error
// reply, 2 on usage/transport problems. --retries enables the resilient
// client path (reconnect + capped jittered backoff) for the idempotent
// queries; --timeout-ms bounds both connect and each read.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "serve/client.h"
#include "serve/protocol.h"

namespace {

using icn::serve::Opcode;
using icn::serve::Status;

void usage() {
  std::fprintf(stderr,
               "usage: icn_query [--retries <n>] [--timeout-ms <ms>] "
               "<port> <command> [args...]\n"
               "  ping\n"
               "  info\n"
               "  slice <row> <service|all> [<hour_first> <hour_last>]\n"
               "  cluster <row>\n"
               "  shap <cluster> [<max_services>]\n"
               "  coverage [<row>]\n"
               "  quarantine\n"
               "  health\n"
               "  repin\n");
}

std::uint32_t parse_u32(const char* s) {
  if (std::strcmp(s, "all") == 0) return icn::serve::kAllServices;
  return static_cast<std::uint32_t>(std::strtoul(s, nullptr, 10));
}

/// Little-endian reads out of the reply body.
class BodyView {
 public:
  explicit BodyView(std::span<const std::uint8_t> body) : body_(body) {}

  template <typename T>
  T take() {
    T v{};
    if (at_ + sizeof(T) <= body_.size()) {
      std::memcpy(&v, body_.data() + at_, sizeof(T));
      at_ += sizeof(T);
    } else {
      at_ = body_.size() + 1;  // Poison: short reply body.
    }
    return v;
  }

  [[nodiscard]] bool ok() const { return at_ <= body_.size(); }

 private:
  std::span<const std::uint8_t> body_;
  std::size_t at_ = 0;
};

void print_error(const icn::serve::Reply& reply) {
  BodyView body(reply.body);
  const auto len = body.take<std::uint32_t>();
  std::string detail;
  for (std::uint32_t i = 0; i < len && body.ok(); ++i) {
    detail += static_cast<char>(body.take<std::uint8_t>());
  }
  std::fprintf(stderr, "error: %s (status %u, generation %" PRIu64 ")%s%s\n",
               icn::serve::to_string(reply.status),
               static_cast<unsigned>(reply.status), reply.generation,
               detail.empty() ? "" : ": ", detail.c_str());
}

int print_reply(Opcode opcode, const icn::serve::Reply& reply) {
  if (reply.status != Status::kOk) {
    print_error(reply);
    return 1;
  }
  BodyView body(reply.body);
  std::printf("generation %" PRIu64 "\n", reply.generation);
  switch (opcode) {
    case Opcode::kPing: {
      std::printf("pong (protocol v%u)\n", body.take<std::uint32_t>());
      break;
    }
    case Opcode::kInfo: {
      const auto antennas = body.take<std::uint32_t>();
      const auto services = body.take<std::uint32_t>();
      const auto hours = body.take<std::int64_t>();
      const auto sections = body.take<std::uint32_t>();
      const auto windows = body.take<std::uint32_t>();
      const auto clusters = body.take<std::uint32_t>();
      const auto has_matrix = body.take<std::uint8_t>();
      const auto has_coverage = body.take<std::uint8_t>();
      const auto has_quarantine = body.take<std::uint8_t>();
      const auto has_analytics = body.take<std::uint8_t>();
      std::printf("antennas %u, services %u, hours %" PRId64
                  ", sections %u, windows %u, clusters %u\n",
                  antennas, services, hours, sections, windows, clusters);
      std::printf("matrix %s, coverage %s, quarantine %s, analytics %s\n",
                  has_matrix ? "yes" : "no", has_coverage ? "yes" : "no",
                  has_quarantine ? "yes" : "no", has_analytics ? "yes" : "no");
      break;
    }
    case Opcode::kSlice: {
      const auto hours = body.take<std::uint32_t>();
      const auto services = body.take<std::uint32_t>();
      if (hours == 0) {
        std::printf("totals over %u service(s):", services);
        for (std::uint32_t s = 0; s < services; ++s) {
          std::printf(" %.6g", body.take<double>());
        }
        std::printf("\n");
        break;
      }
      std::printf("%u hour(s) x %u service(s)\n", hours, services);
      for (std::uint32_t h = 0; h < hours; ++h) {
        std::printf("hour %u:", h);
        for (std::uint32_t s = 0; s < services; ++s) {
          std::printf(" %.6g", body.take<double>());
        }
        std::printf("\n");
      }
      break;
    }
    case Opcode::kCluster: {
      const auto label = body.take<std::int32_t>();
      if (label < 0) {
        std::printf("row not analyzed\n");
      } else {
        std::printf("cluster %d\n", label);
      }
      break;
    }
    case Opcode::kShap: {
      const auto count = body.take<std::uint32_t>();
      std::printf("%u ranked service(s)\n", count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto service = body.take<std::uint32_t>();
        const auto mean_abs = body.take<double>();
        const auto corr = body.take<double>();
        const auto mean_val = body.take<double>();
        std::printf(
            "  service %u: mean|shap| %.6g, corr %+.3f, mean value %.6g\n",
            service, mean_abs, corr, mean_val);
      }
      break;
    }
    case Opcode::kCoverage: {
      if (reply.body.size() == 4 + 8 + 8 + 8) {
        const auto rows = body.take<std::uint32_t>();
        const auto hours = body.take<std::int64_t>();
        const auto covered = body.take<std::uint64_t>();
        const auto total = body.take<std::uint64_t>();
        std::printf("summary: %u row(s) x %" PRId64 " hour(s), %" PRIu64
                    "/%" PRIu64 " cells covered\n",
                    rows, hours, covered, total);
      } else {
        const auto fraction = body.take<double>();
        const auto gaps = body.take<std::uint32_t>();
        std::printf("row coverage %.4f, %u gap(s)\n", fraction, gaps);
        for (std::uint32_t g = 0; g < gaps; ++g) {
          const auto first = body.take<std::int64_t>();
          const auto last = body.take<std::int64_t>();
          std::printf("  gap hours [%" PRId64 ", %" PRId64 "]\n", first, last);
        }
      }
      break;
    }
    case Opcode::kQuarantine: {
      const auto hours = body.take<std::uint32_t>();
      const auto rejected = body.take<std::uint64_t>();
      const auto repaired = body.take<std::uint64_t>();
      std::printf("%u hour(s): %" PRIu64 " rejected, %" PRIu64 " repaired\n",
                  hours, rejected, repaired);
      break;
    }
    case Opcode::kHealth: {
      const auto version = body.take<std::uint32_t>();
      const auto open_sessions = body.take<std::uint32_t>();
      const auto latest_generation = body.take<std::uint64_t>();
      const auto degraded_publishes = body.take<std::uint64_t>();
      const auto accepted = body.take<std::uint64_t>();
      const auto refused = body.take<std::uint64_t>();
      const auto closed = body.take<std::uint64_t>();
      const auto frames_served = body.take<std::uint64_t>();
      const auto ticks = body.take<std::uint64_t>();
      const auto evicted_idle = body.take<std::uint64_t>();
      const auto evicted_deadline = body.take<std::uint64_t>();
      const auto shutdown_rejects = body.take<std::uint64_t>();
      const auto checkpoint_failures = body.take<std::uint64_t>();
      const auto draining = body.take<std::uint8_t>();
      std::printf("protocol v%u, %s\n", version,
                  draining ? "draining" : "serving");
      std::printf("sessions %u open, latest generation %" PRIu64
                  ", degraded publishes %" PRIu64 "\n",
                  open_sessions, latest_generation, degraded_publishes);
      std::printf("connections: %" PRIu64 " accepted, %" PRIu64
                  " refused, %" PRIu64 " closed\n",
                  accepted, refused, closed);
      std::printf("frames served %" PRIu64 " over %" PRIu64 " tick(s)\n",
                  frames_served, ticks);
      std::printf("evictions: %" PRIu64 " idle, %" PRIu64
                  " deadline; shutdown rejects %" PRIu64 "\n",
                  evicted_idle, evicted_deadline, shutdown_rejects);
      std::printf("checkpoint failures %" PRIu64 "\n", checkpoint_failures);
      break;
    }
    case Opcode::kRepin: {
      std::printf("repinned\n");
      break;
    }
  }
  if (!body.ok()) {
    std::fprintf(stderr, "warning: reply body shorter than expected\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  icn::serve::ClientOptions options;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    const std::string flag = argv[arg];
    if (flag == "--retries" && arg + 1 < argc) {
      options.max_attempts =
          std::max(1u, parse_u32(argv[arg + 1]));
      arg += 2;
    } else if (flag == "--timeout-ms" && arg + 1 < argc) {
      const int ms = static_cast<int>(std::strtol(argv[arg + 1], nullptr, 10));
      options.connect_timeout_ms = ms;
      options.read_timeout_ms = ms;
      arg += 2;
    } else {
      usage();
      return 2;
    }
  }
  argv += arg - 1;
  argc -= arg - 1;
  if (argc < 3) {
    usage();
    return 2;
  }
  const auto port = static_cast<std::uint16_t>(std::strtoul(argv[1], nullptr, 10));
  const std::string command = argv[2];

  Opcode opcode{};
  std::vector<std::uint8_t> request_body;
  if (command == "ping") {
    opcode = Opcode::kPing;
  } else if (command == "info") {
    opcode = Opcode::kInfo;
  } else if (command == "slice" && (argc == 5 || argc == 7)) {
    opcode = Opcode::kSlice;
    const std::int64_t first =
        argc == 7 ? std::strtoll(argv[5], nullptr, 10) : icn::serve::kTotalsHours;
    const std::int64_t last =
        argc == 7 ? std::strtoll(argv[6], nullptr, 10) : icn::serve::kTotalsHours;
    request_body = icn::serve::make_slice_body(parse_u32(argv[3]),
                                               parse_u32(argv[4]), first, last);
  } else if (command == "cluster" && argc == 4) {
    opcode = Opcode::kCluster;
    request_body = icn::serve::make_cluster_body(parse_u32(argv[3]));
  } else if (command == "shap" && (argc == 4 || argc == 5)) {
    opcode = Opcode::kShap;
    request_body = icn::serve::make_shap_body(
        parse_u32(argv[3]), argc == 5 ? parse_u32(argv[4]) : 0);
  } else if (command == "coverage" && (argc == 3 || argc == 4)) {
    opcode = Opcode::kCoverage;
    request_body = icn::serve::make_coverage_body(
        argc == 4 ? parse_u32(argv[3]) : icn::serve::kAllRows);
  } else if (command == "quarantine") {
    opcode = Opcode::kQuarantine;
  } else if (command == "health") {
    opcode = Opcode::kHealth;
  } else if (command == "repin") {
    opcode = Opcode::kRepin;
  } else {
    usage();
    return 2;
  }

  try {
    icn::serve::QueryClient client(port, options);
    // Every query here is an idempotent read (repin only refreshes the
    // session's generation pin), so the retrying path is safe whenever the
    // user asked for more than one attempt.
    const icn::serve::Reply reply =
        options.max_attempts > 1
            ? client.call_idempotent(opcode, request_body, 1)
            : client.call(opcode, request_body, 1);
    return print_reply(opcode, reply);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "icn_query: %s\n", e.what());
    return 2;
  }
}
