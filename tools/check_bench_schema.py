#!/usr/bin/env python3
"""Validates BENCH_*.json perf-trajectory files against the icn-bench-v1 schema.

Usage: tools/check_bench_schema.py BENCH_a.json [BENCH_b.json ...]

Exits nonzero (with one line per violation) if any file is malformed, so the
CI perf-smoke job fails when the emitter and the schema drift apart.
"""
import json
import sys

REQUIRED_TOP = {
    "schema": str,
    "bench": str,
    "git_rev": str,
    "preset": str,
    "simd": str,
    "crc32c_backend": str,
    "hw_threads": int,
    "runs": list,
}
REQUIRED_RUN = {
    "name": str,
    "op": str,
    "iterations": int,
    "wall_ns": (int, float),
    "threads": (int, float),
}
SIMD_LEVELS = {"scalar", "sse2", "avx2", "avx512", "avx2fma"}
CRC_BACKENDS = {"table", "sse4.2"}
PRESETS = {"full", "smoke"}
# Optional top-level keys (emitted conditionally, e.g. the single-core
# caveat note on 1-hardware-thread hosts).
OPTIONAL_TOP = {"notes": str}


def check(path: str) -> list[str]:
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]
    for key, typ in REQUIRED_TOP.items():
        if key not in doc:
            errors.append(f"{path}: missing top-level key {key!r}")
        elif not isinstance(doc[key], typ):
            errors.append(f"{path}: {key!r} must be {typ}, got {type(doc[key])}")
    for key, typ in OPTIONAL_TOP.items():
        if key in doc and not isinstance(doc[key], typ):
            errors.append(f"{path}: {key!r} must be {typ}, got {type(doc[key])}")
    if errors:
        return errors
    if doc["schema"] != "icn-bench-v1":
        errors.append(f"{path}: schema {doc['schema']!r} != 'icn-bench-v1'")
    if doc["preset"] not in PRESETS:
        errors.append(f"{path}: preset {doc['preset']!r} not in {PRESETS}")
    if doc["simd"] not in SIMD_LEVELS:
        errors.append(f"{path}: simd {doc['simd']!r} not in {SIMD_LEVELS}")
    if doc["crc32c_backend"] not in CRC_BACKENDS:
        errors.append(
            f"{path}: crc32c_backend {doc['crc32c_backend']!r} "
            f"not in {CRC_BACKENDS}")
    if not doc["runs"]:
        errors.append(f"{path}: no runs recorded")
    for i, run in enumerate(doc["runs"]):
        where = f"{path}: runs[{i}]"
        if not isinstance(run, dict):
            errors.append(f"{where}: not an object")
            continue
        for key, typ in REQUIRED_RUN.items():
            if key not in run:
                errors.append(f"{where}: missing {key!r}")
            elif not isinstance(run[key], typ) or isinstance(run[key], bool):
                errors.append(f"{where}: {key!r} has wrong type")
        if "wall_ns" in run and isinstance(run["wall_ns"], (int, float)):
            if not run["wall_ns"] > 0:
                errors.append(f"{where}: wall_ns must be positive")
        if "iterations" in run and isinstance(run["iterations"], int):
            if run["iterations"] <= 0:
                errors.append(f"{where}: iterations must be positive")
    return errors


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in sys.argv[1:]:
        all_errors.extend(check(path))
    for err in all_errors:
        print(err, file=sys.stderr)
    if not all_errors:
        print(f"ok: {len(sys.argv) - 1} file(s) conform to icn-bench-v1")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
