// Ablation: the Sec. 4.1 design argument — clustering the raw traffic (or
// max-normalized traffic, or unbounded RCA) instead of RSCA degrades the
// recovered structure. Reports silhouette at k = 9 and archetype recovery
// (ARI) per feature transform.
#include <iostream>

#include "common.h"
#include "core/clustering.h"
#include "core/rca.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace icn;
  bench::print_header("Ablation", "Feature transform (raw vs norm vs RCA vs RSCA)");
  const auto& result = bench::shared_pipeline();
  const auto& traffic = result.scenario.demand().traffic_matrix();
  const auto& truth = result.scenario.demand().archetype_labels();

  // Candidate feature matrices.
  ml::Matrix raw = traffic;
  ml::Matrix norm = traffic;  // normalize by the global max
  {
    double max_v = 0.0;
    for (const double v : norm.data()) max_v = std::max(max_v, v);
    for (auto& v : norm.data()) v /= max_v;
  }
  const ml::Matrix rca = core::compute_rca(traffic);
  const ml::Matrix& rsca = result.rsca;

  struct Candidate {
    const char* name;
    const ml::Matrix* features;
  };
  const Candidate candidates[] = {
      {"raw traffic (MB)", &raw},
      {"max-normalized traffic", &norm},
      {"RCA (Eq. 1)", &rca},
      {"RSCA (Eq. 2)", &rsca},
  };

  util::TextTable table(
      {"features", "silhouette@9", "dunn@9", "ARI vs archetypes"});
  for (const auto& candidate : candidates) {
    std::cerr << "[bench] clustering on " << candidate.name << "...\n";
    core::ClusterAnalysisParams params;
    params.chosen_k = 9;
    params.k_min = 9;
    params.k_max = 9;
    const auto analysis = core::analyze_clusters(*candidate.features, params);
    table.add_row({candidate.name,
                   util::fmt_double(analysis.sweep.front().silhouette, 4),
                   util::fmt_double(analysis.sweep.front().dunn, 4),
                   util::fmt_double(icn::util::adjusted_rand_index(
                                        analysis.labels, truth),
                                    4)});
  }
  table.print(std::cout);

  std::cout << "\n";
  bench::print_claim(
      "clustering raw volumes groups antennas by popularity, not usage",
      "overall traffic would bias the clustering; RSCA removes volume and "
      "popularity effects (Sec. 4.1)",
      "see ARI column: RSCA recovers the archetypes, raw/normalized do not");
  return 0;
}
