// Table 1: the eleven indoor environment types and the number of antennas
// per environment (N_env), 4,762 in total at > 1,000 sites.
#include <iostream>

#include "common.h"
#include "net/environment.h"
#include "util/table.h"

int main() {
  using namespace icn;
  bench::print_header("Table 1", "Indoor environment types and N_env");
  const auto& result = bench::shared_pipeline();
  const auto& topo = result.scenario.topology();

  util::TextTable table({"environment", "paper N_env", "generated", "sites"});
  std::size_t total = 0, total_paper = 0, total_sites = 0;
  for (const net::Environment e : net::all_environments()) {
    std::size_t sites = 0;
    for (const auto& site : topo.sites()) {
      if (site.environment == e) ++sites;
    }
    const std::size_t n = topo.environment_count(e);
    table.add_row({net::environment_name(e),
                   std::to_string(net::paper_antenna_count(e)),
                   std::to_string(n), std::to_string(sites)});
    total += n;
    total_paper += net::paper_antenna_count(e);
    total_sites += sites;
  }
  table.add_row({"TOTAL", std::to_string(total_paper), std::to_string(total),
                 std::to_string(total_sites)});
  table.print(std::cout);

  std::cout << "\n";
  bench::print_claim("antenna population",
                     "4,762 ICN antennas at more than 1,000 sites",
                     std::to_string(total) + " antennas at " +
                         std::to_string(total_sites) + " sites (scale " +
                         util::fmt_double(bench::bench_scale(), 2) + ")");
  bench::print_claim("outdoor comparison population",
                     "~22,000 outdoor antennas within 1 km of the ICNs",
                     std::to_string(topo.outdoor().size()) +
                         " outdoor antennas generated");
  return 0;
}
