// Figure 11 (a-i): per-service normalized median traffic heatmaps for the
// services the SHAP analysis flags — Spotify/Twitter/Transportation websites
// in the orange group, Netflix/Waze/Snapchat in the green group,
// Teams/Netflix/Waze in the red group.
#include <algorithm>
#include <iostream>

#include "common.h"
#include "core/temporal_analysis.h"
#include "traffic/archetypes.h"
#include "util/ascii.h"
#include "util/table.h"

namespace {

/// Merges all clusters of a group into one synthetic label. For the green
/// group only the stadium clusters 6 and 8 are pooled: Sec. 6.0.2 discusses
/// the event-venue dynamics, and the non-venue members of cluster 5 would
/// wash the bursts out of the median.
std::vector<int> group_labels(const std::vector<int>& labels,
                              icn::traffic::ClusterGroup group,
                              int group_label) {
  std::vector<int> out = labels;
  for (auto& l : out) {
    if (icn::traffic::archetype_group(l) != group) continue;
    if (group == icn::traffic::ClusterGroup::kGreen && l == 5) continue;
    l = group_label;
  }
  return out;
}

void render_hours(const icn::core::TemporalHeatmap& map) {
  for (int h = 0; h < 24; h += 1) {
    std::printf("h%02d | ", h);
    std::vector<double> row(map.days);
    for (std::size_t d = 0; d < map.days; ++d) row[d] = map.at(h, d);
    std::cout << icn::util::render_heatmap(row, 1, map.days, 0.0, 1.0);
  }
}

}  // namespace

int main() {
  using namespace icn;
  bench::print_header("Figure 11",
                      "Per-service temporal heatmaps by cluster group");
  const auto& result = bench::shared_pipeline();
  const auto& temporal = result.scenario.temporal();
  const auto& catalog = result.scenario.catalog();
  constexpr int kGroupLabel = 50;

  struct Panel {
    const char* service;
    traffic::ClusterGroup group;
    const char* paper_note;
  };
  const Panel panels[] = {
      {"Spotify", traffic::ClusterGroup::kOrange,
       "peaks during morning commuting hours across the whole group"},
      {"Twitter", traffic::ClusterGroup::kOrange,
       "persistent commuting-hour peaks (mitigated for cluster 4)"},
      {"Transportation Websites", traffic::ClusterGroup::kOrange,
       "lively commuting pattern for 0/4, scattered for 7"},
      {"Netflix", traffic::ClusterGroup::kGreen,
       "falls into under-utilization in event venues"},
      {"Waze", traffic::ClusterGroup::kGreen,
       "peaks a couple of hours after the event peaks"},
      {"Snapchat", traffic::ClusterGroup::kGreen,
       "tracks the total event-driven traffic"},
      {"Microsoft Teams", traffic::ClusterGroup::kRed,
       "heavy over working hours in cluster 3 only"},
      {"Netflix", traffic::ClusterGroup::kRed,
       "daytime/nighttime in 1/2, lunch-hours only in 3"},
      {"Waze", traffic::ClusterGroup::kRed,
       "highest in cluster 1 (tunnels), weekday evening peaks in 3"},
  };

  std::vector<core::TemporalHeatmap> maps;
  for (const auto& panel : panels) {
    const auto service = catalog.index_of(panel.service);
    const auto labels = group_labels(result.clusters.labels, panel.group,
                                     kGroupLabel);
    std::cerr << "[bench] " << panel.service << " / "
              << traffic::group_name(panel.group) << "...\n";
    maps.push_back(core::cluster_service_heatmap(temporal, labels,
                                                 kGroupLabel, *service));
    std::cout << "\n--- " << panel.service << ", "
              << traffic::group_name(panel.group) << " group (paper: "
              << panel.paper_note << "); peak median "
              << util::fmt_double(maps.back().peak_mb, 3) << " MB/h ---\n";
    render_hours(maps.back());
  }

  // Quantified claims.
  auto hod = [&](std::size_t idx) {
    return core::hour_of_day_profile(maps[idx]);
  };
  std::cout << "\n";
  {
    const auto spotify = hod(0);
    bench::print_claim(
        "Spotify peaks in morning commute for the orange group",
        "traffic peaks during the morning commuting hours",
        "h8 " + util::fmt_double(spotify[8], 2) + " vs h13 " +
            util::fmt_double(spotify[13], 2));
  }
  {
    const auto teams_red = hod(6);
    bench::print_claim(
        "Teams lives in working hours",
        "heavy traffic over working hours (cluster 3)",
        "h11 " + util::fmt_double(teams_red[11], 2) + " vs h21 " +
            util::fmt_double(teams_red[21], 2));
  }
  {
    // Waze green: after-event surge — compare evening post-event window
    // (h23) against the event window itself for the NBA/match nights by
    // hour-of-day aggregate.
    const auto waze_green = hod(4);
    const auto snap_green = hod(5);
    const std::size_t waze_peak_h = static_cast<std::size_t>(
        std::max_element(waze_green.begin(), waze_green.end()) -
        waze_green.begin());
    const std::size_t snap_peak_h = static_cast<std::size_t>(
        std::max_element(snap_green.begin(), snap_green.end()) -
        snap_green.begin());
    bench::print_claim(
        "Waze peaks after the event, social media during it",
        "Waze assumes its peak a couple of hours after the total-traffic "
        "peaks",
        "green-group peak hour: Snapchat h" + std::to_string(snap_peak_h) +
            ", Waze h" + std::to_string(waze_peak_h));
  }
  {
    // Under-utilization is about the *share* of the venue traffic, not the
    // absolute volume (stadium antennas are busy): compare Netflix's share
    // of the two-month traffic between the green venue clusters and red.
    const auto netflix = *catalog.index_of("Netflix");
    const auto& traffic = result.scenario.demand().traffic_matrix();
    double green_netflix = 0.0, green_total = 0.0;
    double red_netflix = 0.0, red_total = 0.0;
    for (std::size_t i = 0; i < traffic.rows(); ++i) {
      const int c = result.clusters.labels[i];
      double row_total = 0.0;
      for (std::size_t j = 0; j < traffic.cols(); ++j) {
        row_total += traffic(i, j);
      }
      if (c == 6 || c == 8) {
        green_netflix += traffic(i, netflix);
        green_total += row_total;
      } else if (traffic::archetype_group(c) == traffic::ClusterGroup::kRed) {
        red_netflix += traffic(i, netflix);
        red_total += row_total;
      }
    }
    bench::print_claim(
        "Netflix is suppressed in venues, alive in the red group",
        "video streaming falls into under-utilization in such venues, even "
        "on peak days and hours",
        "Netflix share of cluster traffic: venues (6/8) " +
            util::fmt_percent(green_netflix / green_total) + " vs red " +
            util::fmt_percent(red_netflix / red_total));
  }
  return 0;
}
