// Extension — the paper's Sec. 7 roadmap: "with the emergence of
// applications such as the industrial Internet of Things, augmented
// reality, and intelligent self-orchestrated environments, we believe that
// additional clusters may emerge within ICN traffic".
//
// This bench simulates that future: four new service types (IIoT telemetry,
// AR streaming, cloud gaming, robot control) are adopted by a quarter of the
// workspace/industrial deployments. Re-running the unmodified pipeline on
// the extended service matrix must surface a tenth cluster containing
// exactly the adopter antennas — evidence that the methodology keeps working
// as the service mix evolves.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common.h"
#include "core/clustering.h"
#include "core/rca.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace icn;
  bench::print_header("Extension",
                      "Sec. 7 roadmap: a 10th cluster from future services");
  const auto& result = bench::shared_pipeline();
  const auto& traffic = result.scenario.demand().traffic_matrix();
  const auto& indoor = result.scenario.topology().indoor();
  const std::size_t n = traffic.rows();
  const std::size_t m = traffic.cols();

  // Future services adopted by 25% of the workspace deployments.
  struct FutureService {
    const char* name;
    double share_of_total;  // adopter traffic share for this service
  };
  const FutureService kFuture[] = {
      {"IIoT Telemetry", 0.22},
      {"AR Streaming", 0.14},
      {"Cloud Gaming", 0.08},
      {"Robot Control", 0.05},
  };
  const std::size_t extra = std::size(kFuture);

  icn::util::Rng rng(4242);
  std::vector<bool> adopter(n, false);
  std::size_t num_adopters = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (indoor[i].environment == net::Environment::kWorkspace &&
        rng.bernoulli(0.25)) {
      adopter[i] = true;
      ++num_adopters;
    }
  }

  ml::Matrix extended(n, m + extra);
  for (std::size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      extended(i, j) = traffic(i, j);
      total += traffic(i, j);
    }
    for (std::size_t e = 0; e < extra; ++e) {
      const double level = adopter[i] ? kFuture[e].share_of_total : 0.001;
      extended(i, m + e) =
          total * level * rng.lognormal(0.0, 0.3);
    }
  }

  std::cout << "\nExtended study: " << n << " antennas x " << (m + extra)
            << " services; " << num_adopters
            << " workspace antennas adopted the future services.\n\n";

  // The unmodified pipeline on the extended matrix.
  const ml::Matrix rsca = core::compute_rsca(extended);
  core::ClusterAnalysisParams params;
  params.k_min = 2;
  params.k_max = 14;
  params.chosen_k = 0;  // let the knee criterion decide
  const auto analysis = core::analyze_clusters(rsca, params);

  util::TextTable sweep({"k", "silhouette", "dunn"});
  for (const auto& p : analysis.sweep) {
    sweep.add_row({std::to_string(p.k), util::fmt_double(p.silhouette, 4),
                   util::fmt_double(p.dunn, 4)});
  }
  sweep.print(std::cout);

  // Cut at 10 and measure how cleanly the adopters separate.
  const auto labels10 = analysis.dendrogram.cut(10);
  // Find the cluster holding the majority of adopters.
  std::vector<std::size_t> adopters_per_cluster(10, 0), size_per_cluster(10,
                                                                         0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(labels10[i]);
    ++size_per_cluster[c];
    if (adopter[i]) ++adopters_per_cluster[c];
  }
  std::size_t best = 0;
  for (std::size_t c = 1; c < 10; ++c) {
    if (adopters_per_cluster[c] > adopters_per_cluster[best]) best = c;
  }
  const double recall =
      static_cast<double>(adopters_per_cluster[best]) /
      static_cast<double>(std::max<std::size_t>(1, num_adopters));
  const double precision =
      static_cast<double>(adopters_per_cluster[best]) /
      static_cast<double>(std::max<std::size_t>(1, size_per_cluster[best]));

  std::cout << "\n";
  bench::print_claim(
      "new specialized applications create additional ICN clusters",
      "additional clusters may emerge within ICN traffic, requiring further "
      "provisioning by MNOs (Sec. 7)",
      "knee criterion now suggests k = " +
          std::to_string(core::suggest_k(analysis.sweep)) +
          " (was 9 without the future services); cutting at k = 10 isolates "
          "the adopters with precision " +
          util::fmt_percent(precision) + " and recall " +
          util::fmt_percent(recall));
  return 0;
}
