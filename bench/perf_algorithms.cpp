// Performance microbenches (google-benchmark) for the core algorithms:
// Ward NN-chain scaling, silhouette, RCA/RSCA transform throughput,
// random-forest training, TreeSHAP vs KernelSHAP per explanation, the
// probe-path aggregation throughput, the per-level SIMD kernels (distance,
// x4 row-batched distance, RSCA row, labeled sums — including the opt-in
// avx2fma lane), the tiled condensed-distance sweep, scratch-arena vs heap
// allocation, CRC32C backends, the Hungarian assignment, seasonal batch
// fitting, and the static-vs-stealing scheduler on a skewed workload. Emits
// BENCH_perf_algorithms.json via bench/report.h.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "core/forecast.h"
#include "core/rca.h"
#include "core/scenario.h"
#include "ml/distance.h"
#include "ml/forest.h"
#include "ml/hungarian.h"
#include "ml/kernels.h"
#include "ml/kernelshap.h"
#include "ml/linkage.h"
#include "ml/metrics.h"
#include "ml/treeshap.h"
#include "probe/aggregate.h"
#include "probe/dpi.h"
#include "probe/gtp.h"
#include "probe/probe.h"
#include "report.h"
#include "store/crc32c.h"
#include "traffic/flows.h"
#include "util/arena.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/simd.h"

namespace {

using namespace icn;

ml::Matrix random_features(std::size_t n, std::size_t m,
                           std::uint64_t seed = 42) {
  icn::util::Rng rng(seed);
  ml::Matrix x(n, m);
  for (auto& v : x.data()) {
    v = rng.uniform(-1.0, 1.0);
  }
  return x;
}

std::vector<int> random_labels(std::size_t n, int k,
                               std::uint64_t seed = 43) {
  icn::util::Rng rng(seed);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(k)));
  }
  return y;
}

void BM_WardNnChain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ml::Matrix x = random_features(n, 73);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::agglomerative_cluster(x, ml::Linkage::kWard));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WardNnChain)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond)->Complexity();

// Threaded variants pin the pool size via ScopedOverride, so the numbers are
// comparable regardless of ICN_THREADS or the machine's core count.
// args: {n, threads}
void BM_WardNnChainThreads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const ml::Matrix x = random_features(n, 73);
  icn::util::ThreadPool::ScopedOverride pool(threads);
  state.counters["threads"] = static_cast<double>(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::agglomerative_cluster(x, ml::Linkage::kWard));
  }
}
BENCHMARK(BM_WardNnChainThreads)
    ->ArgsProduct({{2000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_SilhouetteScore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ml::Matrix x = random_features(n, 73);
  const auto labels = random_labels(n, 9);
  const ml::CondensedDistances dist(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::silhouette_score(dist, labels));
  }
}
BENCHMARK(BM_SilhouetteScore)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_SilhouetteScoreThreads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const ml::Matrix x = random_features(n, 73);
  const auto labels = random_labels(n, 9);
  const ml::CondensedDistances dist(x);
  icn::util::ThreadPool::ScopedOverride pool(threads);
  state.counters["threads"] = static_cast<double>(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::silhouette_score(dist, labels));
  }
}
BENCHMARK(BM_SilhouetteScoreThreads)
    ->ArgsProduct({{2000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_RscaTransform(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ml::Matrix t = random_features(n, 73);
  for (auto& v : t.data()) v = std::abs(v) + 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_rsca(t));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n) * 73);
}
BENCHMARK(BM_RscaTransform)->Arg(1000)->Arg(4762)
    ->Unit(benchmark::kMillisecond);

void BM_ForestTraining(benchmark::State& state) {
  const auto trees = static_cast<std::size_t>(state.range(0));
  const ml::Matrix x = random_features(1000, 73);
  const auto y = random_labels(1000, 9);
  for (auto _ : state) {
    ml::RandomForest forest;
    ml::RandomForest::Params params;
    params.num_trees = trees;
    forest.fit(x, y, 9, params);
    benchmark::DoNotOptimize(forest);
  }
}
BENCHMARK(BM_ForestTraining)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

// args: {trees, threads}
void BM_ForestTrainingThreads(benchmark::State& state) {
  const auto trees = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const ml::Matrix x = random_features(1000, 73);
  const auto y = random_labels(1000, 9);
  icn::util::ThreadPool::ScopedOverride pool(threads);
  state.counters["threads"] = static_cast<double>(threads);
  for (auto _ : state) {
    ml::RandomForest forest;
    ml::RandomForest::Params params;
    params.num_trees = trees;
    forest.fit(x, y, 9, params);
    benchmark::DoNotOptimize(forest);
  }
}
BENCHMARK(BM_ForestTrainingThreads)
    ->ArgsProduct({{100}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

class ShapFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (forest.is_fitted()) return;
    x = random_features(1000, 20);
    const auto y = random_labels(1000, 4);
    ml::RandomForest::Params params;
    params.num_trees = 50;
    params.max_depth = 10;
    forest.fit(x, y, 4, params);
  }
  ml::Matrix x;
  ml::RandomForest forest;
};

BENCHMARK_F(ShapFixture, BM_TreeShapPerSample)(benchmark::State& state) {
  std::size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::forest_shap(forest, x.row(row)));
    row = (row + 1) % x.rows();
  }
}

BENCHMARK_DEFINE_F(ShapFixture, BM_TreeShapBatchThreads)
(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> rows(64);
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i * 3;
  const ml::Matrix batch = x.select_rows(rows);
  icn::util::ThreadPool::ScopedOverride pool(threads);
  state.counters["threads"] = static_cast<double>(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::forest_shap_batch(forest, batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows.size()));
}
BENCHMARK_REGISTER_F(ShapFixture, BM_TreeShapBatchThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_F(ShapFixture, BM_KernelShapPerSample)(benchmark::State& state) {
  // Model-agnostic path, budgeted at 512 coalitions with a 16-row
  // background; vastly slower than TreeSHAP — that gap is the point.
  std::vector<std::size_t> bg_rows(16);
  for (std::size_t i = 0; i < 16; ++i) bg_rows[i] = i * 7;
  const ml::Matrix background = x.select_rows(bg_rows);
  const ml::ModelFunction model = [&](std::span<const double> row) {
    return forest.predict_proba(row);
  };
  ml::KernelShapParams params;
  params.max_coalitions = 512;
  std::size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ml::kernel_shap(model, x.row(row), background, params));
    row = (row + 1) % x.rows();
  }
}

void BM_ProbeAggregation(benchmark::State& state) {
  // Measurement-path throughput: flows -> ULI decode -> DPI -> aggregate.
  core::ScenarioParams params;
  params.scale = 0.01;
  params.outdoor_ratio = 0.0;
  static const core::Scenario scenario = core::Scenario::build(params);
  const traffic::FlowGenerator generator(scenario.temporal(), 3);
  probe::UliDecoder decoder;
  decoder.register_range(generator.ecgi_of(0),
                         static_cast<std::uint32_t>(scenario.num_antennas()));
  const auto flows = generator.flows_for_antenna(0, 0, 24 * 7);
  std::int64_t flows_done = 0;
  for (auto _ : state) {
    probe::DpiClassifier dpi(scenario.catalog());
    probe::PassiveProbe probe(decoder, dpi);
    const std::vector<std::uint32_t> ids = {0};
    probe::HourlyAggregator agg(ids, scenario.num_services(), 24 * 7);
    agg.add_all(probe.observe_all(flows));
    benchmark::DoNotOptimize(agg);
    flows_done += static_cast<std::int64_t>(flows.size());
  }
  state.SetItemsProcessed(flows_done);
}
BENCHMARK(BM_ProbeAggregation)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// SIMD lanes: the same kernel at each dispatch level. The curve scalar ->
// sse2 -> avx2 -> avx512 is the measured value of the runtime dispatch; all
// non-FMA lanes produce identical bits (tests/ml/test_simd_dispatch.cpp,
// tests/ml/test_kernels_dispatch.cpp). Level 4 is the opt-in avx2fma lane,
// parity-checked against its own std::fma scalar reference.

/// True when the per-level detail kernel may run on this CPU. The FMA lane
/// sits outside the scalar..avx512 order, so it gets its own check.
bool level_runnable(icn::util::SimdLevel level) {
  if (level == icn::util::SimdLevel::kAvx2Fma) {
    return icn::util::max_supported_simd_level() >=
               icn::util::SimdLevel::kAvx2 &&
           icn::util::cpu_supports_fma();
  }
  return level <= icn::util::max_supported_simd_level();
}

// args: {level}
void BM_SquaredEuclideanSimd(benchmark::State& state) {
  const auto level = static_cast<icn::util::SimdLevel>(state.range(0));
  if (!level_runnable(level)) {
    state.SkipWithError("SIMD level not supported on this CPU");
    return;
  }
  constexpr std::size_t kDim = 4096;
  icn::util::Rng rng(5);
  std::vector<double> a(kDim), b(kDim);
  for (std::size_t i = 0; i < kDim; ++i) {
    a[i] = rng.normal();
    b[i] = rng.normal();
  }
  for (auto _ : state) {
    double d = 0.0;
    switch (level) {
      case icn::util::SimdLevel::kScalar:
        d = ml::detail::squared_euclidean_scalar(a.data(), b.data(), kDim);
        break;
      case icn::util::SimdLevel::kSse2:
        d = ml::detail::squared_euclidean_sse2(a.data(), b.data(), kDim);
        break;
      case icn::util::SimdLevel::kAvx2:
        d = ml::detail::squared_euclidean_avx2(a.data(), b.data(), kDim);
        break;
      case icn::util::SimdLevel::kAvx512:
        d = ml::detail::squared_euclidean_avx512(a.data(), b.data(), kDim);
        break;
      case icn::util::SimdLevel::kAvx2Fma:
        d = ml::detail::squared_euclidean_fma(a.data(), b.data(), kDim);
        break;
    }
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * kDim * sizeof(double)));
  state.SetLabel(icn::util::simd_level_name(level));
}
BENCHMARK(BM_SquaredEuclideanSimd)->DenseRange(0, 4)
    ->Unit(benchmark::kNanosecond);

// Row-batched kernel: one query row against 4 consecutive matrix rows, four
// independent accumulator chains. The win over 4x the single-pair kernel is
// the add-latency bottleneck breaking, not extra SIMD width.
// args: {level}
void BM_SquaredEuclideanX4Simd(benchmark::State& state) {
  const auto level = static_cast<icn::util::SimdLevel>(state.range(0));
  if (!level_runnable(level)) {
    state.SkipWithError("SIMD level not supported on this CPU");
    return;
  }
  constexpr std::size_t kDim = 4096;
  icn::util::Rng rng(5);
  std::vector<double> a(kDim), b(4 * kDim);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  double out[4];
  for (auto _ : state) {
    switch (level) {
      case icn::util::SimdLevel::kScalar:
        ml::detail::squared_euclidean_x4_scalar(a.data(), b.data(), kDim,
                                                kDim, out);
        break;
      case icn::util::SimdLevel::kSse2:
        ml::detail::squared_euclidean_x4_sse2(a.data(), b.data(), kDim, kDim,
                                              out);
        break;
      case icn::util::SimdLevel::kAvx2:
        ml::detail::squared_euclidean_x4_avx2(a.data(), b.data(), kDim, kDim,
                                              out);
        break;
      case icn::util::SimdLevel::kAvx512:
        ml::detail::squared_euclidean_x4_avx512(a.data(), b.data(), kDim,
                                                kDim, out);
        break;
      case icn::util::SimdLevel::kAvx2Fma:
        ml::detail::squared_euclidean_x4_fma(a.data(), b.data(), kDim, kDim,
                                             out);
        break;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(5 * kDim * sizeof(double)));
  state.SetLabel(icn::util::simd_level_name(level));
}
BENCHMARK(BM_SquaredEuclideanX4Simd)->DenseRange(0, 4)
    ->Unit(benchmark::kNanosecond);

// Fused RSCA row transform per lane. Level 4 uses fnmadd/fmadd and is the
// one lane allowed to differ in bits.
// args: {level}
void BM_RscaRowSimd(benchmark::State& state) {
  const auto level = static_cast<icn::util::SimdLevel>(state.range(0));
  if (!level_runnable(level)) {
    state.SkipWithError("SIMD level not supported on this CPU");
    return;
  }
  constexpr std::size_t kDim = 4096;
  icn::util::Rng rng(7);
  std::vector<double> t(kDim), s(kDim), out(kDim);
  double total = 0.0;
  for (std::size_t i = 0; i < kDim; ++i) {
    t[i] = std::abs(rng.normal()) + 0.01;
    s[i] = std::abs(rng.normal()) + 0.01;
    total += t[i];
  }
  for (auto _ : state) {
    switch (level) {
      case icn::util::SimdLevel::kScalar:
        ml::detail::rsca_row_scalar(t.data(), s.data(), total, kDim,
                                    out.data());
        break;
      case icn::util::SimdLevel::kSse2:
        ml::detail::rsca_row_sse2(t.data(), s.data(), total, kDim,
                                  out.data());
        break;
      case icn::util::SimdLevel::kAvx2:
        ml::detail::rsca_row_avx2(t.data(), s.data(), total, kDim,
                                  out.data());
        break;
      case icn::util::SimdLevel::kAvx512:
        ml::detail::rsca_row_avx512(t.data(), s.data(), total, kDim,
                                    out.data());
        break;
      case icn::util::SimdLevel::kAvx2Fma:
        ml::detail::rsca_row_fma(t.data(), s.data(), total, kDim, out.data());
        break;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kDim));
  state.SetLabel(icn::util::simd_level_name(level));
}
BENCHMARK(BM_RscaRowSimd)->DenseRange(0, 4)->Unit(benchmark::kNanosecond);

// Silhouette inner loop: per-cluster masked sums of a distance segment.
// avx512 forwards to avx2 (compare/blend bound), so levels 3 and 2 should
// read the same.
// args: {level}
void BM_LabeledSumsSimd(benchmark::State& state) {
  const auto level = static_cast<icn::util::SimdLevel>(state.range(0));
  if (!level_runnable(level)) {
    state.SkipWithError("SIMD level not supported on this CPU");
    return;
  }
  constexpr std::size_t kDim = 4096;
  constexpr std::size_t kClusters = 9;
  icn::util::Rng rng(11);
  std::vector<double> d(kDim);
  for (auto& v : d) v = std::abs(rng.normal());
  const auto labels = random_labels(kDim, kClusters, 13);
  double sums[kClusters];
  for (auto _ : state) {
    for (auto& v : sums) v = 0.0;
    switch (level) {
      case icn::util::SimdLevel::kScalar:
        ml::detail::labeled_sums_scalar(d.data(), labels.data(), kDim,
                                        kClusters, sums);
        break;
      case icn::util::SimdLevel::kSse2:
        ml::detail::labeled_sums_sse2(d.data(), labels.data(), kDim,
                                      kClusters, sums);
        break;
      case icn::util::SimdLevel::kAvx2:
      case icn::util::SimdLevel::kAvx2Fma:
        ml::detail::labeled_sums_avx2(d.data(), labels.data(), kDim,
                                      kClusters, sums);
        break;
      case icn::util::SimdLevel::kAvx512:
        ml::detail::labeled_sums_avx512(d.data(), labels.data(), kDim,
                                        kClusters, sums);
        break;
    }
    benchmark::DoNotOptimize(sums);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kDim));
  state.SetLabel(icn::util::simd_level_name(level));
}
BENCHMARK(BM_LabeledSumsSimd)->DenseRange(0, 3)->Unit(benchmark::kNanosecond);

// ---------------------------------------------------------------------------
// Tiled condensed-distance construction. Every tile size produces
// byte-identical output (tests/ml/test_kernels_dispatch.cpp); the sweep
// measures the cache-blocking win alone. args: {n, tile}
void BM_CondensedDistances(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto tile = static_cast<std::size_t>(state.range(1));
  const ml::Matrix x = random_features(n, 73);
  std::vector<double> out(n * (n - 1) / 2);
  for (auto _ : state) {
    ml::fill_condensed(x, /*squared=*/false, out, tile);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["tile"] = static_cast<double>(tile);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_CondensedDistances)
    ->ArgsProduct({{512, 2000}, {16, 64, 256}})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Scratch arena vs heap for short-lived hot-path buffers. The heap variant
// pays malloc/free plus the vector's zero-fill every round trip; the arena
// rewinds a bump pointer over memory it already owns.

// args: {doubles}
void BM_ScratchAllocHeap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<double> buf(n);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetLabel("heap");
}
BENCHMARK(BM_ScratchAllocHeap)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kNanosecond);

// args: {doubles}
void BM_ScratchAllocArena(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto& arena = icn::util::scratch_arena();
  for (auto _ : state) {
    const icn::util::Arena::Frame frame(arena);
    const auto buf = arena.alloc_span<double>(n);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetLabel("arena");
}
BENCHMARK(BM_ScratchAllocArena)->Arg(64)->Arg(1024)
    ->Unit(benchmark::kNanosecond);

// ---------------------------------------------------------------------------
// CRC32C backends: slicing-by-8 table vs the SSE4.2 crc32 instruction over a
// snapshot-sized buffer.

void BM_Crc32cTable(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> buf(bytes);
  icn::util::Rng rng(17);
  for (auto& v : buf) v = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store::detail::crc32c_table_extend(0, buf));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Crc32cTable)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

void BM_Crc32cHw(benchmark::State& state) {
  if (!icn::util::cpu_supports_crc32c()) {
    state.SkipWithError("no SSE4.2 crc32 instruction on this CPU");
    return;
  }
  const auto bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> buf(bytes);
  icn::util::Rng rng(17);
  for (auto& v : buf) v = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store::detail::crc32c_hw_extend(0, buf));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Crc32cHw)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Scheduler: static block-dealing vs work-stealing on a deliberately skewed
// workload (chunk i costs ~i work — a triangular profile like the condensed
// distance rows). Same chunks, same outputs; only idle time differs.
// args: {threads, schedule}
void BM_SchedulerSkewed(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto schedule = state.range(1) == 0
                            ? icn::util::ThreadPool::Schedule::kStatic
                            : icn::util::ThreadPool::Schedule::kSteal;
  icn::util::ThreadPool::ScopedOverride pool(threads, schedule);
  state.counters["threads"] = static_cast<double>(threads);
  constexpr std::size_t kChunks = 512;
  std::vector<double> out(kChunks);
  for (auto _ : state) {
    icn::util::parallel_for(
        0, kChunks, 1, [&](std::size_t lo, std::size_t) {
          double acc = 0.0;
          for (std::size_t k = 0; k < lo * 300; ++k) {
            acc += 1e-9 * static_cast<double>(k);
          }
          out[lo] = acc;
        });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(schedule == icn::util::ThreadPool::Schedule::kStatic
                     ? "static"
                     : "steal");
}
BENCHMARK(BM_SchedulerSkewed)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Hungarian assignment with the parallel row/column reduction and gated
// parallel augmenting scans.
void BM_HungarianAssign(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  icn::util::Rng rng(23);
  ml::Matrix cost(n, n);
  for (auto& v : cost.data()) v = rng.uniform(0.0, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::hungarian_min_cost(cost));
  }
}
BENCHMARK(BM_HungarianAssign)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Parallel seasonal-median batch fit across antennas.
// args: {antennas, threads}
void BM_SeasonalBatchFitThreads(benchmark::State& state) {
  const auto antennas = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kHours = 9 * 168;
  icn::util::Rng rng(29);
  std::vector<std::vector<double>> series(antennas,
                                          std::vector<double>(kHours));
  std::vector<std::span<const double>> spans;
  spans.reserve(antennas);
  for (auto& s : series) {
    for (auto& v : s) v = std::abs(rng.normal()) * 1e3;
    spans.emplace_back(s);
  }
  icn::util::ThreadPool::ScopedOverride pool(threads);
  state.counters["threads"] = static_cast<double>(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fit_seasonal_batch(spans, 168));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(antennas));
}
BENCHMARK(BM_SeasonalBatchFitThreads)
    ->ArgsProduct({{256}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Smoke preset: drop the big problem sizes and the slow model-agnostic
  // SHAP path; keep one point per op family so the JSON schema and every
  // code path still get exercised in CI.
  return icn::bench::trajectory_main(
      "perf_algorithms", "-(/(1000|2000|4762)($|/)|KernelShap)", argc, argv);
}
