// Figure 6: Sankey diagram of how the clusters flow into environment types —
// metro/train monopolized by the orange clusters, stadiums by the green
// group, workspaces fed by cluster 3, clusters 1-2 covering the rest.
#include <iostream>

#include "common.h"
#include "core/environment_analysis.h"
#include "util/ascii.h"
#include "util/table.h"

int main() {
  using namespace icn;
  bench::print_header("Figure 6", "Cluster -> environment Sankey flows");
  const auto& result = bench::shared_pipeline();
  const core::EnvironmentCorrelation env(
      result.scenario, result.clusters.labels, result.clusters.chosen_k);

  std::cout << "\n" << util::render_sankey(env.sankey_flows(), 0.005) << "\n";

  const double transit_to_orange =
      (env.share_of_environment(net::Environment::kMetro, 0) +
       env.share_of_environment(net::Environment::kMetro, 4) +
       env.share_of_environment(net::Environment::kMetro, 7));
  const double stadium_to_green =
      env.share_of_environment(net::Environment::kStadium, 5) +
      env.share_of_environment(net::Environment::kStadium, 6) +
      env.share_of_environment(net::Environment::kStadium, 8);
  bench::print_claim(
      "metro and train stations are monopolized by the orange clusters",
      "dominant flux of metros/trains into clusters 0, 4, 7",
      util::fmt_percent(transit_to_orange) + " of metro antennas in 0/4/7");
  bench::print_claim(
      "the preponderance of stadiums is in the green group",
      "stadiums flow into clusters 5, 6, 8",
      util::fmt_percent(stadium_to_green) + " of stadium antennas in 5/6/8");
  bench::print_claim(
      "workspaces are fed by cluster 3; clusters 1-2 cover the rest",
      "dominant flux towards workspaces originates from cluster 3",
      util::fmt_percent(
          env.share_of_environment(net::Environment::kWorkspace, 3)) +
          " of workspace antennas come from cluster 3");
  return 0;
}
