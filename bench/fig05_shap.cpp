// Figure 5 (a-i): SHAP beeswarm summaries per cluster — the 25 most
// influential services ranked by mean |SHAP|, with the over-/under-
// utilization direction (red/blue in the paper; here a signed direction
// column derived from the value/SHAP correlation and the cluster-mean RSCA).
#include <iostream>
#include <string>

#include "common.h"
#include "traffic/archetypes.h"
#include "util/ascii.h"
#include "util/table.h"

namespace {

/// True when `name` appears in the cluster's top `depth` services with the
/// given direction (+1 over-utilized, -1 under-utilized).
bool ranked(const icn::core::ShapSummary& summary,
            const icn::core::PipelineResult& result, int cluster,
            const char* name, int direction, std::size_t depth = 40) {
  const auto idx = result.scenario.catalog().index_of(name);
  if (!idx) return false;
  const auto& impacts = summary.per_cluster[static_cast<std::size_t>(cluster)];
  for (std::size_t r = 0; r < std::min(depth, impacts.size()); ++r) {
    if (impacts[r].service != *idx) continue;
    const bool over = impacts[r].mean_value_in_cluster > 0.0;
    return direction > 0 ? over : !over;
  }
  return false;
}

std::string yn(bool b) { return b ? "yes" : "NO"; }

}  // namespace

int main() {
  using namespace icn;
  bench::print_header("Figure 5",
                      "SHAP beeswarm summaries for clusters 0..8");
  const auto& result = bench::shared_pipeline();
  std::cerr << "[bench] computing TreeSHAP summaries...\n";
  const auto summary = result.surrogate->explain(
      result.rsca, result.clusters.labels, /*max_per_cluster=*/120);
  std::cout << "surrogate fidelity "
            << util::fmt_double(result.surrogate->fidelity(), 4)
            << ", OOB accuracy "
            << util::fmt_double(result.surrogate->oob_accuracy(), 4)
            << ", samples explained " << summary.samples_used << "\n";

  const auto& catalog = result.scenario.catalog();
  for (int c = 0; c < 9; ++c) {
    std::cout << "\n--- Cluster " << c << " ("
              << traffic::group_name(traffic::archetype_group(c))
              << " group): top 25 services by mean |SHAP| ---\n";
    util::TextTable table({"rank", "service", "mean|SHAP|", "corr(value,SHAP)",
                           "cluster mean RSCA", "direction"});
    const auto& impacts = summary.per_cluster[static_cast<std::size_t>(c)];
    for (std::size_t r = 0; r < std::min<std::size_t>(25, impacts.size());
         ++r) {
      const auto& fi = impacts[r];
      table.add_row(
          {std::to_string(r + 1), std::string(catalog.at(fi.service).name),
           util::fmt_double(fi.mean_abs_shap, 4),
           util::fmt_double(fi.value_shap_correlation, 2),
           util::fmt_double(fi.mean_value_in_cluster, 3),
           fi.mean_value_in_cluster > 0 ? "over-utilized"
                                        : "under-utilized"});
    }
    table.print(std::cout);
  }

  std::cout << "\n--- Paper claims (Sec. 5.1.2) ---\n";
  bench::print_claim(
      "orange group over-utilizes music apps",
      "Spotify/SoundCloud/Deezer/Apple Music top clusters 0, 4, 7",
      "Spotify over-utilized & ranked: c0=" +
          yn(ranked(summary, result, 0, "Spotify", +1)) + " c4=" +
          yn(ranked(summary, result, 4, "Spotify", +1)) + " c7=" +
          yn(ranked(summary, result, 7, "Spotify", +1)));
  bench::print_claim(
      "navigation distinguishes clusters 0/4 from 7",
      "Mappy & transportation websites over in 0/4, under in 7",
      "Mappy: c0 over=" + yn(ranked(summary, result, 0, "Mappy", +1)) +
          ", c4 over=" + yn(ranked(summary, result, 4, "Mappy", +1)) +
          ", c7 under=" + yn(ranked(summary, result, 7, "Mappy", -1)));
  bench::print_claim(
      "cluster 4 lacks entertainment services",
      "Yahoo / entertainment websites under-utilized in cluster 4",
      "Yahoo under in c4: " + yn(ranked(summary, result, 4, "Yahoo", -1)) +
          ", Entertainment Websites under in c4: " +
          yn(ranked(summary, result, 4, "Entertainment Websites", -1)));
  bench::print_claim(
      "clusters 6 and 8 over-use Snapchat, Twitter, sports sites",
      "Snapchat/Twitter/Sport websites over-utilized in 6 and 8",
      "Snapchat: c6=" + yn(ranked(summary, result, 6, "Snapchat", +1)) +
          " c8=" + yn(ranked(summary, result, 8, "Snapchat", +1)) +
          "; Sports Websites: c6=" +
          yn(ranked(summary, result, 6, "Sports Websites", +1)) + " c8=" +
          yn(ranked(summary, result, 8, "Sports Websites", +1)));
  bench::print_claim(
      "cluster 8 is more diverse than 6",
      "Giphy, WhatsApp, Canal+ present in 8, absent in 6",
      "Giphy over in c8: " + yn(ranked(summary, result, 8, "Giphy", +1)) +
          ", Canal+ over in c8: " +
          yn(ranked(summary, result, 8, "Canal+", +1)));
  bench::print_claim(
      "cluster 3 is business-oriented",
      "Microsoft Teams, LinkedIn, emailing services over-utilized",
      "Teams: " + yn(ranked(summary, result, 3, "Microsoft Teams", +1)) +
          ", LinkedIn: " + yn(ranked(summary, result, 3, "LinkedIn", +1)) +
          ", Gmail: " + yn(ranked(summary, result, 3, "Gmail", +1)));
  bench::print_claim(
      "cluster 1 over-uses streaming, Waze, mail",
      "Netflix/Disney+/Prime Video, Waze, mailing apps over-utilized",
      "Netflix: " + yn(ranked(summary, result, 1, "Netflix", +1)) +
          ", Waze: " + yn(ranked(summary, result, 1, "Waze", +1)));
  bench::print_claim(
      "cluster 2 over-uses app-store and shopping services",
      "Google Play Store and shopping websites characterize cluster 2",
      "Play Store: " +
          yn(ranked(summary, result, 2, "Google Play Store", +1)) +
          ", Shopping Websites: " +
          yn(ranked(summary, result, 2, "Shopping Websites", +1)));
  return 0;
}
