// Figure 2: Silhouette score and Dunn index vs the number of clusters k,
// the stopping criterion that selects k = 9 (and flags k = 6) in the paper.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common.h"
#include "core/clustering.h"
#include "ml/metrics.h"
#include "util/ascii.h"
#include "util/table.h"

int main() {
  using namespace icn;
  bench::print_header("Figure 2", "Silhouette & Dunn index vs k");
  const auto& result = bench::shared_pipeline();

  // Beyond the paper's two criteria, report Davies-Bouldin (lower = better)
  // and Calinski-Harabasz (higher = better) as corroborating indices.
  util::TextTable table({"k", "silhouette", "dunn", "davies-bouldin",
                         "calinski-harabasz", "bar(sil)"});
  double max_sil = 0.0;
  for (const auto& p : result.clusters.sweep) {
    max_sil = std::max(max_sil, p.silhouette);
  }
  for (std::size_t i = 0; i < result.clusters.sweep.size(); ++i) {
    const auto& p = result.clusters.sweep[i];
    const auto labels = result.clusters.dendrogram.cut(p.k);
    table.add_row({std::to_string(p.k), util::fmt_double(p.silhouette, 4),
                   util::fmt_double(p.dunn, 4),
                   util::fmt_double(
                       ml::davies_bouldin_index(result.rsca, labels), 4),
                   util::fmt_double(
                       ml::calinski_harabasz_index(result.rsca, labels), 1),
                   util::render_bar(p.silhouette, max_sil, 30)});
  }
  table.print(std::cout);

  // Knees: the two k with the largest combined (normalized) metric drops.
  const auto& sweep = result.clusters.sweep;
  double max_dunn = 0.0;
  for (const auto& p : sweep) max_dunn = std::max(max_dunn, p.dunn);
  std::vector<std::pair<double, std::size_t>> drops;
  std::size_t best_sil_k = sweep.front().k;
  double best_sil_drop = -1.0;
  for (std::size_t i = 0; i + 1 < sweep.size(); ++i) {
    const double sil_drop = sweep[i].silhouette - sweep[i + 1].silhouette;
    const double combined = sil_drop / max_sil +
                            (sweep[i].dunn - sweep[i + 1].dunn) / max_dunn;
    drops.emplace_back(combined, sweep[i].k);
    if (sil_drop > best_sil_drop) {
      best_sil_drop = sil_drop;
      best_sil_k = sweep[i].k;
    }
  }
  std::sort(drops.rbegin(), drops.rend());
  std::cout << "\n";
  bench::print_claim(
      "high metric values followed by an abrupt drop at the chosen k",
      "knees at k = 6 and k = 9; the paper selects k = 9 (steepest drop)",
      "top-2 combined knees at k = " + std::to_string(drops[0].second) +
          " and k = " + std::to_string(drops[1].second) +
          "; steepest silhouette drop at k = " + std::to_string(best_sil_k) +
          " (chosen k = " + std::to_string(result.clusters.chosen_k) + ")");
  return 0;
}
