// Performance microbenches (google-benchmark) for the streaming subsystem:
// ingest throughput vs shard count, checkpointed ingest (fsync per window),
// and snapshot mmap load vs regenerating the same tensor from the scenario.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "probe/probe.h"
#include "store/snapshot.h"
#include "stream/ingest.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace {

using namespace icn;

constexpr std::size_t kAntennas = 64;
constexpr std::size_t kServices = 73;
constexpr std::int64_t kHours = 48;

std::vector<std::uint32_t> antenna_ids() {
  std::vector<std::uint32_t> ids(kAntennas);
  for (std::size_t i = 0; i < kAntennas; ++i) {
    ids[i] = static_cast<std::uint32_t>(i);
  }
  return ids;
}

/// One synthetic batch per hour, ~records_per_hour sessions each.
std::vector<std::vector<probe::ServiceSession>> hourly_batches(
    std::size_t records_per_hour, std::uint64_t seed = 7) {
  icn::util::Rng rng(seed);
  std::vector<std::vector<probe::ServiceSession>> batches(
      static_cast<std::size_t>(kHours));
  for (auto& batch : batches) {
    batch.resize(records_per_hour);
  }
  for (std::int64_t h = 0; h < kHours; ++h) {
    for (auto& s : batches[static_cast<std::size_t>(h)]) {
      s.antenna_id = static_cast<std::uint32_t>(rng.uniform_index(kAntennas));
      s.service = rng.uniform_index(kServices);
      s.hour = h;
      s.down_bytes = rng.uniform(1.0e3, 8.0e6);
      s.up_bytes = rng.uniform(1.0e2, 1.0e6);
    }
  }
  return batches;
}

stream::IngestParams ingest_params(std::size_t shards) {
  stream::IngestParams params;
  params.antenna_ids = antenna_ids();
  params.num_services = kServices;
  params.num_hours = kHours;
  params.num_shards = shards;
  return params;
}

void BM_StreamIngestShards(benchmark::State& state) {
  // Ingest throughput (records/sec) at the given shard count; the output is
  // bit-identical at every point on this curve.
  static const auto batches = hourly_batches(4096);
  const auto shards = static_cast<std::size_t>(state.range(0));
  std::int64_t records = 0;
  for (auto _ : state) {
    stream::StreamIngestor ingest(ingest_params(shards));
    for (const auto& batch : batches) {
      ingest.push(batch);
      records += static_cast<std::int64_t>(batch.size());
    }
    ingest.finish();
    benchmark::DoNotOptimize(ingest.traffic_matrix());
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_StreamIngestShards)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_StreamIngestCheckpointed(benchmark::State& state) {
  // Same stream with a durable checkpoint: every closed window is appended
  // and fsync'd. The gap to BM_StreamIngestShards/4 is the price of
  // crash-safety.
  static const auto batches = hourly_batches(4096);
  const std::string path = "bench_stream_ckpt.snap";
  std::int64_t records = 0;
  for (auto _ : state) {
    auto writer = stream::begin_checkpoint(path, ingest_params(4));
    stream::StreamIngestor ingest(ingest_params(4), &writer);
    for (const auto& batch : batches) {
      ingest.push(batch);
      records += static_cast<std::int64_t>(batch.size());
    }
    ingest.finish();
    writer.close();
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_StreamIngestCheckpointed)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoad(benchmark::State& state) {
  // mmap + CRC validation + materializing the T matrix from a snapshot.
  core::ScenarioParams params;
  params.scale = 0.05;
  params.outdoor_ratio = 0.0;
  static const core::Scenario scenario = core::Scenario::build(params);
  const std::string path = "bench_snapshot_load.snap";
  {
    store::SnapshotWriter writer(path);
    writer.append_matrix(scenario.demand().traffic_matrix());
    writer.close();
  }
  for (auto _ : state) {
    const store::MappedSnapshot snapshot(path);
    benchmark::DoNotOptimize(snapshot.matrix()->to_matrix());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotLoad)->Unit(benchmark::kMicrosecond);

void BM_SnapshotRegenerate(benchmark::State& state) {
  // The alternative to loading the snapshot: re-synthesizing the scenario
  // from its seed. The ratio to BM_SnapshotLoad is what the store buys.
  core::ScenarioParams params;
  params.scale = 0.05;
  params.outdoor_ratio = 0.0;
  for (auto _ : state) {
    const core::Scenario scenario = core::Scenario::build(params);
    benchmark::DoNotOptimize(scenario.demand().traffic_matrix());
  }
}
BENCHMARK(BM_SnapshotRegenerate)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
