// Performance microbenches (google-benchmark) for the streaming subsystem:
// ingest throughput vs shard count, checkpointed ingest (fsync per window),
// supervised multi-feed ingest (clean and fault-injected), and snapshot
// mmap load vs regenerating the same tensor from the scenario. Emits
// BENCH_perf_stream.json via bench/report.h.
#include <benchmark/benchmark.h>

#include "report.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "fault/disk.h"
#include "fault/feed.h"
#include "fault/plan.h"
#include "probe/probe.h"
#include "store/snapshot.h"
#include "stream/ingest.h"
#include "stream/supervise.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace {

using namespace icn;

constexpr std::size_t kAntennas = 64;
constexpr std::size_t kServices = 73;
constexpr std::int64_t kHours = 48;

std::vector<std::uint32_t> antenna_ids() {
  std::vector<std::uint32_t> ids(kAntennas);
  for (std::size_t i = 0; i < kAntennas; ++i) {
    ids[i] = static_cast<std::uint32_t>(i);
  }
  return ids;
}

/// One synthetic batch per hour, ~records_per_hour sessions each.
std::vector<std::vector<probe::ServiceSession>> hourly_batches(
    std::size_t records_per_hour, std::uint64_t seed = 7) {
  icn::util::Rng rng(seed);
  std::vector<std::vector<probe::ServiceSession>> batches(
      static_cast<std::size_t>(kHours));
  for (auto& batch : batches) {
    batch.resize(records_per_hour);
  }
  for (std::int64_t h = 0; h < kHours; ++h) {
    for (auto& s : batches[static_cast<std::size_t>(h)]) {
      s.antenna_id = static_cast<std::uint32_t>(rng.uniform_index(kAntennas));
      s.service = rng.uniform_index(kServices);
      s.hour = h;
      s.down_bytes = rng.uniform(1.0e3, 8.0e6);
      s.up_bytes = rng.uniform(1.0e2, 1.0e6);
    }
  }
  return batches;
}

stream::IngestParams ingest_params(std::size_t shards) {
  stream::IngestParams params;
  params.antenna_ids = antenna_ids();
  params.num_services = kServices;
  params.num_hours = kHours;
  params.num_shards = shards;
  return params;
}

void BM_StreamIngestShards(benchmark::State& state) {
  // Ingest throughput (records/sec) at the given shard count; the output is
  // bit-identical at every point on this curve.
  static const auto batches = hourly_batches(4096);
  const auto shards = static_cast<std::size_t>(state.range(0));
  std::int64_t records = 0;
  for (auto _ : state) {
    stream::StreamIngestor ingest(ingest_params(shards));
    for (const auto& batch : batches) {
      ingest.push(batch);
      records += static_cast<std::int64_t>(batch.size());
    }
    ingest.finish();
    benchmark::DoNotOptimize(ingest.traffic_matrix());
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_StreamIngestShards)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_StreamIngestCheckpointed(benchmark::State& state) {
  // Same stream with a durable checkpoint: every closed window is appended
  // and fsync'd. The gap to BM_StreamIngestShards/4 is the price of
  // crash-safety.
  static const auto batches = hourly_batches(4096);
  const std::string path = "bench_stream_ckpt.snap";
  std::int64_t records = 0;
  for (auto _ : state) {
    auto writer = stream::begin_checkpoint(path, ingest_params(4));
    stream::StreamIngestor ingest(ingest_params(4), &writer);
    for (const auto& batch : batches) {
      ingest.push(batch);
      records += static_cast<std::int64_t>(batch.size());
    }
    ingest.finish();
    writer.close();
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_StreamIngestCheckpointed)->Unit(benchmark::kMillisecond);

void BM_IngestFaultyVfs(benchmark::State& state) {
  // Checkpointed ingest with every byte routed through the FaultyVfs shim
  // under a seeded short-write plan (short writes are retried, not errors).
  // The gap to BM_StreamIngestCheckpointed is the chaos-harness overhead:
  // per-op bookkeeping, ledger appends, and the extra write() round trips.
  static const auto batches = hourly_batches(4096);
  const std::string path = "bench_stream_faulty.snap";
  std::int64_t records = 0;
  for (auto _ : state) {
    fault::DiskFaultPlanParams plan;
    plan.seed = 42;
    plan.short_write_rate = 0.10;
    fault::FaultyVfs vfs{fault::DiskFaultPlan(plan)};
    auto writer = stream::begin_checkpoint(path, ingest_params(4), &vfs);
    stream::StreamIngestor ingest(ingest_params(4), &writer);
    for (const auto& batch : batches) {
      ingest.push(batch);
      records += static_cast<std::int64_t>(batch.size());
    }
    ingest.finish();
    writer.close();
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_IngestFaultyVfs)->Unit(benchmark::kMillisecond);

std::vector<stream::FeedBatch> feed_script(std::size_t records_per_hour,
                                           std::uint64_t seed) {
  std::vector<probe::ServiceSession> sessions;
  for (const auto& batch : hourly_batches(records_per_hour, seed)) {
    sessions.insert(sessions.end(), batch.begin(), batch.end());
  }
  return stream::hourly_script(sessions, kHours);
}

void BM_SupervisedIngest(benchmark::State& state) {
  // Four clean feeds under full supervision (dedup set, validation,
  // coverage tracking, virtual clock). The gap to BM_StreamIngestShards is
  // the supervision overhead on the healthy path.
  static const auto script = feed_script(1024, 7);
  std::int64_t records = 0;
  for (auto _ : state) {
    std::vector<stream::VectorFeed> sources(4, stream::VectorFeed(script));
    std::vector<stream::FeedSpec> specs;
    for (std::size_t p = 0; p < 4; ++p) {
      stream::FeedSpec spec;
      spec.name = "p" + std::to_string(p);
      for (std::size_t i = 0; i < kAntennas; ++i) {
        spec.antenna_ids.push_back(
            static_cast<std::uint32_t>(p * kAntennas + i));
      }
      spec.source = &sources[p];
      specs.push_back(std::move(spec));
    }
    stream::SupervisorParams params;
    params.num_services = kServices;
    params.num_hours = kHours;
    params.num_shards = 2;
    stream::FeedSupervisor supervisor(std::move(params), std::move(specs));
    supervisor.run();
    records += static_cast<std::int64_t>(4 * script.size() * 1024);
    benchmark::DoNotOptimize(supervisor.merge());
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_SupervisedIngest)->Unit(benchmark::kMillisecond);

void BM_SupervisedIngestFaulty(benchmark::State& state) {
  // The same four feeds wrapped in a seeded FaultPlan (retries, duplicates,
  // truncated redeliveries, skew). The gap to BM_SupervisedIngest is the
  // cost of absorbing the faults.
  static const auto script = feed_script(1024, 7);
  fault::FaultPlanParams fault_params;
  fault_params.seed = 11;
  fault_params.num_probes = 4;
  fault_params.num_hours = kHours;
  fault_params.transient_rate = 0.10;
  fault_params.duplicate_rate = 0.15;
  fault_params.reorder_rate = 0.15;
  fault_params.skew_rate = 0.10;
  fault_params.truncate_rate = 0.10;
  static const fault::FaultPlan plan(fault_params);
  std::int64_t records = 0;
  for (auto _ : state) {
    fault::FaultLedger ledger;
    std::vector<std::unique_ptr<fault::FaultyFeed>> sources;
    std::vector<stream::FeedSpec> specs;
    for (std::size_t p = 0; p < 4; ++p) {
      sources.push_back(
          std::make_unique<fault::FaultyFeed>(p, script, &plan, &ledger));
      stream::FeedSpec spec;
      spec.name = "p" + std::to_string(p);
      for (std::size_t i = 0; i < kAntennas; ++i) {
        spec.antenna_ids.push_back(
            static_cast<std::uint32_t>(p * kAntennas + i));
      }
      spec.source = sources.back().get();
      specs.push_back(std::move(spec));
    }
    stream::SupervisorParams params;
    params.num_services = kServices;
    params.num_hours = kHours;
    params.num_shards = 2;
    params.allowed_lateness = 12;
    params.corrupt_strikes = 1000;  // Truncations are redelivered intact.
    stream::FeedSupervisor supervisor(std::move(params), std::move(specs));
    supervisor.run();
    records += static_cast<std::int64_t>(4 * script.size() * 1024);
    benchmark::DoNotOptimize(supervisor.merge());
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_SupervisedIngestFaulty)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoad(benchmark::State& state) {
  // mmap + CRC validation + materializing the T matrix from a snapshot.
  core::ScenarioParams params;
  params.scale = 0.05;
  params.outdoor_ratio = 0.0;
  static const core::Scenario scenario = core::Scenario::build(params);
  const std::string path = "bench_snapshot_load.snap";
  {
    store::SnapshotWriter writer(path);
    writer.append_matrix(scenario.demand().traffic_matrix());
    writer.close();
  }
  for (auto _ : state) {
    const store::MappedSnapshot snapshot(path);
    benchmark::DoNotOptimize(snapshot.matrix()->to_matrix());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotLoad)->Unit(benchmark::kMicrosecond);

void BM_SnapshotRegenerate(benchmark::State& state) {
  // The alternative to loading the snapshot: re-synthesizing the scenario
  // from its seed. The ratio to BM_SnapshotLoad is what the store buys.
  core::ScenarioParams params;
  params.scale = 0.05;
  params.outdoor_ratio = 0.0;
  for (auto _ : state) {
    const core::Scenario scenario = core::Scenario::build(params);
    benchmark::DoNotOptimize(scenario.demand().traffic_matrix());
  }
}
BENCHMARK(BM_SnapshotRegenerate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Smoke preset: skip the fsync-heavy clean checkpoint bench and the
  // scenario regeneration; the remaining benches cover ingest, the
  // faulty-vfs checkpoint path, supervision (clean and faulty), and the
  // snapshot load path.
  return icn::bench::trajectory_main(
      "perf_stream", "-(Checkpointed|Regenerate)", argc, argv);
}
