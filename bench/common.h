// Shared scaffolding for the figure/table reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper at the full
// nationwide scale (N = 4,762 indoor antennas) by default; set the
// ICN_BENCH_SCALE environment variable (e.g. 0.2) to run a faster reduced
// study with the same qualitative shape.
#pragma once

#include <string>

#include "core/pipeline.h"

namespace icn::bench {

/// Scale factor from ICN_BENCH_SCALE (default 1.0 = the paper's population).
[[nodiscard]] double bench_scale();

/// Canonical pipeline parameters used by all benches (seed 2023).
[[nodiscard]] core::PipelineParams default_params();

/// Runs (and memoizes per-process) the canonical pipeline.
[[nodiscard]] const core::PipelineResult& shared_pipeline();

/// Prints the bench banner: experiment id, title, and scale.
void print_header(const std::string& experiment, const std::string& title);

/// Prints a "paper vs measured" comparison line.
void print_claim(const std::string& claim, const std::string& paper,
                 const std::string& measured);

}  // namespace icn::bench
