// Figure 8 (a-c): how each indoor environment distributes over the clusters
// — airports/tunnels almost entirely in cluster 1, hotels/hospitals/public
// buildings in cluster 2, expo centers >50% in cluster 3, stadium split
// across 5/6/8, workplaces concentrated in cluster 3.
#include <iostream>

#include "common.h"
#include "core/environment_analysis.h"
#include "util/table.h"

int main() {
  using namespace icn;
  bench::print_header("Figure 8", "Cluster distributions per environment");
  const auto& result = bench::shared_pipeline();
  const core::EnvironmentCorrelation env(
      result.scenario, result.clusters.labels, result.clusters.chosen_k);

  util::TextTable table({"environment", "N", "c0", "c1", "c2", "c3", "c4",
                         "c5", "c6", "c7", "c8"});
  for (const net::Environment e : net::all_environments()) {
    std::vector<std::string> row = {
        net::environment_name(e), std::to_string(env.environment_size(e))};
    for (std::size_t c = 0; c < 9; ++c) {
      row.push_back(util::fmt_percent(env.share_of_environment(e, c), 0));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\n";
  bench::print_claim(
      "(a) airports, tunnels, commercial centers",
      "cluster 1 contains almost all airport and tunnel antennas; cluster 2 "
      "hosts 50% of the commercial centers",
      "airports->c1 " +
          util::fmt_percent(
              env.share_of_environment(net::Environment::kAirport, 1)) +
          ", tunnels->c1 " +
          util::fmt_percent(
              env.share_of_environment(net::Environment::kTunnel, 1)) +
          ", commercial->c2 " +
          util::fmt_percent(
              env.share_of_environment(net::Environment::kCommercial, 2)));
  bench::print_claim(
      "(b) hotels, hospitals, public buildings",
      "cluster 2 hosts most hotels and public buildings and almost all "
      "hospitals",
      "hotels->c2 " +
          util::fmt_percent(
              env.share_of_environment(net::Environment::kHotel, 2)) +
          ", hospitals->c2 " +
          util::fmt_percent(
              env.share_of_environment(net::Environment::kHospital, 2)) +
          ", public->c2 " +
          util::fmt_percent(env.share_of_environment(
              net::Environment::kPublicBuilding, 2)));
  bench::print_claim(
      "(c) stadiums, expo centers, workplaces",
      "stadiums split over 5/6/8; expo centers >50% in cluster 3; "
      "workplaces mostly cluster 3 (~5% in cluster 5)",
      "stadiums->5/6/8 " +
          util::fmt_percent(
              env.share_of_environment(net::Environment::kStadium, 5) +
              env.share_of_environment(net::Environment::kStadium, 6) +
              env.share_of_environment(net::Environment::kStadium, 8)) +
          ", expo->c3 " +
          util::fmt_percent(
              env.share_of_environment(net::Environment::kExpo, 3)) +
          ", workspaces->c3 " +
          util::fmt_percent(
              env.share_of_environment(net::Environment::kWorkspace, 3)) +
          " (c5 " +
          util::fmt_percent(
              env.share_of_environment(net::Environment::kWorkspace, 5)) +
          ")");
  return 0;
}
