// Figure 1: histograms of (i) max-normalized traffic, (ii) RCA, (iii) RSCA
// over the M = 73 service features of a set of sample antennas.
//
// Reproduced claims: the normalized traffic collapses into a spike at 0;
// RCA spreads the samples but keeps a long over-utilization tail (the paper
// observes a maximum of 75.88 on its sample); RSCA is balanced in [-1, 1].
#include <algorithm>
#include <iostream>

#include "common.h"
#include "core/rca.h"
#include "util/ascii.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace icn;
  bench::print_header("Figure 1",
                      "Normalized traffic vs RCA vs RSCA histograms");
  const auto& result = bench::shared_pipeline();
  const auto& traffic = result.scenario.demand().traffic_matrix();
  const ml::Matrix rca = core::compute_rca(traffic);
  const ml::Matrix& rsca = result.rsca;

  // The paper plots "some antennas": use the first 40 antennas (seeded
  // generation makes this stable) and pool their per-service features.
  const std::size_t sample = std::min<std::size_t>(40, traffic.rows());
  std::vector<double> raw, rca_vals, rsca_vals;
  double global_max = 0.0;
  for (std::size_t i = 0; i < sample; ++i) {
    for (std::size_t j = 0; j < traffic.cols(); ++j) {
      global_max = std::max(global_max, traffic(i, j));
    }
  }
  for (std::size_t i = 0; i < sample; ++i) {
    for (std::size_t j = 0; j < traffic.cols(); ++j) {
      raw.push_back(traffic(i, j) / global_max);
      rca_vals.push_back(rca(i, j));
      rsca_vals.push_back(rsca(i, j));
    }
  }

  std::cout << "\n(i) Traffic normalized by the max application load ("
            << sample << " antennas x 73 services):\n";
  std::cout << util::render_histogram(
      util::make_histogram(raw, 0.0, 1.0, 20));
  const double frac_below_005 =
      static_cast<double>(std::count_if(raw.begin(), raw.end(),
                                        [](double v) { return v < 0.05; })) /
      static_cast<double>(raw.size());

  std::cout << "\n(ii) RCA (Eq. 1):\n";
  std::cout << util::render_histogram(
      util::make_histogram(rca_vals, 0.0, 5.0, 20));
  std::cout << "RCA max over the sample: "
            << util::fmt_double(util::max_value(rca_vals), 2) << "\n";

  std::cout << "\n(iii) RSCA (Eq. 2):\n";
  std::cout << util::render_histogram(
      util::make_histogram(rsca_vals, -1.0, 1.0, 20));

  std::cout << "\n";
  bench::print_claim(
      "max-normalization squeezes almost all features near 0",
      "spike-like behavior with most applications close to 0",
      util::fmt_percent(frac_below_005) + " of features below 0.05");
  bench::print_claim(
      "RCA keeps an unbounded over-utilization tail",
      "values span beyond 5, max 75.88 in the paper's sample",
      "max RCA " + util::fmt_double(util::max_value(rca_vals), 2) +
          ", " +
          util::fmt_percent(
              static_cast<double>(std::count_if(
                  rca_vals.begin(), rca_vals.end(),
                  [](double v) { return v > 5.0; })) /
              static_cast<double>(rca_vals.size())) +
          " of features above 5");
  bench::print_claim(
      "RSCA balances under- and over-utilization",
      "properly balanced distribution within [-1, 1]",
      "RSCA mean " + util::fmt_double(util::mean(rsca_vals), 3) +
          ", min " + util::fmt_double(util::min_value(rsca_vals), 3) +
          ", max " + util::fmt_double(util::max_value(rsca_vals), 3));
  return 0;
}
