// Performance microbenches (google-benchmark) for the serving layer: query
// round-trip throughput over loopback against the epoll reactor, and the
// hot snapshot swap (mmap + validate + publish) that a seal hook performs
// while readers stay pinned. Emits BENCH_perf_serve.json via bench/report.h.
#include <benchmark/benchmark.h>

#include "report.h"

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/command_table.h"
#include "serve/fault.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "store/snapshot.h"

namespace {

using namespace icn;

constexpr std::size_t kAntennas = 64;
constexpr std::size_t kServices = 73;
constexpr std::int64_t kHours = 48;

/// Seals a study-shaped snapshot (meta + hourly windows + totals matrix).
void write_bench_snapshot(const std::string& path, double scale) {
  store::SnapshotWriter writer(path);
  std::vector<std::uint32_t> ids(kAntennas);
  for (std::size_t i = 0; i < kAntennas; ++i) {
    ids[i] = static_cast<std::uint32_t>(i);
  }
  writer.append_stream_meta(ids, kServices, kHours);
  ml::Matrix totals(kAntennas, kServices);
  std::vector<double> cells(kAntennas * kServices);
  for (std::int64_t h = 0; h < kHours; ++h) {
    for (std::size_t a = 0; a < kAntennas; ++a) {
      for (std::size_t s = 0; s < kServices; ++s) {
        const double mb =
            scale * static_cast<double>((h % 24) * 100 + a * 10 + s + 1);
        cells[a * kServices + s] = mb;
        totals(a, s) += mb;
      }
    }
    writer.append_window(h, cells);
  }
  writer.append_matrix(totals);
  writer.sync();
}

const std::string& bench_snapshot() {
  static const std::string path = [] {
    const std::string p = "bench_serve.snap";
    write_bench_snapshot(p, 1.0);
    return p;
  }();
  return path;
}

void BM_ServeQueryThroughput(benchmark::State& state) {
  // Full client round trips over loopback: frame build, socket write, epoll
  // wake, zero-copy dispatch off the mapping, reply flush, client read. The
  // arg selects the query mix entry (0 = ping, 1 = totals slice, 2 = hourly
  // all-service slice — ~28 KiB reply).
  serve::SnapshotRegistry registry;
  registry.publish_file(bench_snapshot());
  serve::Server server(serve::ServeConfig{}, registry);
  std::thread reactor([&server] { server.run(); });
  {
    serve::QueryClient client(server.port());
    std::uint32_t id = 1;
    std::vector<std::uint8_t> body;
    serve::Opcode opcode = serve::Opcode::kPing;
    switch (state.range(0)) {
      case 0:
        break;
      case 1:
        opcode = serve::Opcode::kSlice;
        body = serve::make_slice_body(7, serve::kAllServices,
                                      serve::kTotalsHours,
                                      serve::kTotalsHours);
        break;
      default:
        opcode = serve::Opcode::kSlice;
        body = serve::make_slice_body(7, serve::kAllServices, 0, kHours);
        break;
    }
    std::size_t reply_bytes = 0;
    for (auto _ : state) {
      const serve::Reply reply = client.call(opcode, body, id++);
      benchmark::DoNotOptimize(reply.generation);
      reply_bytes += serve::kReplyHeaderSize + reply.body.size();
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(static_cast<std::int64_t>(reply_bytes));
  }
  server.stop();
  reactor.join();
}
BENCHMARK(BM_ServeQueryThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_ServeHotSwap(benchmark::State& state) {
  // The seal-to-live path: mmap + CRC-validate + pre-parse + atomically
  // publish a new generation, with a reader pinned to the previous one the
  // whole time (RCU: the swap never blocks or copies for readers).
  const std::string a = "bench_serve_swap_a.snap";
  const std::string b = "bench_serve_swap_b.snap";
  write_bench_snapshot(a, 1.0);
  write_bench_snapshot(b, 2.0);
  serve::SnapshotRegistry registry;
  registry.publish_file(a);
  const auto pinned = registry.acquire();  // Survives every swap below.
  bool flip = false;
  for (auto _ : state) {
    registry.publish_file(flip ? a : b);
    flip = !flip;
  }
  if (pinned->generation() != 1) {
    state.SkipWithError("pinned reader lost its generation");
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(a.c_str());
  std::remove(b.c_str());
}
BENCHMARK(BM_ServeHotSwap)->Unit(benchmark::kMicrosecond);

void BM_ServeFaultyThroughput(benchmark::State& state) {
  // Query round trips with a seeded FaultyTransport under every session:
  // per-tick rx/tx byte budgets (partial reads + short writes) but no
  // corruption or resets, so every call completes. The gap to
  // BM_ServeQueryThroughput is the cost of riding out a degraded link —
  // retried reads across ticks, fragmented reply flushes — with a resilient
  // client on the other end.
  serve::SnapshotRegistry registry;
  registry.publish_file(bench_snapshot());
  serve::Server server(serve::ServeConfig{}, registry);
  serve::ServeFaultPlanParams params;
  params.seed = 42;
  params.partial_read_rate = 0.25;
  params.partial_read_max = 64;
  params.short_write_rate = 0.25;
  params.short_write_max = 256;
  const serve::ServeFaultPlan plan(params);
  server.set_transport_factory(
      [&plan](std::unique_ptr<serve::Transport> inner, std::uint64_t conn) {
        // Null ledger: bench mode, no audit trail to grow unbounded.
        return std::make_unique<serve::FaultyTransport>(std::move(inner),
                                                        &plan, conn, nullptr);
      });
  std::thread reactor([&server] { server.run(); });
  {
    serve::ClientOptions options;
    options.max_attempts = 3;
    options.backoff_base_ms = 1;
    options.backoff_max_ms = 8;
    serve::QueryClient client(server.port(), options);
    const std::vector<std::uint8_t> body = serve::make_slice_body(
        7, serve::kAllServices, serve::kTotalsHours, serve::kTotalsHours);
    std::uint32_t id = 1;
    std::size_t reply_bytes = 0;
    for (auto _ : state) {
      const serve::Reply reply =
          client.call_idempotent(serve::Opcode::kSlice, body, id++);
      benchmark::DoNotOptimize(reply.generation);
      reply_bytes += serve::kReplyHeaderSize + reply.body.size();
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(static_cast<std::int64_t>(reply_bytes));
  }
  server.begin_drain();
  reactor.join();
}
BENCHMARK(BM_ServeFaultyThroughput)->Unit(benchmark::kMicrosecond);

void BM_ServeDispatchOnly(benchmark::State& state) {
  // The deterministic core without sockets: one dispatch of an hourly
  // all-service slice straight off the mapping. The gap to
  // BM_ServeQueryThroughput/2 is the transport cost.
  const auto snap = serve::ServedSnapshot::load(bench_snapshot());
  const auto frame = serve::build_request(
      1, serve::Opcode::kSlice,
      serve::make_slice_body(7, serve::kAllServices, 0, kHours));
  const std::span<const std::uint8_t> payload{frame.data() + 4,
                                              frame.size() - 4};
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    serve::dispatch_request(snap.get(), payload, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeDispatchOnly)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const int rc = icn::bench::trajectory_main("perf_serve", nullptr, argc, argv);
  std::remove("bench_serve.snap");
  return rc;
}
