// Figure 7 (a-c): the environment composition of every cluster, by group —
// orange clusters contain only metro/train antennas; the green group is
// stadium-dominated; cluster 3 is >70% workspaces; plus the Paris-share
// statistics the paper quotes per cluster.
#include <algorithm>
#include <iostream>

#include "common.h"
#include "core/environment_analysis.h"
#include "traffic/archetypes.h"
#include "util/table.h"

int main() {
  using namespace icn;
  bench::print_header("Figure 7", "Indoor environment types per cluster");
  const auto& result = bench::shared_pipeline();
  const core::EnvironmentCorrelation env(
      result.scenario, result.clusters.labels, result.clusters.chosen_k);

  for (int group = 0; group < 3; ++group) {
    std::cout << "\n("
              << static_cast<char>('a' + group) << ") "
              << traffic::group_name(static_cast<traffic::ClusterGroup>(group))
              << " group:\n";
    util::TextTable table({"cluster", "size", "Paris share",
                           "top environments (share of cluster)"});
    for (int c = 0; c < 9; ++c) {
      if (static_cast<int>(traffic::archetype_group(c)) != group) continue;
      // Collect environments above 2%.
      std::vector<std::pair<double, net::Environment>> shares;
      for (const net::Environment e : net::all_environments()) {
        const double s = env.share_of_cluster(static_cast<std::size_t>(c), e);
        if (s > 0.02) shares.emplace_back(s, e);
      }
      std::sort(shares.rbegin(), shares.rend());
      std::string desc;
      for (std::size_t i = 0; i < std::min<std::size_t>(4, shares.size());
           ++i) {
        if (i) desc += ", ";
        desc += std::string(net::environment_name(shares[i].second)) + " " +
                util::fmt_percent(shares[i].first, 0);
      }
      table.add_row(
          {std::to_string(c),
           std::to_string(env.cluster_size(static_cast<std::size_t>(c))),
           util::fmt_percent(env.paris_share(static_cast<std::size_t>(c))),
           desc});
    }
    table.print(std::cout);
  }

  std::cout << "\n";
  auto transit_share = [&](int c) {
    return env.share_of_cluster(static_cast<std::size_t>(c),
                                net::Environment::kMetro) +
           env.share_of_cluster(static_cast<std::size_t>(c),
                                net::Environment::kTrain);
  };
  bench::print_claim(
      "orange clusters comprise solely metro and train stations",
      "clusters 0, 4, 7 contain only transit antennas",
      "metro+train share: c0 " + util::fmt_percent(transit_share(0)) +
          ", c4 " + util::fmt_percent(transit_share(4)) + ", c7 " +
          util::fmt_percent(transit_share(7)));
  bench::print_claim(
      "clusters 0 and 4 are Parisian, cluster 7 is provincial",
      ">92% of clusters 0/4 antennas in Paris; cluster 7 = Lille, Lyon, "
      "Rennes, Toulouse metros",
      "Paris share: c0 " + util::fmt_percent(env.paris_share(0)) + ", c4 " +
          util::fmt_percent(env.paris_share(4)) + ", c7 " +
          util::fmt_percent(env.paris_share(7)));
  bench::print_claim(
      "cluster 3 is dominated by workplaces",
      "more than 70% of cluster 3 antennas are workplaces",
      util::fmt_percent(env.share_of_cluster(
          3, net::Environment::kWorkspace)) +
          " of cluster 3 antennas are workspaces");
  bench::print_claim(
      "stadiums are ~35% of cluster 5 which mixes venue types",
      "stadiums 35% of cluster 5, plus expo centers, offices, commerce",
      util::fmt_percent(env.share_of_cluster(
          5, net::Environment::kStadium)) +
          " stadiums, " +
          util::fmt_percent(env.share_of_cluster(5, net::Environment::kExpo)) +
          " expo centers in cluster 5");
  bench::print_claim(
      "clusters 6/8 are stadium-dominated, split by geography",
      ">75% of clusters 6/8 in stadiums; cluster 6 outside Paris, ~60% of "
      "cluster 8 in Paris",
      "stadium share: c6 " +
          util::fmt_percent(
              env.share_of_cluster(6, net::Environment::kStadium)) +
          " (Paris " + util::fmt_percent(env.paris_share(6)) + "), c8 " +
          util::fmt_percent(
              env.share_of_cluster(8, net::Environment::kStadium)) +
          " (Paris " + util::fmt_percent(env.paris_share(8)) + ")");
  bench::print_claim(
      "geography of the red group",
      "~92% of cluster 2 outside Paris; ~70% of cluster 3 in Paris",
      "outside-Paris share c2 " +
          util::fmt_percent(1.0 - env.paris_share(2)) +
          "; Paris share c3 " + util::fmt_percent(env.paris_share(3)));
  return 0;
}
