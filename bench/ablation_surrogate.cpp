// Ablation: surrogate forest capacity vs fidelity to the clustering labels
// (the paper fixes 100 trees; this sweep shows what that choice buys).
#include <iostream>

#include "common.h"
#include "core/surrogate.h"
#include "util/table.h"

int main() {
  using namespace icn;
  bench::print_header("Ablation", "Surrogate forest capacity vs fidelity");
  const auto& result = bench::shared_pipeline();

  std::cout << "\nForest size sweep (depth 24):\n";
  util::TextTable trees({"trees", "fidelity", "OOB accuracy"});
  for (const std::size_t n : {1u, 5u, 20u, 50u, 100u, 200u}) {
    core::SurrogateParams params;
    params.num_trees = n;
    std::cerr << "[bench] " << n << " trees...\n";
    const core::SurrogateExplainer surrogate(
        result.rsca, result.clusters.labels,
        static_cast<int>(result.clusters.chosen_k), params);
    trees.add_row({std::to_string(n),
                   util::fmt_double(surrogate.fidelity(), 4),
                   util::fmt_double(surrogate.oob_accuracy(), 4)});
  }
  trees.print(std::cout);

  std::cout << "\nDepth sweep (100 trees):\n";
  util::TextTable depth({"max depth", "fidelity", "OOB accuracy"});
  for (const std::size_t d : {2u, 4u, 8u, 16u, 24u}) {
    core::SurrogateParams params;
    params.max_depth = d;
    std::cerr << "[bench] depth " << d << "...\n";
    const core::SurrogateExplainer surrogate(
        result.rsca, result.clusters.labels,
        static_cast<int>(result.clusters.chosen_k), params);
    depth.add_row({std::to_string(d),
                   util::fmt_double(surrogate.fidelity(), 4),
                   util::fmt_double(surrogate.oob_accuracy(), 4)});
  }
  depth.print(std::cout);

  std::cout << "\n";
  bench::print_claim(
      "a 100-tree forest is a faithful surrogate of the clustering",
      "the paper trains a random forest classifier with 100 trees",
      "see sweep: fidelity saturates well before 100 trees");
  return 0;
}
