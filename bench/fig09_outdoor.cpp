// Figure 9: the ~22,000 outdoor macro antennas near the ICNs, measured with
// the Eq. 5 RSCA against the indoor baseline and classified by the surrogate
// forest — ~70% collapse into the general-use cluster 1, and the
// indoor-specific clusters (transit, workplaces, stadiums) are nearly empty.
#include <iostream>

#include "common.h"
#include "core/outdoor.h"
#include "util/ascii.h"
#include "util/table.h"

int main() {
  using namespace icn;
  bench::print_header("Figure 9", "Outdoor antennas vs the indoor clusters");
  const auto& result = bench::shared_pipeline();
  std::cerr << "[bench] classifying outdoor antennas...\n";
  const auto comparison = core::compare_outdoor(
      result.scenario, *result.surrogate,
      result.scenario.demand().traffic_matrix());

  std::cout << "\nOutdoor antennas classified: "
            << comparison.predicted.size() << "\n\n";
  util::TextTable table({"cluster", "share", "bar"});
  double max_share = 0.0;
  for (const double v : comparison.distribution) {
    max_share = std::max(max_share, v);
  }
  for (std::size_t c = 0; c < comparison.distribution.size(); ++c) {
    table.add_row({std::to_string(c),
                   util::fmt_percent(comparison.distribution[c]),
                   util::render_bar(comparison.distribution[c], max_share,
                                    30)});
  }
  table.print(std::cout);

  const double indoor_specific =
      comparison.distribution[0] + comparison.distribution[4] +
      comparison.distribution[7] + comparison.distribution[3] +
      comparison.distribution[6] + comparison.distribution[8];
  std::cout << "\n";
  bench::print_claim(
      "outdoor traffic collapses into the general-use cluster",
      "almost 70% of outdoor antennas appertain to cluster 1",
      util::fmt_percent(comparison.distribution[1]) + " in cluster 1");
  bench::print_claim(
      "indoor-specific behaviors are absent outdoors",
      "negligible share of outdoor antennas in the workplace, stadium, "
      "metro and train clusters",
      util::fmt_percent(indoor_specific) +
          " total in clusters 0/3/4/6/7/8");
  return 0;
}
