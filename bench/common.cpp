#include "common.h"

#include <cstdlib>
#include <iostream>
#include <memory>

namespace icn::bench {

double bench_scale() {
  if (const char* env = std::getenv("ICN_BENCH_SCALE")) {
    const double scale = std::atof(env);
    if (scale > 0.0) return scale;
  }
  return 1.0;
}

core::PipelineParams default_params() {
  core::PipelineParams params;
  params.scenario.seed = 2023;
  params.scenario.scale = bench_scale();
  return params;
}

const core::PipelineResult& shared_pipeline() {
  static const std::unique_ptr<core::PipelineResult> result = [] {
    std::cerr << "[bench] running pipeline at scale " << bench_scale()
              << " (set ICN_BENCH_SCALE to change)...\n";
    auto r = std::make_unique<core::PipelineResult>(
        core::run_pipeline(default_params()));
    std::cerr << "[bench] N=" << r->scenario.num_antennas()
              << " antennas, k=" << r->clusters.chosen_k
              << ", archetype ARI=" << r->ari_vs_archetypes << "\n";
    return r;
  }();
  return *result;
}

void print_header(const std::string& experiment, const std::string& title) {
  std::cout << "==========================================================\n"
            << experiment << " — " << title << "\n"
            << "(Bakirtzis et al., IMC'23; synthetic reproduction, scale "
            << bench_scale() << ")\n"
            << "==========================================================\n";
}

void print_claim(const std::string& claim, const std::string& paper,
                 const std::string& measured) {
  std::cout << "[claim] " << claim << "\n"
            << "        paper:    " << paper << "\n"
            << "        measured: " << measured << "\n";
}

}  // namespace icn::bench
