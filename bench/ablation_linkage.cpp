// Ablation: Ward's criterion (the paper's choice) vs complete / average /
// single linkage on the same RSCA features.
#include <iostream>

#include "common.h"
#include "core/clustering.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace icn;
  bench::print_header("Ablation", "Linkage criterion (Ward vs alternatives)");
  const auto& result = bench::shared_pipeline();
  const auto& truth = result.scenario.demand().archetype_labels();

  util::TextTable table(
      {"linkage", "silhouette@9", "dunn@9", "ARI vs archetypes"});
  for (const auto linkage :
       {ml::Linkage::kWard, ml::Linkage::kComplete, ml::Linkage::kAverage,
        ml::Linkage::kSingle}) {
    std::cerr << "[bench] linkage " << ml::linkage_name(linkage) << "...\n";
    core::ClusterAnalysisParams params;
    params.linkage = linkage;
    params.chosen_k = 9;
    params.k_min = 9;
    params.k_max = 9;
    const auto analysis = core::analyze_clusters(result.rsca, params);
    table.add_row({ml::linkage_name(linkage),
                   util::fmt_double(analysis.sweep.front().silhouette, 4),
                   util::fmt_double(analysis.sweep.front().dunn, 4),
                   util::fmt_double(icn::util::adjusted_rand_index(
                                        analysis.labels, truth),
                                    4)});
  }
  table.print(std::cout);
  std::cout << "\n";
  bench::print_claim(
      "Ward minimizes intra-cluster variance and suits the RSCA geometry",
      "the paper selects agglomerative clustering with Ward's criterion",
      "see table: Ward matches or beats the alternatives on ARI/silhouette");
  return 0;
}
