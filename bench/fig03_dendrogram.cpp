// Figure 3: the Ward dendrogram over the ICN antennas — three large groups
// (orange {0,7,4}, green {5,6,8}, red {3,1,2}); cutting at k = 6 merges the
// orange group into one cluster and fuses clusters 6 and 8.
#include <array>
#include <iostream>

#include "common.h"
#include "ml/linkage.h"
#include "traffic/archetypes.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace icn;
  bench::print_header("Figure 3", "Hierarchical clustering dendrogram");
  const auto& result = bench::shared_pipeline();
  const auto& dendrogram = result.clusters.dendrogram;

  std::cout << "\nTop of the merge tree (heights and leaf counts):\n";
  std::cout << dendrogram.render(5);

  std::cout << "Cophenetic correlation with the RSCA geometry: "
            << util::fmt_double(
                   ml::cophenetic_correlation(dendrogram, result.rsca), 3)
            << "\n";
  std::cout << "Cut heights: k=9 at h<"
            << util::fmt_double(dendrogram.cut_height(9), 3) << ", k=6 at h<"
            << util::fmt_double(dendrogram.cut_height(6), 3) << ", k=3 at h<"
            << util::fmt_double(dendrogram.cut_height(3), 3) << "\n";

  // Cluster sizes at k = 9 with paper-aligned ids and group colours.
  std::array<std::size_t, 9> sizes{};
  for (const int l : result.clusters.labels) {
    ++sizes[static_cast<std::size_t>(l)];
  }
  util::TextTable table({"cluster", "group", "antennas"});
  for (int c = 0; c < 9; ++c) {
    table.add_row({std::to_string(c),
                   traffic::group_name(traffic::archetype_group(c)),
                   std::to_string(sizes[static_cast<std::size_t>(c)])});
  }
  std::cout << "\nClusters at k = 9 (ids aligned to the paper's):\n";
  table.print(std::cout);

  // Verify the k = 6 consolidation: orange fuses, 6+8 fuse.
  const auto k6 = dendrogram.cut(6);
  const auto k9_raw = dendrogram.cut(9);
  // Build mapping raw9 -> k6 component.
  std::array<int, 9> raw9_to_k6;
  raw9_to_k6.fill(-1);
  for (std::size_t i = 0; i < k6.size(); ++i) {
    raw9_to_k6[static_cast<std::size_t>(k9_raw[i])] = k6[i];
  }
  // Translate to paper ids via the pipeline's label map.
  std::array<int, 9> paper_to_k6;
  paper_to_k6.fill(-1);
  for (std::size_t raw = 0; raw < 9; ++raw) {
    paper_to_k6[static_cast<std::size_t>(result.label_map[raw])] =
        raw9_to_k6[raw];
  }
  const bool orange_fused = paper_to_k6[0] == paper_to_k6[4] &&
                            paper_to_k6[4] == paper_to_k6[7];
  const bool green_partial = paper_to_k6[6] == paper_to_k6[8] &&
                             paper_to_k6[5] != paper_to_k6[6];

  // Group separation: same-group clusters must merge below the cross-group
  // merges. Quantify with mean inter-centroid RSCA distance.
  std::cout << "\n";
  bench::print_claim(
      "three large cluster groups",
      "orange {0,7,4}, green {5,6,8}, red {3,1,2}",
      "labels aligned to archetypes whose groups are orange {0,4,7}, green "
      "{5,6,8}, red {1,2,3}; ARI vs archetypes = " +
          util::fmt_double(result.ari_vs_archetypes, 3));
  bench::print_claim(
      "k = 6 consolidates the orange group and merges clusters 6 and 8",
      "orange -> single cluster; 6+8 merge within the green group",
      std::string("orange fused: ") + (orange_fused ? "yes" : "no") +
          ", clusters 6+8 fused while 5 stays apart: " +
          (green_partial ? "yes" : "no"));
  return 0;
}
