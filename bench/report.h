// Machine-readable perf trajectory for the google-benchmark binaries.
//
// trajectory_main() wraps BENCHMARK_MAIN(): it runs the registered benches
// with the normal console output AND writes BENCH_<name>.json next to the
// working directory — one schema-versioned document per bench binary with
// the run context (git revision, SIMD level, CRC32C backend, hardware
// threads, preset) and one record per benchmark run (op, wall ns/iter,
// iterations, threads, items/bytes per second). CI archives these files and
// the README perf table is regenerated from them, so every commit leaves a
// comparable perf data point — the trajectory — instead of prose numbers
// that silently go stale.
//
// ICN_BENCH_PRESET=smoke switches to a fast subset (small problem sizes,
// low --benchmark_min_time) for the CI perf-smoke job; the JSON records
// which preset produced it so full and smoke points are never conflated.
#pragma once

namespace icn::bench {

/// Runs the registered benchmarks and writes BENCH_<bench_name>.json.
/// `smoke_filter` is a google-benchmark regex applied only under
/// ICN_BENCH_PRESET=smoke (use a leading '-' to exclude heavy benches);
/// pass nullptr to run everything in both presets. Returns the process
/// exit code.
int trajectory_main(const char* bench_name, const char* smoke_filter,
                    int argc, char** argv);

}  // namespace icn::bench
