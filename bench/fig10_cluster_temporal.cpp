// Figure 10 (a-i): normalized median hourly traffic heatmaps per cluster for
// 04-24 Jan 2023 — commute double peaks and the 19 Jan strike collapse for
// the orange clusters, sporadic event bursts for the green group (NBA Paris
// Game on the 19th, Sirha Lyon on the 19th-24th), diurnal plateaus for the
// red group with cluster 3 idle on weekends.
#include <algorithm>
#include <cstdlib>
#include <string>
#include <iostream>

#include "common.h"
#include "core/temporal_analysis.h"
#include "traffic/archetypes.h"
#include "util/ascii.h"
#include "util/calendar.h"
#include "util/image.h"
#include "util/table.h"

namespace {

using icn::core::TemporalHeatmap;

void render(const TemporalHeatmap& map) {
  // Columns = days (with weekend markers), rows = hours 0..23.
  std::cout << "      ";
  for (std::size_t d = 0; d < map.days; ++d) {
    const auto wd = map.window.weekday_at(static_cast<std::int64_t>(d));
    std::cout << (icn::util::is_weekend(wd) ? 'w' : '-');
  }
  std::cout << "   (w = weekend; days " << map.window.first().to_string()
            << " .. " << map.window.last().to_string() << ")\n";
  for (int h = 0; h < 24; ++h) {
    std::printf("h%02d | ", h);
    std::vector<double> row(map.days);
    for (std::size_t d = 0; d < map.days; ++d) row[d] = map.at(h, d);
    std::cout << icn::util::render_heatmap(row, 1, map.days, 0.0, 1.0);
  }
}

}  // namespace

int main() {
  using namespace icn;
  bench::print_header("Figure 10",
                      "Per-cluster normalized median traffic heatmaps");
  const auto& result = bench::shared_pipeline();
  const auto& labels = result.clusters.labels;
  const auto& temporal = result.scenario.temporal();

  // Optional PGM dump: set ICN_BENCH_PGM_DIR to also write each heatmap as
  // an 8-bit grayscale image (one per cluster, like the paper's panels).
  const char* pgm_dir = std::getenv("ICN_BENCH_PGM_DIR");

  std::vector<core::TemporalHeatmap> maps;
  for (int c = 0; c < 9; ++c) {
    std::cerr << "[bench] heatmap cluster " << c << "...\n";
    maps.push_back(core::cluster_total_heatmap(temporal, labels, c));
    std::cout << "\n--- Cluster " << c << " ("
              << traffic::group_name(traffic::archetype_group(c))
              << "), peak median " << util::fmt_double(maps.back().peak_mb, 1)
              << " MB/h ---\n";
    render(maps.back());
    if (pgm_dir) {
      const std::string path = std::string(pgm_dir) + "/fig10_cluster" +
                               std::to_string(c) + ".pgm";
      if (icn::util::write_pgm_file(path, maps.back().values, 24,
                                    maps.back().days, 0.0, 1.0)) {
        std::cerr << "[bench] wrote " << path << "\n";
      }
    }
  }

  // Quantified claims.
  const auto window = icn::util::temporal_window();
  const auto strike_d =
      static_cast<std::size_t>(window.index_of(icn::util::strike_day()));
  auto hod = [&](int c) { return core::hour_of_day_profile(maps[c]); };
  auto day = [&](int c) { return core::day_profile(maps[c]); };

  std::cout << "\n";
  {
    const auto p0 = hod(0);
    bench::print_claim(
        "orange clusters peak at commuting hours",
        "peaks 7:30-9:30 and 17:30-19:30, quiet weekends",
        "cluster 0 hour profile: h8 " + util::fmt_double(p0[8], 2) +
            ", h13 " + util::fmt_double(p0[13], 2) + ", h18 " +
            util::fmt_double(p0[18], 2));
  }
  {
    const auto d0 = day(0);
    const auto d7 = day(7);
    bench::print_claim(
        "19 Jan strike wipes out Paris commuter traffic, milder for "
        "cluster 7",
        "negligible traffic on the 19th for 0/4; impact not as severe for 7",
        "strike-day/previous-Thursday ratio: c0 " +
            util::fmt_double(d0[strike_d] / d0[strike_d - 7], 2) + ", c7 " +
            util::fmt_double(d7[strike_d] / d7[strike_d - 7], 2));
  }
  {
    const auto d8 = day(8);
    double other = 0.0;
    for (std::size_t i = 0; i < d8.size(); ++i) {
      if (i != strike_d) other = std::max(other, d8[i]);
    }
    bench::print_claim(
        "cluster 8 bursts on the NBA Paris Game evening (19 Jan)",
        "traffic outbreak observed only on the evening of January 19th",
        "cluster 8: 19 Jan day level " + util::fmt_double(d8[strike_d], 2) +
            " vs max other day " + util::fmt_double(other, 2));
  }
  {
    const auto d3 = day(3);
    // Window starts Wed 04 Jan: Sat 07 Jan = index 3, Mon 09 Jan = 5.
    bench::print_claim(
        "cluster 3 idles on weekends; clusters 1-2 do not",
        "workspace cluster idle during weekends and after working hours",
        "cluster 3 Sat/Mon ratio " + util::fmt_double(d3[3] / d3[5], 2) +
            ", cluster 1 Sat/Mon ratio " +
            util::fmt_double(day(1)[3] / day(1)[5], 2));
  }
  {
    const auto p2 = hod(2);
    const auto p1 = hod(1);
    bench::print_claim(
        "cluster 2 carries more night traffic than cluster 1",
        "higher traffic during nighttime due to hotels and hospitals",
        "h03 level: c2 " + util::fmt_double(p2[3], 2) + " vs c1 " +
            util::fmt_double(p1[3], 2));
  }
  {
    // Sirha: green cluster 5 contains the Lyon expo venues. The median over
    // the whole mixed cluster stays low, so report the Lyon-expo members.
    std::vector<int> restricted = labels;
    const auto& indoor = result.scenario.topology().indoor();
    int synthetic_label = 100;
    for (std::size_t i = 0; i < indoor.size(); ++i) {
      if (labels[i] == 5 &&
          indoor[i].environment == net::Environment::kExpo &&
          indoor[i].city == net::City::kLyon) {
        restricted[i] = synthetic_label;
      }
    }
    const bool have_lyon =
        std::count(restricted.begin(), restricted.end(), synthetic_label) > 0;
    if (have_lyon) {
      const auto lyon = core::cluster_total_heatmap(temporal, restricted,
                                                    synthetic_label);
      const auto dl = core::day_profile(lyon);
      double before = 0.0;
      for (std::size_t i = 0; i + 6 < dl.size(); ++i) {
        before = std::max(before, dl[i]);
      }
      double during = 0.0;
      for (std::size_t i = dl.size() - 6; i < dl.size(); ++i) {
        during = std::max(during, dl[i]);
      }
      bench::print_claim(
          "cluster 5's continuous burst on 19-24 Jan is the Sirha Lyon fair",
          "continuous burst between the 19th and 24th at Eurexpo Lyon",
          "Lyon expo venues: max day level before 19 Jan " +
              util::fmt_double(before, 2) + " vs during Sirha " +
              util::fmt_double(during, 2));
    }
  }
  return 0;
}
