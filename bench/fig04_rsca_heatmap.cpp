// Figure 4: heatmap of the per-service RSCA with antennas grouped by
// cluster — each cluster shows a distinct vertical utilization signature
// (blue = over-utilization, red = under-utilization in the paper; here
// '#/@' = over, rendered via cluster-mean columns).
#include <algorithm>
#include <iostream>
#include <vector>

#include "common.h"
#include "util/ascii.h"
#include "util/table.h"

int main() {
  using namespace icn;
  bench::print_header("Figure 4", "RSCA heatmap of clustered ICN antennas");
  const auto& result = bench::shared_pipeline();
  const auto& rsca = result.rsca;
  const auto& labels = result.clusters.labels;
  const std::size_t m = rsca.cols();
  const std::size_t k = result.clusters.chosen_k;

  // Mean RSCA per (cluster, service): the cluster signature columns.
  std::vector<std::vector<double>> signature(
      k, std::vector<double>(m, 0.0));
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < rsca.rows(); ++i) {
    const auto c = static_cast<std::size_t>(labels[i]);
    ++counts[c];
    for (std::size_t j = 0; j < m; ++j) signature[c][j] += rsca(i, j);
  }
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t j = 0; j < m; ++j) {
      signature[c][j] /= static_cast<double>(counts[c]);
    }
  }

  // Render services (rows) x clusters (columns), cluster-mean RSCA.
  std::cout << "\nRows = services (73), columns = clusters 0..8; '@#*+' = "
               "over-utilized, '.'= neutral, under-utilization in "
               "'+*#@'-mirrored shades:\n\n";
  std::cout << "          ";
  for (std::size_t c = 0; c < k; ++c) std::cout << c;
  std::cout << "\n";
  const auto& catalog = result.scenario.catalog();
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<double> row(k);
    for (std::size_t c = 0; c < k; ++c) row[c] = signature[c][j];
    std::string name(catalog.at(j).name);
    name.resize(9, ' ');
    std::cout << name << " " << util::render_signed_heatmap(row, 1, k);
  }

  // Quantify "same pattern within a cluster, different across clusters":
  // mean within-cluster correlation of antenna RSCA rows to their own
  // signature vs to the best foreign signature.
  double own_corr = 0.0, cross_corr = 0.0;
  const std::size_t stride = std::max<std::size_t>(1, rsca.rows() / 500);
  std::size_t n_sampled = 0;
  for (std::size_t i = 0; i < rsca.rows(); i += stride) {
    const auto c = static_cast<std::size_t>(labels[i]);
    std::vector<double> row(rsca.row(i).begin(), rsca.row(i).end());
    own_corr += util::pearson(row, signature[c]);
    double best_other = -1.0;
    for (std::size_t o = 0; o < k; ++o) {
      if (o == c) continue;
      best_other = std::max(best_other, util::pearson(row, signature[o]));
    }
    cross_corr += best_other;
    ++n_sampled;
  }
  own_corr /= static_cast<double>(n_sampled);
  cross_corr /= static_cast<double>(n_sampled);

  std::cout << "\n";
  bench::print_claim(
      "antennas of the same cluster share a distinct RSCA pattern",
      "each cluster shows its own visual signature in the heatmap",
      "mean correlation to own cluster signature " +
          util::fmt_double(own_corr, 3) + " vs best foreign signature " +
          util::fmt_double(cross_corr, 3));
  return 0;
}
