#include "report.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "store/crc32c.h"
#include "util/simd.h"

#ifndef ICN_GIT_REV
#define ICN_GIT_REV "unknown"
#endif

namespace icn::bench {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// "BM_WardNnChainThreads/2000/4" -> "WardNnChainThreads".
std::string op_of(const std::string& name) {
  std::string op = name.substr(0, name.find('/'));
  if (op.rfind("BM_", 0) == 0) op = op.substr(3);
  // Fixture benches print as "Fixture/BM_Name"; keep the BM_ segment.
  const std::size_t bm = name.find("BM_");
  if (bm != std::string::npos) {
    op = name.substr(bm + 3);
    op = op.substr(0, op.find('/'));
  }
  return op;
}

/// Collects every iteration run while the base ConsoleReporter keeps the
/// normal console output.
class TrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    return benchmark::ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      runs_.push_back(run);
    }
    benchmark::ConsoleReporter::ReportRuns(report);
  }

  [[nodiscard]] const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

/// One run record. wall_ns is real time per iteration; "threads" prefers the
/// bench's own counter (the ScopedOverride pool size) over google-benchmark's
/// thread count, which is always 1 here.
std::string run_json(const benchmark::BenchmarkReporter::Run& run) {
  const double iters =
      run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
  const double wall_ns = run.real_accumulated_time / iters * 1e9;
  double threads = static_cast<double>(run.threads);
  std::string extra;
  for (const auto& [name, counter] : run.counters) {
    if (name == "threads") {
      threads = counter.value;
      continue;
    }
    extra += ", \"" + json_escape(name) + "\": " + json_number(counter.value);
  }
  std::string out = "    {\"name\": \"";
  out += json_escape(run.benchmark_name());
  out += "\", \"op\": \"";
  out += json_escape(op_of(run.benchmark_name()));
  out += "\", \"iterations\": ";
  out += std::to_string(static_cast<long long>(run.iterations));
  out += ", \"wall_ns\": ";
  out += json_number(wall_ns);
  out += ", \"threads\": ";
  out += json_number(threads);
  out += extra;
  out += "}";
  return out;
}

}  // namespace

int trajectory_main(const char* bench_name, const char* smoke_filter,
                    int argc, char** argv) {
  const char* preset_env = std::getenv("ICN_BENCH_PRESET");
  const bool smoke =
      preset_env != nullptr && std::string(preset_env) == "smoke";

  // Inject the smoke preset's flags before the user's, so explicit flags on
  // the command line still win.
  std::vector<std::string> arg_storage;
  arg_storage.emplace_back(argv[0]);
  if (smoke) {
    arg_storage.emplace_back("--benchmark_min_time=0.05");
    if (smoke_filter != nullptr && smoke_filter[0] != '\0') {
      arg_storage.emplace_back(std::string("--benchmark_filter=") +
                               smoke_filter);
    }
  }
  for (int i = 1; i < argc; ++i) arg_storage.emplace_back(argv[i]);
  std::vector<char*> args;
  args.reserve(arg_storage.size());
  for (auto& a : arg_storage) args.push_back(a.data());
  int argc_adj = static_cast<int>(args.size());
  benchmark::Initialize(&argc_adj, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc_adj, args.data())) return 1;

  TrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  const std::string path = std::string("BENCH_") + bench_name + ".json";
  std::ofstream out(path);
  out << "{\n";
  out << "  \"schema\": \"icn-bench-v1\",\n";
  out << "  \"bench\": \"" << json_escape(bench_name) << "\",\n";
  out << "  \"git_rev\": \"" << json_escape(ICN_GIT_REV) << "\",\n";
  out << "  \"preset\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  out << "  \"simd\": \""
      << icn::util::simd_level_name(icn::util::simd_level()) << "\",\n";
  out << "  \"crc32c_backend\": \"" << icn::store::crc32c_backend()
      << "\",\n";
  const unsigned hw_threads = std::thread::hardware_concurrency();
  out << "  \"hw_threads\": " << hw_threads << ",\n";
  if (hw_threads <= 1) {
    out << "  \"notes\": \"single-core host: threaded sweeps measure "
           "scheduling overhead, not parallel speedup\",\n";
  }
  out << "  \"runs\": [\n";
  const auto& runs = reporter.runs();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    out << run_json(runs[i]) << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  out.close();
  std::fprintf(stderr, "wrote %s (%zu runs, preset %s)\n", path.c_str(),
               runs.size(), smoke ? "smoke" : "full");
  benchmark::Shutdown();
  return 0;
}

}  // namespace icn::bench
